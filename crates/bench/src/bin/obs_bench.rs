//! PR 4 observability overhead bench — what does counting cost?
//!
//! The instrumentation contract (DESIGN.md §11) is that hot paths
//! accumulate into plain-integer tallies on the stack and flush to the
//! shared atomics once per *query*, so the per-distance-call cost is a
//! register increment. This bench verifies the contract holds on the
//! `kernel_bench` leaf-scan workload by timing three variants of the
//! same scan:
//!
//! 1. **uncounted** — the raw loop, no instrumentation at all;
//! 2. **tally** — the production design: local `u64` counters,
//!    one registry flush per query;
//! 3. **atomic** — the design we rejected: a relaxed `fetch_add` on the
//!    shared counter at every kernel call (kept here as the yardstick
//!    that justifies the tally).
//!
//! The report (`BENCH_pr4_obs.json`) records the measured overhead of
//! (2) over (1); the acceptance bar is ≤ 5%. Timings are best-of-reps
//! to shed scheduler noise.
//!
//! ```sh
//! cargo run --release -p mendel-bench --bin obs_bench            # full, writes BENCH_pr4_obs.json
//! cargo run --release -p mendel-bench --bin obs_bench -- --smoke # tiny sizes, self-checks only
//! ```

// Benchmark reports go to stdout by design.
#![allow(clippy::print_stdout)]

use mendel::{NodeServer, TcpFrontEnd, WireTimeouts};
use mendel_bench::{
    bench_params, cluster_with, clustered_windows, figure_header, protein_db, query_set, DB_SEED,
};
use mendel_net::mailbox::NodeAddr;
use mendel_net::tcp::TcpConfig;
use mendel_net::TransportMetrics;
use mendel_obs::Registry;
use mendel_seq::{BlockDistance, MatrixDistance, Metric, ScoringMatrix};
use mendel_vptree::knn::KnnHeap;
use mendel_vptree::Neighbor;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Scale {
    points: usize,
    queries: usize,
    reps: usize,
}

const FULL: Scale = Scale {
    points: 50_000,
    queries: 200,
    reps: 5,
};

const SMOKE: Scale = Scale {
    points: 600,
    queries: 20,
    reps: 3,
};

const WINDOW_LEN: usize = 64;
const K: usize = 8;

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let t = Instant::now();
    let mut out = f();
    let mut best = t.elapsed();
    for _ in 1..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed());
    }
    (best, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    figure_header(
        "PR 4 observability",
        "metric-counting overhead on the kernel_bench leaf scan",
    );
    if smoke {
        println!("mode: --smoke (tiny sizes; self-checks only)\n");
    }

    let (points, queries) = clustered_windows(scale.points, scale.queries, WINDOW_LEN, DB_SEED);
    let metric = BlockDistance::new(MatrixDistance::mendel(&ScoringMatrix::blosum62()));

    // Variant 1: the raw bounded leaf scan, uncounted.
    let scan_uncounted = || -> Vec<Vec<Neighbor>> {
        queries
            .iter()
            .map(|q| {
                let mut heap = KnnHeap::new(K);
                for (i, p) in points.iter().enumerate() {
                    if let Some(d) = metric.dist_bounded(q, p, heap.tau()) {
                        heap.offer(i as u32, d);
                    }
                }
                heap.into_sorted()
            })
            .collect()
    };

    // Variant 2: the production tally design — plain u64 increments in
    // the loop, one relaxed flush into registry atomics per query.
    let registry = Registry::new();
    let scope = registry.scoped("mendel.vptree");
    let dist_calls = scope.counter("dist_calls");
    let early_abandons = scope.counter("early_abandons");
    let scan_tally = || -> Vec<Vec<Neighbor>> {
        queries
            .iter()
            .map(|q| {
                let mut heap = KnnHeap::new(K);
                let (mut calls, mut abandons) = (0u64, 0u64);
                for (i, p) in points.iter().enumerate() {
                    calls += 1;
                    if let Some(d) = metric.dist_bounded(q, p, heap.tau()) {
                        heap.offer(i as u32, d);
                    } else {
                        abandons += 1;
                    }
                }
                dist_calls.add(calls);
                early_abandons.add(abandons);
                heap.into_sorted()
            })
            .collect()
    };

    // Variant 3: the rejected design — shared-atomic increment per call.
    let atomic_registry = Registry::new();
    let atomic_calls = atomic_registry.counter("mendel.vptree.dist_calls");
    let atomic_abandons = atomic_registry.counter("mendel.vptree.early_abandons");
    let scan_atomic = || -> Vec<Vec<Neighbor>> {
        queries
            .iter()
            .map(|q| {
                let mut heap = KnnHeap::new(K);
                for (i, p) in points.iter().enumerate() {
                    atomic_calls.inc();
                    if let Some(d) = metric.dist_bounded(q, p, heap.tau()) {
                        heap.offer(i as u32, d);
                    } else {
                        atomic_abandons.inc();
                    }
                }
                heap.into_sorted()
            })
            .collect()
    };

    let (uncounted_t, base_hits) = time_best(scale.reps, scan_uncounted);
    let (tally_t, tally_hits) = time_best(scale.reps, scan_tally);
    let (atomic_t, _) = time_best(scale.reps, scan_atomic);

    // Counting must not change results.
    assert_eq!(base_hits.len(), tally_hits.len());
    for (b, t) in base_hits.iter().zip(&tally_hits) {
        assert_eq!(b, t, "counting changed a kNN result");
    }
    // And the tally must count every kernel invocation, every rep.
    let per_pass = (queries.len() * points.len()) as u64;
    assert_eq!(
        registry.snapshot().counter("mendel.vptree.dist_calls"),
        per_pass * scale.reps as u64,
        "tally missed kernel invocations"
    );

    let overhead = tally_t.as_secs_f64() / uncounted_t.as_secs_f64().max(1e-12) - 1.0;
    let atomic_overhead = atomic_t.as_secs_f64() / uncounted_t.as_secs_f64().max(1e-12) - 1.0;
    println!(
        "leaf scan ({} points, {} queries, k={K}, window {WINDOW_LEN}, best of {}):",
        points.len(),
        queries.len(),
        scale.reps
    );
    println!(
        "  uncounted {:8.2} ms   tally {:8.2} ms ({:+.1}%)   per-call atomic {:8.2} ms ({:+.1}%)",
        uncounted_t.as_secs_f64() * 1e3,
        tally_t.as_secs_f64() * 1e3,
        overhead * 100.0,
        atomic_t.as_secs_f64() * 1e3,
        atomic_overhead * 100.0,
    );
    let within_budget = overhead <= 0.05;
    if !within_budget {
        println!(
            "WARNING: tally overhead {:.1}% exceeds the 5% budget",
            overhead * 100.0
        );
    }

    // ---- PR 5: causal-tracing overhead on the full query pipeline.
    // The trace is assembled once per query from timeline components
    // the pipeline already computed, so the whole tracing path — id
    // minting, span records, flight-recorder pushes, critical-path
    // extraction — must fit the same ≤5% budget (DESIGN.md §12).
    let (db_residues, trace_queries) = if smoke { (30_000, 4) } else { (200_000, 16) };
    let db = protein_db(db_residues);
    let cluster = cluster_with(&db, 6, 2);
    let params = bench_params();
    let trace_qs = query_set(&db, trace_queries, 200, 0.9);
    let run_all = || -> usize {
        trace_qs
            .iter()
            .map(|q| {
                cluster
                    .query(&q.query.residues, &params)
                    .expect("bench query runs") // audit:allow(expect): bench binary; a failing query should abort the run.
                    .hits
                    .len()
            })
            .sum()
    };
    cluster.set_tracing(false);
    let (untraced_t, untraced_hits) = time_best(scale.reps, run_all);
    cluster.set_tracing(true);
    let (traced_t, traced_hits) = time_best(scale.reps, run_all);
    assert_eq!(untraced_hits, traced_hits, "tracing changed query results");
    assert!(
        !cluster.trace_records().is_empty(),
        "traced runs left no spans in the flight recorders"
    );
    let trace_overhead = traced_t.as_secs_f64() / untraced_t.as_secs_f64().max(1e-12) - 1.0;
    let trace_within_budget = trace_overhead <= 0.05;
    println!(
        "\nquery pipeline ({} residues, {} queries, best of {}):",
        db.total_residues(),
        trace_qs.len(),
        scale.reps
    );
    println!(
        "  tracing off {:8.2} ms   tracing on {:8.2} ms ({:+.1}%)",
        untraced_t.as_secs_f64() * 1e3,
        traced_t.as_secs_f64() * 1e3,
        trace_overhead * 100.0,
    );
    if !trace_within_budget {
        println!(
            "WARNING: tracing overhead {:.1}% exceeds the 5% budget",
            trace_overhead * 100.0
        );
    }

    // ---- PR 10: tracing over TCP on the real serving stack.
    // The trace context rides every MDL1 frame as the 17-byte envelope
    // tail and node-side span trees ride group replies home, so the
    // whole distributed path — context propagation, remote span
    // records, clock re-anchoring, stitching, critical-path extraction
    // — must fit the same ≤5% budget (DESIGN.md §17). Loopback
    // NodeServers + a TcpFrontEnd put real frames on real sockets.
    let mut dist_trace_json = String::from("\"skipped\": true");
    if std::net::TcpListener::bind("127.0.0.1:0").is_ok() {
        let (tcp_residues, tcp_queries) = if smoke { (20_000, 4) } else { (120_000, 12) };
        let tcp_db = protein_db(tcp_residues);
        let tcp_cluster = Arc::new(cluster_with(&tcp_db, 3, 1));
        let tcp_qs = query_set(&tcp_db, tcp_queries, 200, 0.9);
        // audit:allow(expect): constant loopback literal always parses.
        let any: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
        let timeouts = WireTimeouts {
            rpc: Duration::from_secs(10),
            member: Duration::from_secs(5),
        };
        let servers: Vec<NodeServer> = tcp_cluster
            .topology()
            .nodes()
            .map(|n| {
                NodeServer::start(
                    tcp_cluster.clone(),
                    n,
                    any,
                    &[],
                    TcpConfig::default(),
                    TransportMetrics::detached(),
                    timeouts,
                )
                .expect("bind bench node server") // audit:allow(expect): bench binary; loopback bind was probed above.
            })
            .collect();
        // Node `i` listens as transport address `i + 1` (the serving
        // convention); wire every node to every other.
        let addrs: Vec<(NodeAddr, SocketAddr)> = servers
            .iter()
            .map(|s| {
                let sock = s.local_socket_addr().expect("bound"); // audit:allow(expect): bench binary; server just bound.
                (NodeAddr(s.node().0 + 1), sock)
            })
            .collect();
        for s in &servers {
            for &(peer, sock) in &addrs {
                s.transport().add_peer(peer, sock);
            }
        }
        let fe = TcpFrontEnd::connect(
            tcp_cluster.clone(),
            0,
            &addrs,
            TcpConfig::default(),
            TransportMetrics::detached(),
            timeouts,
        );
        let run_tcp = || -> usize {
            tcp_qs
                .iter()
                .map(|q| {
                    fe.query(&q.query.residues, &params)
                        .expect("bench tcp query runs") // audit:allow(expect): bench binary; a failing query should abort the run.
                        .hits
                        .len()
                })
                .sum()
        };
        tcp_cluster.set_tracing(false);
        let (tcp_off_t, tcp_off_hits) = time_best(scale.reps, run_tcp);
        tcp_cluster.set_tracing(true);
        tcp_cluster.set_trace_sampling(1);
        let (tcp_on_t, tcp_on_hits) = time_best(scale.reps, run_tcp);
        assert_eq!(
            tcp_off_hits, tcp_on_hits,
            "tracing over TCP changed query results"
        );
        assert!(
            !tcp_cluster.trace_records().is_empty(),
            "traced TCP runs left no spans in the flight recorders"
        );
        let dist_overhead = tcp_on_t.as_secs_f64() / tcp_off_t.as_secs_f64().max(1e-12) - 1.0;
        let dist_within_budget = dist_overhead <= 0.05;
        println!(
            "\ntcp serving stack ({} residues, {} queries, 3 nodes, best of {}):",
            tcp_db.total_residues(),
            tcp_qs.len(),
            scale.reps
        );
        println!(
            "  tracing off {:8.2} ms   tracing on {:8.2} ms ({:+.1}%)",
            tcp_off_t.as_secs_f64() * 1e3,
            tcp_on_t.as_secs_f64() * 1e3,
            dist_overhead * 100.0,
        );
        if !dist_within_budget {
            println!(
                "WARNING: TCP tracing overhead {:.1}% exceeds the 5% budget",
                dist_overhead * 100.0
            );
        }
        dist_trace_json = format!(
            "\"db_residues\": {}, \"queries\": {}, \"nodes\": 3, \"reps\": {},\n    \
             \"untraced_ms\": {:.3}, \"traced_ms\": {:.3},\n    \
             \"trace_overhead\": {dist_overhead:.4},\n    \
             \"overhead_budget\": 0.05, \"within_budget\": {dist_within_budget},\n    \
             \"results_identical\": true",
            tcp_db.total_residues(),
            tcp_qs.len(),
            scale.reps,
            tcp_off_t.as_secs_f64() * 1e3,
            tcp_on_t.as_secs_f64() * 1e3,
        );
    } else {
        println!("\ntcp serving stack: SKIPPED (loopback sockets unavailable)");
    }
    let dist_report = format!(
        "{{\n  \"bench\": \"pr10_dist_trace\",\n  \"mode\": \"{}\",\n  \"tcp_tracing\": {{\n    {dist_trace_json}\n  }}\n}}\n",
        if smoke { "smoke" } else { "full" },
    );
    let dist_path = if smoke {
        std::env::temp_dir().join("BENCH_pr10_dist_trace.smoke.json")
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr10_dist_trace.json")
    };
    // audit:allow(expect): bench binary; an unwritable report path should abort the run.
    std::fs::write(&dist_path, &dist_report).expect("write distributed-tracing report");
    println!("report: {}", dist_path.display());

    let json = format!(
        "{{\n  \"bench\": \"pr4_obs\",\n  \"mode\": \"{}\",\n  \"leaf_scan\": {{\n    \"points\": {}, \"queries\": {}, \"k\": {K}, \"window_len\": {WINDOW_LEN}, \"reps\": {},\n    \"uncounted_ms\": {:.3}, \"tally_ms\": {:.3}, \"atomic_ms\": {:.3},\n    \"tally_overhead\": {overhead:.4}, \"atomic_overhead\": {atomic_overhead:.4},\n    \"overhead_budget\": 0.05, \"within_budget\": {within_budget},\n    \"dist_calls_per_pass\": {per_pass}, \"results_identical\": true\n  }},\n  \"tracing\": {{\n    \"db_residues\": {}, \"queries\": {}, \"reps\": {},\n    \"untraced_ms\": {:.3}, \"traced_ms\": {:.3},\n    \"trace_overhead\": {trace_overhead:.4},\n    \"overhead_budget\": 0.05, \"within_budget\": {trace_within_budget},\n    \"results_identical\": true\n  }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        points.len(),
        queries.len(),
        scale.reps,
        uncounted_t.as_secs_f64() * 1e3,
        tally_t.as_secs_f64() * 1e3,
        atomic_t.as_secs_f64() * 1e3,
        db.total_residues(),
        trace_qs.len(),
        scale.reps,
        untraced_t.as_secs_f64() * 1e3,
        traced_t.as_secs_f64() * 1e3,
    );

    let path = if smoke {
        std::env::temp_dir().join("BENCH_pr4_obs.smoke.json")
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr4_obs.json")
    };
    // audit:allow(expect): bench binary; an unwritable report path should abort the run.
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("\nreport: {}", path.display());
    if smoke {
        println!("smoke checks passed: results identical, tally complete, traces recorded");
    }
}
