//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index); this library holds the common
//! workload builders so all experiments draw from the same synthetic
//! `nr`-like data and the same cluster geometries.

use mendel::{ClusterConfig, MendelCluster, QueryParams};
use mendel_seq::gen::{NrLikeSpec, QueryRecord, QuerySetSpec};
use mendel_seq::SeqStore;
use std::sync::Arc;
use std::time::Duration;

/// Workload seeds, fixed so every figure draws the same data.
pub const DB_SEED: u64 = 0xF16;
/// Seed for query sets.
pub const QUERY_SEED: u64 = 0x517;

/// Build an `nr`-like protein database of roughly `residues` total
/// residues. Sequences come in families of 8 (NCBI `nr` is
/// "non-redundant" only at 100% identity — below that it is massively
/// family-redundant, which is exactly the clustering that makes
/// metric-tree pruning effective); lengths run 200–1400 so the paper's
/// 1000-residue query windows can be sampled.
pub fn protein_db(residues: usize) -> Arc<SeqStore> {
    const MEMBERS: usize = 8;
    let families = (residues / (800 * MEMBERS)).max(2);
    Arc::new(
        NrLikeSpec {
            families,
            members_per_family: MEMBERS,
            length_range: (200, 1400),
            seed: DB_SEED,
            ..Default::default()
        }
        .generate()
        .expect("spec is valid"), // audit:allow(expect): bench fixture; the hard-coded spec is valid by construction
    )
}

/// The paper's cluster geometry (50 nodes, 10 groups) over a database.
pub fn paper_cluster(db: &Arc<SeqStore>) -> MendelCluster {
    MendelCluster::build(ClusterConfig::paper_testbed_protein(), db.clone())
        .expect("testbed config is valid") // audit:allow(expect): bench fixture; the paper testbed geometry is valid by construction
}

/// A cluster with an explicit geometry.
pub fn cluster_with(db: &Arc<SeqStore>, nodes: usize, groups: usize) -> MendelCluster {
    let cfg = ClusterConfig {
        nodes,
        groups,
        ..ClusterConfig::paper_testbed_protein()
    };
    MendelCluster::build(cfg, db.clone()).expect("geometry is valid") // audit:allow(expect): bench fixture; callers pass small positive geometries
}

/// An `s_aureus`-style query set: fragments of database sequences at the
/// given identity.
pub fn query_set(
    db: &Arc<SeqStore>,
    count: usize,
    length: usize,
    identity: f64,
) -> Vec<QueryRecord> {
    QuerySetSpec {
        count,
        length,
        identity,
        seed: QUERY_SEED,
    }
    .generate(db)
    .expect("database holds long enough sequences") // audit:allow(expect): bench fixture; protein_db always holds 1400-residue members
}

/// Default Mendel query parameters used by the performance figures.
pub fn bench_params() -> QueryParams {
    QueryParams::protein()
}

/// Minimal splitmix-style generator so micro-bench workloads are
/// deterministic without touching the figure binaries' rand plumbing.
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A family-clustered window workload: random `window_len`-residue
/// cluster centers with point-mutated members, the `nr`-style redundancy
/// regime Mendel's metric trees exploit (DESIGN.md §10). Queries are
/// drawn from the same centers, so each has a full heap of near
/// neighbours and τ collapses early — exactly when the early-abandoning
/// kernel should pay off.
pub fn clustered_windows(
    points: usize,
    queries: usize,
    window_len: usize,
    seed: u64,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    const PER_CLUSTER: usize = 16;
    const MUTATIONS: usize = 4;
    let mut rng = Lcg(seed | 1);
    let centers: Vec<Vec<u8>> = (0..points.div_ceil(PER_CLUSTER))
        .map(|_| (0..window_len).map(|_| (rng.below(24)) as u8).collect())
        .collect();
    fn mutated(center: &[u8], rng: &mut Lcg) -> Vec<u8> {
        let mut w = center.to_vec();
        for _ in 0..MUTATIONS {
            let p = rng.below(w.len());
            w[p] = rng.below(24) as u8;
        }
        w
    }
    let ps: Vec<Vec<u8>> = (0..points)
        .map(|i| mutated(&centers[i % centers.len()], &mut rng))
        .collect();
    let qs: Vec<Vec<u8>> = (0..queries)
        .map(|_| {
            let c = rng.below(centers.len());
            mutated(&centers[c], &mut rng)
        })
        .collect();
    (ps, qs)
}

/// Mean of a set of durations (zero for an empty set).
pub fn mean_duration(ds: &[Duration]) -> Duration {
    if ds.is_empty() {
        return Duration::ZERO;
    }
    ds.iter().sum::<Duration>() / ds.len() as u32
}

/// Format a duration in fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a figure header in a consistent style.
// The bench binaries report through stdout; this shared banner helper is
// their only print path in the lib.
#[allow(clippy::print_stdout)]
pub fn figure_header(id: &str, caption: &str) {
    println!("================================================================"); // audit:allow(println): shared stdout banner for the bench binaries
    println!("{id}: {caption}"); // audit:allow(println): shared stdout banner for the bench binaries
    println!("================================================================");
    // audit:allow(println): shared stdout banner for the bench binaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_db_scales_with_request() {
        let small = protein_db(50_000);
        let large = protein_db(200_000);
        assert!(large.total_residues() > small.total_residues());
        // Roughly the requested magnitude (generous tolerance: lengths vary).
        let r = small.total_residues() as f64 / 50_000.0;
        assert!((0.5..2.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn db_generation_is_deterministic() {
        let a = protein_db(30_000);
        let b = protein_db(30_000);
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.get(mendel_seq::SeqId(0)).unwrap().residues,
            b.get(mendel_seq::SeqId(0)).unwrap().residues
        );
    }

    #[test]
    fn clustered_windows_are_deterministic_and_sized() {
        let (p1, q1) = clustered_windows(100, 10, 64, 7);
        let (p2, q2) = clustered_windows(100, 10, 64, 7);
        assert_eq!(p1, p2);
        assert_eq!(q1, q2);
        assert_eq!(p1.len(), 100);
        assert_eq!(q1.len(), 10);
        assert!(p1.iter().all(|w| w.len() == 64));
    }

    #[test]
    fn mean_duration_basics() {
        assert_eq!(mean_duration(&[]), Duration::ZERO);
        let m = mean_duration(&[Duration::from_millis(2), Duration::from_millis(4)]);
        assert_eq!(m, Duration::from_millis(3));
    }

    #[test]
    fn ms_formats_fractions() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }
}
