//! Bake the git revision into the binary so `/healthz?verbose=1` can
//! report which build is serving. Falls back to `"unknown"` outside a
//! git checkout (e.g. a source tarball) rather than failing the build.

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=MENDEL_GIT_SHA={sha}");
    // Rebuild when HEAD moves so the sha stays honest.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
