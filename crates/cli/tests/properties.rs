//! Property tests for the CLI argument parser: it must never panic and
//! must be total over arbitrary token streams.

use mendel_cli::{ArgError, Args};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary token streams parse or fail cleanly — never panic.
    #[test]
    fn parser_is_total(tokens in proptest::collection::vec("[-a-zA-Z0-9._/]{0,12}", 0..10)) {
        let toks: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let _ = Args::parse(&toks);
    }

    /// Well-formed option lists always parse and are fully retrievable.
    #[test]
    fn well_formed_options_roundtrip(
        pairs in proptest::collection::vec(("[a-z]{1,8}", "[a-zA-Z0-9._/]{1,12}"), 0..6)
    ) {
        let mut toks = vec!["cmd".to_string()];
        for (k, v) in &pairs {
            toks.push(format!("--{k}"));
            toks.push(v.clone());
        }
        let args = Args::parse(&toks).unwrap();
        prop_assert_eq!(&args.command, "cmd");
        for (k, v) in &pairs {
            // Later duplicates win; assert the key resolves to *some*
            // supplied value.
            let got = args.get(k).expect("key must be present");
            prop_assert!(pairs.iter().any(|(pk, pv)| pk == k && pv == got), "{k}={v}");
        }
    }

    /// A dangling `--key` at the end is always MissingValue, never a panic
    /// or silent success.
    #[test]
    fn dangling_key_is_clean_error(key in "[a-ce-z]{1,8}") {
        // (avoid 'd' prefix colliding with the --dna flag namespace)
        prop_assume!(!["dna", "protein", "exact", "verbose"].contains(&key.as_str()));
        let toks = vec!["cmd".to_string(), format!("--{key}")];
        prop_assert_eq!(Args::parse(&toks), Err(ArgError::MissingValue(key.to_string())));
    }
}
