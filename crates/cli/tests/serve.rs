//! Multi-process serving suite: a real 3-node `mendel serve` cluster on
//! loopback, answered over HTTP, must be hit-for-hit identical to an
//! in-process twin built from the same corpus and seed — including the
//! degraded answer after one node is SIGKILLed.
//!
//! Environment posture: if the sandbox forbids loopback sockets the
//! suite skips with a notice instead of failing; transient port
//! collisions (ports are probed, released, then rebound by children)
//! retry the whole spawn round.

use mendel::{ClusterConfig, MendelCluster, QueryParams};
use mendel_cli::http::http_request;
use mendel_cli::render_outcome_json;
use mendel_seq::gen::NrLikeSpec;
use mendel_seq::{parse_fasta_sequences, write_fasta, Alphabet, SeqId, SeqStore};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 3;

/// The cluster shape every process is launched with; the twin must use
/// the exact same config for bit-identical placement and routing.
fn shape() -> ClusterConfig {
    ClusterConfig {
        nodes: NODES,
        groups: 1,
        replication: 1,
        ..ClusterConfig::small_protein()
    }
}

fn corpus_fasta() -> String {
    let store = NrLikeSpec {
        families: 6,
        members_per_family: 2,
        length_range: (100, 160),
        seed: 0x77,
        ..Default::default()
    }
    .generate()
    .expect("generate corpus");
    write_fasta(store.iter(), 60)
}

/// Parse the corpus exactly the way each serve process does, so names
/// and ids line up byte-for-byte.
fn corpus_store(fasta: &str) -> SeqStore {
    let mut store = SeqStore::new();
    for s in parse_fasta_sequences(fasta, Alphabet::Protein).expect("parse corpus") {
        store.insert(s);
    }
    store
}

/// One spawned serve process; killed (best effort) on drop so a failed
/// assertion never leaks children.
struct Proc {
    node: u16,
    http: SocketAddr,
    child: Child,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Probe `n` free loopback ports. The listeners are dropped before the
/// children bind, so a collision is possible — the caller retries.
fn probe_ports(n: usize) -> std::io::Result<Vec<u16>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    listeners
        .iter()
        .map(|l| Ok(l.local_addr()?.port()))
        .collect()
}

fn spawn_node(
    node: u16,
    listen: u16,
    http: u16,
    peers: &str,
    extra: &[String],
) -> std::io::Result<Proc> {
    let mut args: Vec<String> = [
        "serve",
        "--node",
        &node.to_string(),
        "--listen",
        &format!("127.0.0.1:{listen}"),
        "--http",
        &format!("127.0.0.1:{http}"),
        "--peers",
        peers,
        "--nodes",
        &NODES.to_string(),
        "--groups",
        "1",
        "--replication",
        "1",
        "--rpc-timeout-ms",
        "3000",
        "--member-timeout-ms",
        "500",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.extend(extra.iter().cloned());
    let child = Command::new(env!("CARGO_BIN_EXE_mendel"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()?;
    Ok(Proc {
        node,
        http: format!("127.0.0.1:{http}").parse().expect("socket addr"),
        child,
    })
}

/// Spawn the whole cluster and wait for every node's `/healthz`.
/// `None` means a child died or never came up (port collision) — retry.
/// `extra_for(node, http_ports)` appends per-node flags (e.g. each
/// node's view of the peer HTTP addresses).
fn spawn_cluster_with(
    extra_for: impl Fn(u16, &[u16]) -> Vec<String>,
) -> std::io::Result<Option<Vec<Proc>>> {
    let ports = probe_ports(2 * NODES)?;
    let (listen, http) = ports.split_at(NODES);
    let peers = (0..NODES)
        .map(|i| format!("{i}=127.0.0.1:{}", listen[i]))
        .collect::<Vec<_>>()
        .join(",");
    let mut procs = Vec::new();
    for i in 0..NODES {
        let extra = extra_for(i as u16, http);
        procs.push(spawn_node(i as u16, listen[i], http[i], &peers, &extra)?);
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    for p in &mut procs {
        loop {
            if let Ok((200, _)) = http_request(p.http, "GET", "/healthz", b"") {
                break;
            }
            if p.child.try_wait()?.is_some() || Instant::now() > deadline {
                return Ok(None); // died (port collision) or wedged
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    Ok(Some(procs))
}

fn spawn_cluster() -> std::io::Result<Option<Vec<Proc>>> {
    spawn_cluster_with(|_, _| Vec::new())
}

/// Retry the spawn round against port races, like the twin test does.
fn spawn_cluster_retrying(extra_for: impl Fn(u16, &[u16]) -> Vec<String>) -> Vec<Proc> {
    for attempt in 0..3 {
        match spawn_cluster_with(&extra_for).expect("spawn serve processes") {
            Some(p) => return p,
            None => eprintln!("spawn round {attempt} lost a port race; retrying"),
        }
    }
    panic!("cluster up within 3 spawn rounds");
}

/// Wait for an orderly exit, bounded.
fn wait_exit(p: &mut Proc, within: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + within;
    loop {
        if let Ok(Some(status)) = p.child.try_wait() {
            return Some(status);
        }
        if Instant::now() > deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn three_process_cluster_matches_in_process_twin() {
    // Skip (loudly) where the sandbox forbids loopback sockets.
    if let Err(e) = TcpListener::bind("127.0.0.1:0") {
        eprintln!("SKIPPED: loopback sockets unavailable in this environment: {e}");
        return;
    }

    let fasta = corpus_fasta();
    let mut procs = None;
    for attempt in 0..3 {
        match spawn_cluster().expect("spawn serve processes") {
            Some(p) => {
                procs = Some(p);
                break;
            }
            None => eprintln!("spawn round {attempt} lost a port race; retrying"),
        }
    }
    let mut procs = procs.expect("cluster up within 3 spawn rounds");

    // Ingest the same corpus into every process; each builds the same
    // control plane from it.
    for p in &procs {
        let (status, body) =
            http_request(p.http, "POST", "/ingest", fasta.as_bytes()).expect("ingest request");
        assert_eq!(
            status,
            200,
            "ingest on node {}: {}",
            p.node,
            String::from_utf8_lossy(&body)
        );
    }

    // The in-process twin: same parse, same config, same seed.
    let twin = MendelCluster::build(shape(), Arc::new(corpus_store(&fasta))).expect("twin");
    let params = QueryParams::protein();

    // Healthy cluster: every node's HTTP answer must be byte-identical
    // to the twin rendered through the same JSON writer.
    for (p, seq) in procs.iter().zip([0u32, 3, 9]) {
        let record = twin.db().get(SeqId(seq)).expect("corpus seq").clone();
        let report = twin.query(&record.residues, &params).expect("twin query");
        let want = render_outcome_json(&twin.db(), &report.hits, &twin.coverage(), &[]);
        let (status, body) = http_request(p.http, "POST", "/query", record.to_ascii().as_bytes())
            .expect("query request");
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert_eq!(
            String::from_utf8_lossy(&body),
            want,
            "node {} HTTP answer matches the in-process twin byte-for-byte (seq {seq})",
            p.node
        );
        let (status, metrics) = http_request(p.http, "GET", "/metrics", b"").expect("metrics");
        assert_eq!(status, 200);
        assert!(!metrics.is_empty(), "metrics exposition is non-empty");
    }

    // SIGKILL a non-entry-point member of the (only) group, then query
    // through a surviving front-end: the degraded answer must match the
    // twin's fail_node semantics (PR 2 failover) exactly.
    let topo = twin.topology();
    let group = topo.group_ids().next().expect("a group");
    let victim = topo.group_members(group)[1];
    let vpos = procs
        .iter()
        .position(|p| p.node == victim.0)
        .expect("victim process");
    procs[vpos].child.kill().expect("SIGKILL victim");
    let _ = procs[vpos].child.wait();

    let degraded_twin =
        MendelCluster::build(shape(), Arc::new(corpus_store(&fasta))).expect("twin");
    degraded_twin.fail_node(victim).expect("fail victim");
    let record = degraded_twin
        .db()
        .get(SeqId(0))
        .expect("corpus seq")
        .clone();
    let report = degraded_twin
        .query(&record.residues, &params)
        .expect("degraded twin query");
    let want = render_outcome_json(
        &degraded_twin.db(),
        &report.hits,
        &degraded_twin.coverage(),
        &[victim],
    );
    let survivor = procs
        .iter()
        .find(|p| p.node != victim.0)
        .expect("a survivor");
    let (status, body) = http_request(
        survivor.http,
        "POST",
        "/query",
        record.to_ascii().as_bytes(),
    )
    .expect("degraded query");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        String::from_utf8_lossy(&body),
        want,
        "degraded HTTP answer matches the fail_node twin byte-for-byte"
    );

    // Orderly shutdown of the survivors.
    for p in &mut procs {
        if p.node == victim.0 {
            continue;
        }
        let (status, _) = http_request(p.http, "POST", "/shutdown", b"").expect("shutdown");
        assert_eq!(status, 200);
        let exit = wait_exit(p, Duration::from_secs(10)).expect("orderly exit");
        assert!(exit.success(), "node {} exits cleanly: {exit:?}", p.node);
    }
}

/// Cross-process distributed tracing (DESIGN.md §17): a traced query
/// against a real 3-process cluster yields one merged Perfetto-loadable
/// chrome JSON with node-side spans from every contacted process and
/// fully-resolving parent links; the federated metrics, slowlog, and
/// verbose healthz surfaces ride along.
#[test]
fn traced_query_stitches_spans_from_all_three_processes() {
    if let Err(e) = TcpListener::bind("127.0.0.1:0") {
        eprintln!("SKIPPED: loopback sockets unavailable in this environment: {e}");
        return;
    }

    let fasta = corpus_fasta();
    // Every node learns every other node's HTTP address, samples every
    // query's trace, and admits every query to the slowlog.
    let mut procs = spawn_cluster_retrying(|node, http_ports| {
        let http_peers = (0..NODES)
            .filter(|&i| i != node as usize)
            .map(|i| format!("{i}=127.0.0.1:{}", http_ports[i]))
            .collect::<Vec<_>>()
            .join(",");
        vec![
            "--http-peers".into(),
            http_peers,
            "--trace-sample".into(),
            "1".into(),
            "--slowlog-threshold-ms".into(),
            "0".into(),
        ]
    });
    for p in &procs {
        let (status, body) =
            http_request(p.http, "POST", "/ingest", fasta.as_bytes()).expect("ingest request");
        assert_eq!(
            status,
            200,
            "ingest on node {}: {}",
            p.node,
            String::from_utf8_lossy(&body)
        );
    }

    // Verbose healthz: build info, uptime, active kernel.
    let entry = procs[0].http;
    let (status, health) =
        http_request(entry, "GET", "/healthz?verbose=1", b"").expect("verbose healthz");
    assert_eq!(status, 200);
    let health = String::from_utf8_lossy(&health).into_owned();
    for key in [
        "\"version\":",
        "\"git_sha\":",
        "\"uptime_seconds\":",
        "\"kernel\":",
        "\"tracing\":true",
    ] {
        assert!(health.contains(key), "healthz missing {key}: {health}");
    }

    // A traced query through node 0's front-end. The plain body must be
    // untouched; `?trace=1` appends the trace id and critical path.
    let twin = MendelCluster::build(shape(), Arc::new(corpus_store(&fasta))).expect("twin");
    let record = twin.db().get(SeqId(2)).expect("corpus seq").clone();
    let (status, plain) =
        http_request(entry, "POST", "/query", record.to_ascii().as_bytes()).expect("plain query");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&plain));
    let (status, traced) = http_request(
        entry,
        "POST",
        "/query?trace=1",
        record.to_ascii().as_bytes(),
    )
    .expect("traced query");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&traced));
    let traced = String::from_utf8_lossy(&traced).into_owned();
    let plain = String::from_utf8_lossy(&plain).into_owned();
    assert!(
        traced.starts_with(plain.trim_end_matches('}')),
        "traced body extends the plain body:\n{plain}\n{traced}"
    );
    assert!(traced.contains("\"critical_path\":["), "{traced}");
    let trace_id: u64 = traced
        .split("\"trace\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|id| id.trim().parse().ok())
        .expect("traced response carries a numeric trace id");

    // The stitched chrome JSON merges spans from all three processes:
    // front-end spans (query/decompose/group_rpc) plus the group span
    // and a node/<id> evaluation span from every storage process.
    let (status, chrome) = http_request(
        entry,
        "GET",
        &format!("/trace/{trace_id}?format=chrome&scope=cluster"),
        b"",
    )
    .expect("stitched chrome trace");
    assert_eq!(status, 200);
    let chrome = String::from_utf8_lossy(&chrome).into_owned();
    assert!(chrome.contains("\"traceEvents\""), "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    for name in [
        "\"name\":\"query\"",
        "\"name\":\"decompose\"",
        "\"name\":\"group_rpc/",
        "\"name\":\"group/",
        "\"name\":\"node/0\"",
        "\"name\":\"node/1\"",
        "\"name\":\"node/2\"",
    ] {
        assert!(
            chrome.contains(name),
            "chrome JSON missing {name}: {chrome}"
        );
    }

    // Records format: every parent link resolves inside the merged set
    // and at least three distinct node ids contributed spans.
    let (status, records) = http_request(
        entry,
        "GET",
        &format!("/trace/{trace_id}?format=records&scope=cluster"),
        b"",
    )
    .expect("stitched records");
    assert_eq!(status, 200);
    let records =
        mendel::parse_records_text(&String::from_utf8_lossy(&records)).expect("records parse back");
    assert!(
        records.len() >= 7,
        "expected a full span tree, got {records:?}"
    );
    let spans: std::collections::HashSet<u64> = records.iter().map(|r| r.span.0).collect();
    let mut roots = 0;
    for r in &records {
        match r.parent {
            None => roots += 1,
            Some(p) => assert!(
                spans.contains(&p.0),
                "span {:?} has dangling parent {p:?}",
                r.name
            ),
        }
    }
    assert_eq!(roots, 1, "exactly one root span: {records:?}");
    let nodes: std::collections::HashSet<u32> = records.iter().map(|r| r.node).collect();
    assert!(
        nodes.len() >= 3,
        "spans from at least 3 distinct node id planes: {nodes:?}"
    );

    // Critical path over the merged tree starts at the root query span.
    let (status, path) = http_request(
        entry,
        "GET",
        &format!("/trace/{trace_id}?format=path&scope=cluster"),
        b"",
    )
    .expect("critical path");
    assert_eq!(status, 200);
    let path = String::from_utf8_lossy(&path).into_owned();
    assert!(path.starts_with("query\t"), "critical path root: {path}");
    assert!(path.lines().count() >= 2, "multi-hop critical path: {path}");

    // Slowlog (threshold 0 ⇒ every query admitted) and federation.
    let (status, slowlog) = http_request(entry, "GET", "/debug/slowlog", b"").expect("slowlog");
    assert_eq!(status, 200);
    let slowlog = String::from_utf8_lossy(&slowlog).into_owned();
    assert!(
        slowlog.contains("\"entries\":[{"),
        "slowlog has entries: {slowlog}"
    );
    assert!(slowlog.contains("\"reason\":\"slow\""), "{slowlog}");

    let (status, metrics) =
        http_request(entry, "GET", "/metrics?scope=cluster", b"").expect("federated metrics");
    assert_eq!(status, 200);
    let metrics = String::from_utf8_lossy(&metrics).into_owned();
    for label in ["node=\"0\"", "node=\"1\"", "node=\"2\""] {
        assert!(metrics.contains(label), "federated metrics missing {label}");
    }
    assert_eq!(
        metrics.matches("# TYPE mendel_query_count counter").count(),
        1,
        "TYPE lines deduped across nodes:\n{metrics}"
    );

    // The live-node CLI commands ride the same surfaces.
    let addr = entry.to_string();
    let top = mendel_cli::run(&[
        "top".into(),
        "--addr".into(),
        addr.clone(),
        "--iterations".into(),
        "1".into(),
    ])
    .expect("mendel top against the live cluster");
    assert!(top.contains("mendel top @"), "{top}");
    assert!(top.contains("node 0:"), "{top}");
    let dump = mendel_cli::run(&[
        "trace".into(),
        "dump".into(),
        "--addr".into(),
        addr.clone(),
        "--trace".into(),
        trace_id.to_string(),
    ])
    .expect("mendel trace dump --addr");
    assert!(dump.contains("\"name\":\"node/1\""), "{dump}");
    let slow = mendel_cli::run(&["trace".into(), "slowlog".into(), "--addr".into(), addr])
        .expect("mendel trace slowlog --addr");
    assert!(slow.contains("\"seen\":"), "{slow}");

    // Orderly shutdown.
    for p in &mut procs {
        let (status, _) = http_request(p.http, "POST", "/shutdown", b"").expect("shutdown");
        assert_eq!(status, 200);
        let exit = wait_exit(p, Duration::from_secs(10)).expect("orderly exit");
        assert!(exit.success(), "node {} exits cleanly: {exit:?}", p.node);
    }
}

/// `serve` argument errors are reported without touching the network.
#[test]
fn serve_arg_errors_are_reported() {
    let toks: Vec<String> = ["serve", "--node", "0"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let err = mendel_cli::run(&toks).unwrap_err();
    assert!(err.to_string().contains("listen"), "{err}");

    let toks: Vec<String> = ["serve", "--listen", "not-an-addr", "--http", "127.0.0.1:0"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let err = mendel_cli::run(&toks).unwrap_err();
    assert!(err.to_string().contains("listen"), "{err}");
}
