//! # mendel-cli — the `mendel` command-line tool
//!
//! ```text
//! mendel generate --out db.fasta [--families 64] [--members 4] [--dna] [--seed 7]
//! mendel index    --db db.fasta --out db.mendel [--nodes 50] [--groups 10] [--dna] ...
//! mendel query    --index db.mendel --db db.fasta --query q.fasta [--evalue 10] ...
//! mendel blast    --db db.fasta --query q.fasta [--dna]
//! mendel info     --index db.mendel --db db.fasta
//! mendel metrics  --index db.mendel --db db.fasta [--query q.fasta] [--format json]
//! mendel trace dump --index db.mendel --db db.fasta --query q.fasta [--format tree]
//! mendel bench qps --index db.mendel --db db.fasta --query q.fasta [--batch 32]
//! mendel serve    --node 0 --listen 127.0.0.1:7701 --http 127.0.0.1:8701
//!                 --peers 1=127.0.0.1:7702,2=127.0.0.1:7703 [--config serve.toml]
//! mendel help
//! ```
//!
//! The library half holds all the logic (testable without spawning a
//! process); `main.rs` is a thin shim.

pub mod args;
pub mod commands;
pub mod http;
pub mod serve;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};
pub use serve::{render_outcome_json, ServeConfig};

/// Usage text for `mendel help` and errors.
pub const USAGE: &str = "\
mendel — distributed similarity search over sequencing data (IPDPS'16 reproduction)

USAGE:
  mendel generate --out <fasta> [--families N] [--members N] [--min-len N]
                  [--max-len N] [--divergence F] [--seed N] [--dna]
  mendel index    --db <fasta> --out <snapshot> [--nodes N] [--groups N]
                  [--block-len N] [--replication N] [--seed N] [--dna]
  mendel query    --index <snapshot> --db <fasta> --query <fasta>
                  [--evalue F] [--nn N] [--identity F] [--cscore F]
                  [--step N] [--band N] [--top N]
  mendel blast    --db <fasta> --query <fasta> [--evalue F] [--top N] [--dna]
  mendel info     --index <snapshot> --db <fasta>
  mendel metrics  --index <snapshot> --db <fasta> [--query <fasta>]
                  [--format prometheus|json]
  mendel durability [--nodes N] [--groups N] [--fsync always|group|flush]
                  [--memtable N] [--families N] [--members N] [--seed N] [--dna]
  mendel trace dump --index <snapshot> --db <fasta> --query <fasta>
                  [--format chrome|tree] [--out <path>]
  mendel trace dump --addr <host:port> [--trace N]
                  [--format chrome|tree|records|path] [--out <path>]
  mendel trace slowlog --addr <host:port>
  mendel top      --addr <host:port> [--iterations N] [--interval-ms N]
  mendel bench qps --index <snapshot> --db <fasta> --query <fasta>
                  [--batch N]
  mendel serve    --node N --listen <host:port> --http <host:port>
                  [--peers N=host:port,...] [--http-peers N=host:port,...]
                  [--config <toml>] [--db <fasta>]
                  [--nodes N] [--groups N] [--replication N] [--seed N] [--dna]
                  [--data-dir <dir>] [--rpc-timeout-ms N] [--member-timeout-ms N]
                  [--tracing true|false] [--trace-sample N]
                  [--slowlog-threshold-ms N] [--slowlog-sample N]
  mendel help
";
