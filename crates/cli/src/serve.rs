//! `mendel serve` — run one storage node as a real OS process.
//!
//! Each process builds its [`MendelCluster`] control plane
//! deterministically from the ingested corpus (same FASTA + same
//! cluster parameters ⇒ same routing tables and block placement in
//! every process), serves its node's share of query traffic over a
//! [`mendel::NodeServer`] TCP transport, and exposes a small HTTP/JSON
//! front-end:
//!
//! * `POST /ingest`  — body: FASTA; builds the cluster and starts
//!   serving (idempotent: re-ingesting replaces the cluster).
//! * `POST /query`   — body: residues (raw or FASTA); answers with
//!   hits + coverage JSON rendered by [`render_outcome_json`].
//! * `GET  /metrics` — Prometheus text exposition (cluster + transport).
//! * `GET  /healthz` — liveness + whether the node is serving yet.
//! * `POST /shutdown` — orderly exit (tests also just SIGKILL).
//!
//! Configuration comes from a TOML-subset file (`--config serve.toml`)
//! and/or flags, flags winning:
//!
//! ```toml
//! node = 0
//! listen = "127.0.0.1:7701"          # node-to-node TCP transport
//! http = "127.0.0.1:8701"            # HTTP front-end
//! peers = "1=127.0.0.1:7702,2=127.0.0.1:7703"
//! nodes = 3
//! groups = 1
//! replication = 1
//! data-dir = "/var/lib/mendel/node0" # durable backend over RealVfs
//! rpc-timeout-ms = 2000
//! member-timeout-ms = 500
//! ```
//!
//! The supported TOML subset is flat `key = value` lines (quoted
//! strings, bare integers/booleans) plus comments — enough for a node
//! config file while keeping the parser dependency-free and fully
//! tested.

use crate::args::{ArgError, Args};
use crate::commands::CliError;
use crate::http::{Handler, HttpServer, Request, Response};
use mendel::store::RealVfs;
use mendel::{
    ClusterConfig, CoverageReport, MendelCluster, MendelError, MendelHit, MonotonicClock,
    NodeServer, QueryParams, StorageBackend, TcpFrontEnd, WireTimeouts,
};
use mendel_dht::NodeId;
use mendel_net::mailbox::NodeAddr;
use mendel_net::tcp::TcpConfig;
use mendel_net::TransportMetrics;
use mendel_seq::{parse_fasta_sequences, Alphabet, SeqStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a serve process needs to know, after merging config file
/// and flags.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// This process's node id (0-based, must be `< nodes`).
    pub node: u16,
    /// Node-to-node transport listen address.
    pub listen: SocketAddr,
    /// HTTP front-end listen address.
    pub http: SocketAddr,
    /// Other nodes' transport addresses: `node-id=host:port,...`.
    pub peers: Vec<(u16, SocketAddr)>,
    /// Optional FASTA to ingest at startup (otherwise `POST /ingest`).
    pub db: Option<String>,
    /// DNA alphabet instead of protein.
    pub dna: bool,
    /// Cluster shape (must match every peer process).
    pub nodes: usize,
    /// Group count.
    pub groups: usize,
    /// Block length override (0 = alphabet default).
    pub block_len: usize,
    /// Replication degree.
    pub replication: usize,
    /// Placement/index seed (must match every peer process).
    pub seed: u64,
    /// Durable storage root; `None` runs RAM-only.
    pub data_dir: Option<String>,
    /// Wire deadlines.
    pub timeouts: WireTimeouts,
}

fn bad(key: &str, value: &str, expected: &'static str) -> CliError {
    CliError::Args(ArgError::BadValue {
        key: key.into(),
        value: value.into(),
        expected,
    })
}

/// Parse the supported TOML subset: `key = value` lines, `#` comments,
/// quoted strings, bare scalars. Keys are normalised (`_` → `-`).
/// Sections, arrays, and multi-line values are rejected loudly rather
/// than misread.
pub fn parse_toml_subset(text: &str) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {}: sections are not supported in the serve config subset",
                lineno + 1
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", lineno + 1));
        };
        let key = key.trim().replace('_', "-");
        let mut value = value.trim();
        // Strip a trailing comment from bare scalars (quoted strings
        // keep their content verbatim).
        let value = if let Some(stripped) = value.strip_prefix('"') {
            let Some(end) = stripped.find('"') else {
                return Err(format!("line {}: unterminated string", lineno + 1));
            };
            stripped[..end].to_string()
        } else {
            if let Some(hash) = value.find('#') {
                value = value[..hash].trim_end();
            }
            if value.is_empty() || value.contains(char::is_whitespace) {
                return Err(format!(
                    "line {}: bare values cannot be empty or contain spaces",
                    lineno + 1
                ));
            }
            value.to_string()
        };
        if out.insert(key.clone(), value).is_some() {
            return Err(format!("line {}: duplicate key {key:?}", lineno + 1));
        }
    }
    Ok(out)
}

/// Parse `node-id=host:port,...`.
fn parse_peers(raw: &str) -> Result<Vec<(u16, SocketAddr)>, CliError> {
    let mut out = Vec::new();
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let Some((id, addr)) = part.trim().split_once('=') else {
            return Err(bad("peers", raw, "node-id=host:port,..."));
        };
        let id: u16 = id
            .trim()
            .parse()
            .map_err(|_| bad("peers", raw, "node-id=host:port,..."))?;
        let addr: SocketAddr = addr
            .trim()
            .parse()
            .map_err(|_| bad("peers", raw, "node-id=host:port,..."))?;
        out.push((id, addr));
    }
    Ok(out)
}

impl ServeConfig {
    /// Merge `--config <toml>` (if given) with flags; flags win.
    pub fn from_args(args: &Args) -> Result<ServeConfig, CliError> {
        let mut merged: HashMap<String, String> = HashMap::new();
        if let Some(path) = args.get("config") {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.into(), e))?;
            merged = parse_toml_subset(&text).map_err(|msg| {
                CliError::Io(
                    path.into(),
                    std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
                )
            })?;
        }
        let pick = |key: &str| -> Option<String> {
            args.get(key)
                .map(str::to_string)
                .or_else(|| merged.get(key).cloned())
        };
        let parse_num = |key: &str, default: u64| -> Result<u64, CliError> {
            match pick(key) {
                None => Ok(default),
                Some(raw) => raw.parse().map_err(|_| bad(key, &raw, "integer")),
            }
        };
        let parse_sock = |key: &str| -> Result<SocketAddr, CliError> {
            let raw =
                pick(key).ok_or_else(|| CliError::Args(ArgError::MissingOption(key.into())))?;
            raw.parse().map_err(|_| bad(key, &raw, "host:port"))
        };
        let dna = args.flag("dna") || merged.get("dna").is_some_and(|v| v == "true" || v == "1");
        let base = if dna {
            ClusterConfig::small_dna()
        } else {
            ClusterConfig::small_protein()
        };
        let timeouts = WireTimeouts {
            rpc: Duration::from_millis(parse_num("rpc-timeout-ms", 30_000)?),
            member: Duration::from_millis(parse_num("member-timeout-ms", 15_000)?),
        };
        Ok(ServeConfig {
            node: parse_num("node", 0)? as u16,
            listen: parse_sock("listen")?,
            http: parse_sock("http")?,
            peers: parse_peers(&pick("peers").unwrap_or_default())?,
            db: pick("db"),
            dna,
            nodes: parse_num("nodes", base.nodes as u64)? as usize,
            groups: parse_num("groups", base.groups as u64)? as usize,
            block_len: parse_num("block-len", base.block_len as u64)? as usize,
            replication: parse_num("replication", base.replication as u64)? as usize,
            seed: parse_num("seed", base.seed)?,
            data_dir: pick("data-dir"),
            timeouts,
        })
    }

    fn alphabet(&self) -> Alphabet {
        if self.dna {
            Alphabet::Dna
        } else {
            Alphabet::Protein
        }
    }

    fn cluster_config(&self) -> ClusterConfig {
        let base = if self.dna {
            ClusterConfig::small_dna()
        } else {
            ClusterConfig::small_protein()
        };
        ClusterConfig {
            nodes: self.nodes,
            groups: self.groups,
            block_len: self.block_len,
            replication: self.replication,
            seed: self.seed,
            storage: if self.data_dir.is_some() {
                StorageBackend::durable()
            } else {
                StorageBackend::Memory
            },
            ..base
        }
    }

    fn query_params(&self) -> QueryParams {
        if self.dna {
            QueryParams::dna()
        } else {
            QueryParams::protein()
        }
    }
}

/// Render hits + coverage as deterministic JSON. The multi-process
/// twin test renders the in-process outcome with this same function and
/// asserts byte equality with the HTTP body, so keep every float
/// formatted by Rust's shortest-roundtrip `Display`.
pub fn render_outcome_json(
    db: &SeqStore,
    hits: &[MendelHit],
    coverage: &CoverageReport,
    unreachable: &[NodeId],
) -> String {
    let mut out = String::from("{\"hits\":[");
    for (i, h) in hits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = db
            .get(h.subject)
            .map(|s| s.name.clone())
            .unwrap_or_default();
        let _ = write!(
            out,
            "{{\"subject\":{},\"name\":{name:?},\"score\":{},\"bits\":{},\"evalue\":{},\
             \"identity\":{},\"query_start\":{},\"query_end\":{},\"subject_start\":{},\
             \"subject_end\":{}}}",
            h.subject.0,
            h.score,
            h.bits,
            h.evalue,
            h.identity,
            h.query_start,
            h.query_end,
            h.subject_start,
            h.subject_end,
        );
    }
    let _ = write!(
        out,
        "],\"coverage\":{{\"blocks_expected\":{},\"blocks_reachable\":{},\"degraded\":{},\
         \"unreachable\":[",
        coverage.blocks_expected, coverage.blocks_reachable, coverage.degraded,
    );
    for (i, n) in unreachable.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", n.0);
    }
    out.push_str("]}}");
    out
}

/// A serving node: cluster replica + TCP node server + query front-end.
struct Serving {
    cluster: Arc<MendelCluster>,
    /// Held for its Drop: owns the bound transport + serving thread.
    _node_server: NodeServer,
    front: TcpFrontEnd,
    sequences: usize,
}

struct State {
    cfg: ServeConfig,
    serving: Mutex<Option<Serving>>,
    stop: AtomicBool,
}

impl State {
    /// Build the cluster from FASTA text and start (or restart) the
    /// node server and front-end.
    fn ingest(&self, fasta: &str) -> Result<(usize, usize), CliError> {
        let alphabet = self.cfg.alphabet();
        let mut store = SeqStore::new();
        for s in parse_fasta_sequences(fasta, alphabet)? {
            store.insert(s);
        }
        let sequences = store.len();
        let db = Arc::new(store);
        let config = self.cfg.cluster_config();
        let cluster = Arc::new(match &self.cfg.data_dir {
            None => MendelCluster::build(config, db)?,
            Some(dir) => {
                let vfs = RealVfs::new(dir).map_err(|e| {
                    CliError::Mendel(MendelError::Store(format!("data dir {dir}: {e}")))
                })?;
                MendelCluster::build_with_storage(
                    config,
                    db,
                    Arc::new(MonotonicClock::new()),
                    Some(Arc::new(vfs)),
                )?
            }
        });
        let me = NodeId(self.cfg.node);
        let peer_addrs: Vec<(NodeAddr, SocketAddr)> = self
            .cfg
            .peers
            .iter()
            .map(|&(id, sock)| (NodeAddr(id + 1), sock))
            .collect();
        // Tear the previous incarnation down before rebinding the port.
        *self.serving.lock() = None;
        let node_server = NodeServer::start(
            cluster.clone(),
            me,
            self.cfg.listen,
            &peer_addrs,
            TcpConfig::default(),
            TransportMetrics::detached(),
            self.cfg.timeouts,
        )
        .map_err(|e| CliError::Io(self.cfg.listen.to_string(), e))?;
        let mut front_peers = peer_addrs.clone();
        if let Some(sock) = node_server.local_socket_addr() {
            front_peers.push((NodeAddr(me.0 + 1), sock));
        }
        let front = TcpFrontEnd::connect(
            cluster.clone(),
            self.cfg.node,
            &front_peers,
            TcpConfig::default(),
            TransportMetrics::detached(),
            self.cfg.timeouts,
        );
        let blocks = cluster.total_blocks();
        *self.serving.lock() = Some(Serving {
            cluster,
            _node_server: node_server,
            front,
            sequences,
        });
        Ok((sequences, blocks))
    }

    fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                let serving = self.serving.lock().is_some();
                Response::json(
                    200,
                    format!(
                        "{{\"status\":\"ok\",\"node\":{},\"serving\":{serving}}}",
                        self.cfg.node
                    ),
                )
            }
            ("POST", "/ingest") => {
                let Ok(text) = std::str::from_utf8(&req.body) else {
                    return Response::json(400, "{\"error\":\"ingest body must be UTF-8 FASTA\"}");
                };
                match self.ingest(text) {
                    Ok((sequences, blocks)) => Response::json(
                        200,
                        format!(
                            "{{\"ingested\":true,\"sequences\":{sequences},\"blocks\":{blocks}}}"
                        ),
                    ),
                    Err(e) => Response::json(400, format!("{{\"error\":{:?}}}", e.to_string())),
                }
            }
            ("POST", "/query") => {
                let Ok(text) = std::str::from_utf8(&req.body) else {
                    return Response::json(400, "{\"error\":\"query body must be UTF-8\"}");
                };
                let residues = match extract_query(text, self.cfg.alphabet()) {
                    Ok(r) => r,
                    Err(e) => {
                        return Response::json(400, format!("{{\"error\":{:?}}}", e.to_string()))
                    }
                };
                let guard = self.serving.lock();
                let Some(serving) = guard.as_ref() else {
                    return Response::json(503, "{\"error\":\"no corpus ingested yet\"}");
                };
                match serving.front.query(&residues, &self.cfg.query_params()) {
                    Ok(outcome) => Response::json(
                        200,
                        render_outcome_json(
                            &serving.cluster.db(),
                            &outcome.hits,
                            &outcome.coverage,
                            &outcome.unreachable,
                        ),
                    ),
                    Err(e) => Response::json(400, format!("{{\"error\":{:?}}}", e.to_string())),
                }
            }
            ("GET", "/metrics") => {
                let guard = self.serving.lock();
                let Some(serving) = guard.as_ref() else {
                    return Response::text(200, "# no corpus ingested yet\n");
                };
                Response::text(200, serving.cluster.metrics_snapshot().to_prometheus())
            }
            ("POST", "/shutdown") => {
                // audit:ordering(Relaxed): best-effort stop flag; the serve loop polls it
                self.stop.store(true, Ordering::Relaxed);
                Response::json(200, "{\"shutting_down\":true}")
            }
            _ => Response::json(404, "{\"error\":\"no such route\"}"),
        }
    }
}

/// Accept a raw residue string or a FASTA record (first sequence).
fn extract_query(text: &str, alphabet: Alphabet) -> Result<Vec<u8>, CliError> {
    let trimmed = text.trim();
    if trimmed.starts_with('>') {
        let mut seqs = parse_fasta_sequences(trimmed, alphabet)?;
        if seqs.is_empty() {
            return Err(bad("query", "<empty fasta>", "FASTA with one sequence"));
        }
        return Ok(seqs.remove(0).residues);
    }
    let cleaned: String = trimmed.chars().filter(|c| !c.is_whitespace()).collect();
    let seqs = parse_fasta_sequences(&format!(">query\n{cleaned}\n"), alphabet)?;
    Ok(seqs
        .into_iter()
        .next()
        .map(|s| s.residues)
        .unwrap_or_default())
}

/// Readiness marker for process harnesses: printed exactly once, after
/// the HTTP socket is live. `cmd_serve` blocks until shutdown, so this
/// cannot be returned through `run()` like other command output.
#[allow(clippy::print_stdout)]
fn announce_ready(node: u16, http: SocketAddr) {
    // audit:allow(println): serve readiness marker; the command blocks until shutdown
    println!("mendel serve: node {node} http {http} ready");
}

/// `mendel serve` — blocks until `POST /shutdown` (or the process is
/// killed). Returns a one-line summary for tests that exercise the
/// orderly path.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let cfg = ServeConfig::from_args(args)?;
    let state = Arc::new(State {
        cfg: cfg.clone(),
        serving: Mutex::new(None),
        stop: AtomicBool::new(false),
    });
    if let Some(db_path) = &cfg.db {
        let text =
            std::fs::read_to_string(db_path).map_err(|e| CliError::Io(db_path.clone(), e))?;
        state.ingest(&text)?;
    }
    let handler: Handler = {
        let state = state.clone();
        Arc::new(move |req: &Request| state.handle(req))
    };
    let mut http =
        HttpServer::bind(cfg.http, handler).map_err(|e| CliError::Io(cfg.http.to_string(), e))?;
    announce_ready(cfg.node, http.local_addr());
    // audit:ordering(Relaxed): best-effort stop flag; polling loop
    while !state.stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(100));
    }
    http.shutdown();
    let served = state
        .serving
        .lock()
        .as_ref()
        .map(|s| s.sequences)
        .unwrap_or(0);
    *state.serving.lock() = None;
    Ok(format!(
        "node {} stopped; last corpus had {served} sequences\n",
        cfg.node
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn toml_subset_parses_flat_keys() {
        let parsed = parse_toml_subset(
            "# node zero\nnode = 0\nlisten = \"127.0.0.1:7701\"\npeers = \"1=127.0.0.1:7702\"\n\
             replication = 2 # with a comment\ndna = true\n",
        )
        .unwrap();
        assert_eq!(parsed.get("node").map(String::as_str), Some("0"));
        assert_eq!(
            parsed.get("listen").map(String::as_str),
            Some("127.0.0.1:7701")
        );
        assert_eq!(parsed.get("replication").map(String::as_str), Some("2"));
        assert_eq!(parsed.get("dna").map(String::as_str), Some("true"));
    }

    #[test]
    fn toml_subset_rejects_sections_and_garbage() {
        assert!(parse_toml_subset("[node]\n")
            .unwrap_err()
            .contains("section"));
        assert!(parse_toml_subset("node 0\n")
            .unwrap_err()
            .contains("key = value"));
        assert!(parse_toml_subset("s = \"open\n")
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_toml_subset("a = 1\na = 2\n")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_toml_subset("a = one two\n")
            .unwrap_err()
            .contains("spaces"));
    }

    #[test]
    fn flags_override_config_file() {
        let dir = std::env::temp_dir().join("mendel-serve-cfg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.toml");
        std::fs::write(
            &path,
            "node = 1\nlisten = \"127.0.0.1:7701\"\nhttp = \"127.0.0.1:8701\"\n\
             nodes = 6\ngroups = 2\nrpc-timeout-ms = 1234\n",
        )
        .unwrap();
        let args = Args::parse(&toks(&format!(
            "serve --config {} --node 2 --groups 3",
            path.display()
        )))
        .unwrap();
        let cfg = ServeConfig::from_args(&args).unwrap();
        assert_eq!(cfg.node, 2, "flag beats file");
        assert_eq!(cfg.groups, 3, "flag beats file");
        assert_eq!(cfg.nodes, 6, "file fills the rest");
        assert_eq!(cfg.timeouts.rpc, Duration::from_millis(1234));
        assert_eq!(cfg.listen, "127.0.0.1:7701".parse().unwrap());
    }

    #[test]
    fn missing_listen_is_reported() {
        let args = Args::parse(&toks("serve --node 0 --http 127.0.0.1:0")).unwrap();
        let err = ServeConfig::from_args(&args).unwrap_err();
        assert!(err.to_string().contains("listen"), "{err}");
    }

    #[test]
    fn peers_parse_and_reject() {
        assert_eq!(
            parse_peers("1=127.0.0.1:7702, 2=127.0.0.1:7703").unwrap(),
            vec![
                (1u16, "127.0.0.1:7702".parse().unwrap()),
                (2u16, "127.0.0.1:7703".parse().unwrap()),
            ]
        );
        assert!(parse_peers("x=1").is_err());
        assert!(parse_peers("1:no-equals").is_err());
        assert!(parse_peers("").unwrap().is_empty());
    }

    #[test]
    fn render_outcome_json_is_deterministic_and_wellformed() {
        let db = SeqStore::new();
        let hits = vec![MendelHit {
            subject: mendel_seq::SeqId(3),
            score: 120,
            bits: 50.25,
            evalue: 1.5e-20,
            query_start: 0,
            query_end: 99,
            subject_start: 4,
            subject_end: 103,
            identity: 0.875,
        }];
        let coverage = CoverageReport {
            blocks_expected: 10,
            blocks_reachable: 8,
            per_group: Vec::new(),
            degraded: true,
        };
        let a = render_outcome_json(&db, &hits, &coverage, &[NodeId(2)]);
        let b = render_outcome_json(&db, &hits, &coverage, &[NodeId(2)]);
        assert_eq!(a, b);
        assert!(a.contains("\"subject\":3"));
        assert!(a.contains("\"bits\":50.25"));
        assert!(a.contains("\"degraded\":true"));
        assert!(a.contains("\"unreachable\":[2]"));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn extract_query_accepts_raw_and_fasta() {
        let raw = extract_query("MKTAYIAKQR", Alphabet::Protein).unwrap();
        let fasta = extract_query(">q\nMKTAYIAKQR\n", Alphabet::Protein).unwrap();
        assert_eq!(raw, fasta);
        assert!(!raw.is_empty());
        assert!(
            extract_query(">empty\n", Alphabet::Protein).is_err()
                || extract_query(">empty\n", Alphabet::Protein)
                    .map(|r| r.is_empty())
                    .unwrap_or(false)
        );
    }
}
