//! `mendel serve` — run one storage node as a real OS process.
//!
//! Each process builds its [`MendelCluster`] control plane
//! deterministically from the ingested corpus (same FASTA + same
//! cluster parameters ⇒ same routing tables and block placement in
//! every process), serves its node's share of query traffic over a
//! [`mendel::NodeServer`] TCP transport, and exposes a small HTTP/JSON
//! front-end:
//!
//! * `POST /ingest`  — body: FASTA; builds the cluster and starts
//!   serving (idempotent: re-ingesting replaces the cluster).
//! * `POST /query`   — body: residues (raw or FASTA); answers with
//!   hits + coverage JSON rendered by [`render_outcome_json`].
//!   `?trace=1` appends the query's trace id and critical path (the
//!   plain body stays byte-identical to the untraced rendering).
//! * `GET  /metrics` — Prometheus text exposition (cluster + transport).
//!   `?scope=cluster` scrapes every `http-peers` member and merges the
//!   texts with `node="N"` labels ([`federate_prometheus`]).
//! * `GET  /healthz` — liveness + whether the node is serving yet.
//!   `?verbose=1` adds build info (version, git sha), uptime, and the
//!   active SIMD kernel.
//! * `GET  /trace/<id>` — span records for one trace; `format=`
//!   `chrome` (default, Perfetto-loadable) | `records` | `tree` |
//!   `path`; `scope=cluster` (default) stitches fragments scraped from
//!   every peer's `/trace/<id>?scope=local` into one merged tree.
//! * `GET  /debug/traces` — trace ids this node has records for.
//! * `GET  /debug/flight` — flight-recorder ring dump.
//! * `GET  /debug/slowlog` — structured slow-query log (JSON).
//! * `POST /shutdown` — orderly exit (tests also just SIGKILL).
//!
//! Configuration comes from a TOML-subset file (`--config serve.toml`)
//! and/or flags, flags winning:
//!
//! ```toml
//! node = 0
//! listen = "127.0.0.1:7701"          # node-to-node TCP transport
//! http = "127.0.0.1:8701"            # HTTP front-end
//! peers = "1=127.0.0.1:7702,2=127.0.0.1:7703"
//! http-peers = "1=127.0.0.1:8702,2=127.0.0.1:8703"
//! nodes = 3
//! groups = 1
//! replication = 1
//! data-dir = "/var/lib/mendel/node0" # durable backend over RealVfs
//! rpc-timeout-ms = 2000
//! member-timeout-ms = 500
//! tracing = true                     # distributed tracing (DESIGN.md §17)
//! trace-sample = 1                   # trace every Nth query
//! slowlog-threshold-ms = 500         # slow-query log admission
//! slowlog-sample = 0                 # plus every Nth query (0 = off)
//! ```
//!
//! The supported TOML subset is flat `key = value` lines (quoted
//! strings, bare integers/booleans) plus comments — enough for a node
//! config file while keeping the parser dependency-free and fully
//! tested.

use crate::args::{ArgError, Args};
use crate::commands::CliError;
use crate::http::{http_request, Handler, HttpServer, Request, Response};
use mendel::store::RealVfs;
use mendel::{
    chrome_trace_json, parse_records_text, render_records_text, Clock, ClusterConfig,
    CoverageReport, MendelCluster, MendelError, MendelHit, MonotonicClock, NodeServer, QueryParams,
    SlowLogConfig, StorageBackend, TcpFrontEnd, TraceCollector, TraceId, WireQueryOutcome,
    WireTimeouts,
};
use mendel_dht::NodeId;
use mendel_net::mailbox::NodeAddr;
use mendel_net::tcp::TcpConfig;
use mendel_net::TransportMetrics;
use mendel_seq::{parse_fasta_sequences, Alphabet, SeqStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a serve process needs to know, after merging config file
/// and flags.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// This process's node id (0-based, must be `< nodes`).
    pub node: u16,
    /// Node-to-node transport listen address.
    pub listen: SocketAddr,
    /// HTTP front-end listen address.
    pub http: SocketAddr,
    /// Other nodes' transport addresses: `node-id=host:port,...`.
    pub peers: Vec<(u16, SocketAddr)>,
    /// Optional FASTA to ingest at startup (otherwise `POST /ingest`).
    pub db: Option<String>,
    /// DNA alphabet instead of protein.
    pub dna: bool,
    /// Cluster shape (must match every peer process).
    pub nodes: usize,
    /// Group count.
    pub groups: usize,
    /// Block length override (0 = alphabet default).
    pub block_len: usize,
    /// Replication degree.
    pub replication: usize,
    /// Placement/index seed (must match every peer process).
    pub seed: u64,
    /// Durable storage root; `None` runs RAM-only.
    pub data_dir: Option<String>,
    /// Wire deadlines.
    pub timeouts: WireTimeouts,
    /// Other nodes' *HTTP* addresses, for trace stitching and metrics
    /// federation: `node-id=host:port,...`.
    pub http_peers: Vec<(u16, SocketAddr)>,
    /// Distributed tracing on/off (DESIGN.md §17).
    pub tracing: bool,
    /// Trace every Nth query (deterministic counter modulus, ≥ 1).
    pub trace_sample: u64,
    /// Slow-query log admission threshold.
    pub slowlog_threshold: Duration,
    /// Also admit every Nth query to the slowlog (0 = off).
    pub slowlog_sample: u64,
}

fn bad(key: &str, value: &str, expected: &'static str) -> CliError {
    CliError::Args(ArgError::BadValue {
        key: key.into(),
        value: value.into(),
        expected,
    })
}

/// Parse the supported TOML subset: `key = value` lines, `#` comments,
/// quoted strings, bare scalars. Keys are normalised (`_` → `-`).
/// Sections, arrays, and multi-line values are rejected loudly rather
/// than misread.
pub fn parse_toml_subset(text: &str) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {}: sections are not supported in the serve config subset",
                lineno + 1
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", lineno + 1));
        };
        let key = key.trim().replace('_', "-");
        let mut value = value.trim();
        // Strip a trailing comment from bare scalars (quoted strings
        // keep their content verbatim).
        let value = if let Some(stripped) = value.strip_prefix('"') {
            let Some(end) = stripped.find('"') else {
                return Err(format!("line {}: unterminated string", lineno + 1));
            };
            stripped[..end].to_string()
        } else {
            if let Some(hash) = value.find('#') {
                value = value[..hash].trim_end();
            }
            if value.is_empty() || value.contains(char::is_whitespace) {
                return Err(format!(
                    "line {}: bare values cannot be empty or contain spaces",
                    lineno + 1
                ));
            }
            value.to_string()
        };
        if out.insert(key.clone(), value).is_some() {
            return Err(format!("line {}: duplicate key {key:?}", lineno + 1));
        }
    }
    Ok(out)
}

/// Parse `node-id=host:port,...`.
fn parse_peers(raw: &str) -> Result<Vec<(u16, SocketAddr)>, CliError> {
    let mut out = Vec::new();
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let Some((id, addr)) = part.trim().split_once('=') else {
            return Err(bad("peers", raw, "node-id=host:port,..."));
        };
        let id: u16 = id
            .trim()
            .parse()
            .map_err(|_| bad("peers", raw, "node-id=host:port,..."))?;
        let addr: SocketAddr = addr
            .trim()
            .parse()
            .map_err(|_| bad("peers", raw, "node-id=host:port,..."))?;
        out.push((id, addr));
    }
    Ok(out)
}

impl ServeConfig {
    /// Merge `--config <toml>` (if given) with flags; flags win.
    pub fn from_args(args: &Args) -> Result<ServeConfig, CliError> {
        let mut merged: HashMap<String, String> = HashMap::new();
        if let Some(path) = args.get("config") {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.into(), e))?;
            merged = parse_toml_subset(&text).map_err(|msg| {
                CliError::Io(
                    path.into(),
                    std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
                )
            })?;
        }
        let pick = |key: &str| -> Option<String> {
            args.get(key)
                .map(str::to_string)
                .or_else(|| merged.get(key).cloned())
        };
        let parse_num = |key: &str, default: u64| -> Result<u64, CliError> {
            match pick(key) {
                None => Ok(default),
                Some(raw) => raw.parse().map_err(|_| bad(key, &raw, "integer")),
            }
        };
        let parse_sock = |key: &str| -> Result<SocketAddr, CliError> {
            let raw =
                pick(key).ok_or_else(|| CliError::Args(ArgError::MissingOption(key.into())))?;
            raw.parse().map_err(|_| bad(key, &raw, "host:port"))
        };
        let dna = args.flag("dna") || merged.get("dna").is_some_and(|v| v == "true" || v == "1");
        let parse_bool = |key: &str, default: bool| -> Result<bool, CliError> {
            match pick(key) {
                None => Ok(default),
                Some(raw) => match raw.as_str() {
                    "true" | "1" => Ok(true),
                    "false" | "0" => Ok(false),
                    _ => Err(bad(key, &raw, "true or false")),
                },
            }
        };
        let base = if dna {
            ClusterConfig::small_dna()
        } else {
            ClusterConfig::small_protein()
        };
        let timeouts = WireTimeouts {
            rpc: Duration::from_millis(parse_num("rpc-timeout-ms", 30_000)?),
            member: Duration::from_millis(parse_num("member-timeout-ms", 15_000)?),
        };
        Ok(ServeConfig {
            node: parse_num("node", 0)? as u16,
            listen: parse_sock("listen")?,
            http: parse_sock("http")?,
            peers: parse_peers(&pick("peers").unwrap_or_default())?,
            db: pick("db"),
            dna,
            nodes: parse_num("nodes", base.nodes as u64)? as usize,
            groups: parse_num("groups", base.groups as u64)? as usize,
            block_len: parse_num("block-len", base.block_len as u64)? as usize,
            replication: parse_num("replication", base.replication as u64)? as usize,
            seed: parse_num("seed", base.seed)?,
            data_dir: pick("data-dir"),
            timeouts,
            http_peers: parse_peers(&pick("http-peers").unwrap_or_default())?,
            tracing: parse_bool("tracing", true)?,
            trace_sample: parse_num("trace-sample", 1)?.max(1),
            slowlog_threshold: Duration::from_millis(parse_num("slowlog-threshold-ms", 500)?),
            slowlog_sample: parse_num("slowlog-sample", 0)?,
        })
    }

    fn alphabet(&self) -> Alphabet {
        if self.dna {
            Alphabet::Dna
        } else {
            Alphabet::Protein
        }
    }

    fn cluster_config(&self) -> ClusterConfig {
        let base = if self.dna {
            ClusterConfig::small_dna()
        } else {
            ClusterConfig::small_protein()
        };
        ClusterConfig {
            nodes: self.nodes,
            groups: self.groups,
            block_len: self.block_len,
            replication: self.replication,
            seed: self.seed,
            storage: if self.data_dir.is_some() {
                StorageBackend::durable()
            } else {
                StorageBackend::Memory
            },
            ..base
        }
    }

    fn query_params(&self) -> QueryParams {
        if self.dna {
            QueryParams::dna()
        } else {
            QueryParams::protein()
        }
    }
}

/// Render hits + coverage as deterministic JSON. The multi-process
/// twin test renders the in-process outcome with this same function and
/// asserts byte equality with the HTTP body, so keep every float
/// formatted by Rust's shortest-roundtrip `Display`.
pub fn render_outcome_json(
    db: &SeqStore,
    hits: &[MendelHit],
    coverage: &CoverageReport,
    unreachable: &[NodeId],
) -> String {
    let mut out = String::from("{\"hits\":[");
    for (i, h) in hits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = db
            .get(h.subject)
            .map(|s| s.name.clone())
            .unwrap_or_default();
        let _ = write!(
            out,
            "{{\"subject\":{},\"name\":{name:?},\"score\":{},\"bits\":{},\"evalue\":{},\
             \"identity\":{},\"query_start\":{},\"query_end\":{},\"subject_start\":{},\
             \"subject_end\":{}}}",
            h.subject.0,
            h.score,
            h.bits,
            h.evalue,
            h.identity,
            h.query_start,
            h.query_end,
            h.subject_start,
            h.subject_end,
        );
    }
    let _ = write!(
        out,
        "],\"coverage\":{{\"blocks_expected\":{},\"blocks_reachable\":{},\"degraded\":{},\
         \"unreachable\":[",
        coverage.blocks_expected, coverage.blocks_reachable, coverage.degraded,
    );
    for (i, n) in unreachable.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", n.0);
    }
    out.push_str("]}}");
    out
}

/// A serving node: cluster replica + TCP node server + query front-end.
struct Serving {
    cluster: Arc<MendelCluster>,
    /// Held for its Drop: owns the bound transport + serving thread.
    _node_server: NodeServer,
    front: TcpFrontEnd,
    sequences: usize,
}

struct State {
    cfg: ServeConfig,
    serving: Mutex<Option<Serving>>,
    stop: AtomicBool,
    /// Anchored at process start; `/healthz?verbose=1` reports its age.
    uptime: MonotonicClock,
}

impl State {
    /// Build the cluster from FASTA text and start (or restart) the
    /// node server and front-end.
    fn ingest(&self, fasta: &str) -> Result<(usize, usize), CliError> {
        let alphabet = self.cfg.alphabet();
        let mut store = SeqStore::new();
        for s in parse_fasta_sequences(fasta, alphabet)? {
            store.insert(s);
        }
        let sequences = store.len();
        let db = Arc::new(store);
        let config = self.cfg.cluster_config();
        let cluster = Arc::new(match &self.cfg.data_dir {
            None => MendelCluster::build(config, db)?,
            Some(dir) => {
                let vfs = RealVfs::new(dir).map_err(|e| {
                    CliError::Mendel(MendelError::Store(format!("data dir {dir}: {e}")))
                })?;
                MendelCluster::build_with_storage(
                    config,
                    db,
                    Arc::new(MonotonicClock::new()),
                    Some(Arc::new(vfs)),
                )?
            }
        });
        // Span ids minted here must never collide with a peer process's
        // once the fragments are stitched into one tree: give each node
        // its own id plane (top 16 bits). The counter is monotone, so
        // re-ingesting never rewinds it.
        cluster
            .metrics_registry()
            .seed_trace_ids(((self.cfg.node as u64 + 1) << 48) | 1);
        cluster.set_tracing(self.cfg.tracing);
        cluster.set_trace_sampling(self.cfg.trace_sample);
        cluster.set_slowlog_config(SlowLogConfig {
            threshold: self.cfg.slowlog_threshold,
            sample_every: self.cfg.slowlog_sample,
            ..SlowLogConfig::default()
        });
        let me = NodeId(self.cfg.node);
        let peer_addrs: Vec<(NodeAddr, SocketAddr)> = self
            .cfg
            .peers
            .iter()
            .map(|&(id, sock)| (NodeAddr(id + 1), sock))
            .collect();
        // Tear the previous incarnation down before rebinding the port.
        *self.serving.lock() = None;
        let node_server = NodeServer::start(
            cluster.clone(),
            me,
            self.cfg.listen,
            &peer_addrs,
            TcpConfig::default(),
            // Registered (not detached): `mendel top` reads wire bytes
            // from the federated exposition. Node server and front-end
            // share the scope, so the counters aggregate both roles.
            TransportMetrics::registered(cluster.metrics_registry()),
            self.cfg.timeouts,
        )
        .map_err(|e| CliError::Io(self.cfg.listen.to_string(), e))?;
        let mut front_peers = peer_addrs.clone();
        if let Some(sock) = node_server.local_socket_addr() {
            front_peers.push((NodeAddr(me.0 + 1), sock));
        }
        let front = TcpFrontEnd::connect(
            cluster.clone(),
            self.cfg.node,
            &front_peers,
            TcpConfig::default(),
            TransportMetrics::registered(cluster.metrics_registry()),
            self.cfg.timeouts,
        );
        let blocks = cluster.total_blocks();
        *self.serving.lock() = Some(Serving {
            cluster,
            _node_server: node_server,
            front,
            sequences,
        });
        Ok((sequences, blocks))
    }

    /// The serving cluster handle, with the serving mutex *released*:
    /// routes that go on to scrape peer HTTP endpoints must never do
    /// that socket I/O under the lock.
    fn cluster(&self) -> Option<Arc<MendelCluster>> {
        self.serving.lock().as_ref().map(|s| s.cluster.clone())
    }

    fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                let serving = self.serving.lock().is_some();
                let mut body = format!(
                    "{{\"status\":\"ok\",\"node\":{},\"serving\":{serving}",
                    self.cfg.node
                );
                if req.query_param("verbose").is_some_and(|v| v != "0") {
                    let _ = write!(
                        body,
                        ",\"version\":{:?},\"git_sha\":{:?},\"uptime_seconds\":{},\
                         \"kernel\":{:?},\"tracing\":{},\"trace_sample\":{}",
                        env!("CARGO_PKG_VERSION"),
                        env!("MENDEL_GIT_SHA"),
                        self.uptime.now().as_secs(),
                        mendel_seq::simd::active_kernel(),
                        self.cfg.tracing,
                        self.cfg.trace_sample,
                    );
                }
                body.push('}');
                Response::json(200, body)
            }
            ("POST", "/ingest") => {
                let Ok(text) = std::str::from_utf8(&req.body) else {
                    return Response::json(400, "{\"error\":\"ingest body must be UTF-8 FASTA\"}");
                };
                match self.ingest(text) {
                    Ok((sequences, blocks)) => Response::json(
                        200,
                        format!(
                            "{{\"ingested\":true,\"sequences\":{sequences},\"blocks\":{blocks}}}"
                        ),
                    ),
                    Err(e) => Response::json(400, format!("{{\"error\":{:?}}}", e.to_string())),
                }
            }
            ("POST", "/query") => {
                let Ok(text) = std::str::from_utf8(&req.body) else {
                    return Response::json(400, "{\"error\":\"query body must be UTF-8\"}");
                };
                let residues = match extract_query(text, self.cfg.alphabet()) {
                    Ok(r) => r,
                    Err(e) => {
                        return Response::json(400, format!("{{\"error\":{:?}}}", e.to_string()))
                    }
                };
                let guard = self.serving.lock();
                let Some(serving) = guard.as_ref() else {
                    return Response::json(503, "{\"error\":\"no corpus ingested yet\"}");
                };
                match serving.front.query(&residues, &self.cfg.query_params()) {
                    Ok(outcome) => {
                        let mut body = render_outcome_json(
                            &serving.cluster.db(),
                            &outcome.hits,
                            &outcome.coverage,
                            &outcome.unreachable,
                        );
                        // `?trace=1` appends trace fields; the plain
                        // body must stay byte-identical to PR 9 (the
                        // multi-process twin test asserts equality).
                        if req.query_param("trace").is_some_and(|v| v != "0") {
                            body.pop();
                            body.push_str(&render_trace_suffix(&outcome));
                            body.push('}');
                        }
                        Response::json(200, body)
                    }
                    Err(e) => Response::json(400, format!("{{\"error\":{:?}}}", e.to_string())),
                }
            }
            ("GET", "/metrics") => {
                let Some(cluster) = self.cluster() else {
                    return Response::text(200, "# no corpus ingested yet\n");
                };
                let local = cluster.metrics_snapshot().to_prometheus();
                if req.query_param("scope") != Some("cluster") {
                    return Response::text(200, local);
                }
                // Serving lock already released: scraping peers is
                // socket I/O and must run lock-free.
                let mut parts = vec![(self.cfg.node, local)];
                for &(node, http) in &self.cfg.http_peers {
                    if let Some(text) = scrape_peer(http, "/metrics") {
                        parts.push((node, text));
                    }
                }
                Response::text(200, federate_prometheus(&parts))
            }
            ("GET", "/debug/traces") => {
                let Some(cluster) = self.cluster() else {
                    return Response::json(503, "{\"error\":\"no corpus ingested yet\"}");
                };
                let mut collector = TraceCollector::new();
                collector.ingest(cluster.trace_records());
                let ids: Vec<String> = collector
                    .trace_ids()
                    .iter()
                    .map(|t| t.0.to_string())
                    .collect();
                Response::json(200, format!("{{\"traces\":[{}]}}", ids.join(",")))
            }
            ("GET", "/debug/flight") => {
                let Some(cluster) = self.cluster() else {
                    return Response::json(503, "{\"error\":\"no corpus ingested yet\"}");
                };
                Response::text(200, cluster.flight_recorder_dump())
            }
            ("GET", "/debug/slowlog") => {
                let Some(cluster) = self.cluster() else {
                    return Response::json(503, "{\"error\":\"no corpus ingested yet\"}");
                };
                // `render_json` clones entries out under the ring lock
                // and renders after — nothing here holds a lock across
                // the socket write.
                Response::json(200, cluster.slowlog().render_json())
            }
            ("GET", path) if path.starts_with("/trace/") => self.trace_response(req),
            ("POST", "/shutdown") => {
                // audit:ordering(Relaxed): best-effort stop flag; the serve loop polls it
                self.stop.store(true, Ordering::Relaxed);
                Response::json(200, "{\"shutting_down\":true}")
            }
            _ => Response::json(404, "{\"error\":\"no such route\"}"),
        }
    }

    /// `GET /trace/<id>` — one trace's span records, stitched across
    /// the cluster unless `scope=local`. Local records are ingested
    /// first so the in-band copies (which rode home in reply tails,
    /// already re-anchored onto this node's clock) win under
    /// dedup-keeps-first over raw peer-clock copies scraped via HTTP.
    fn trace_response(&self, req: &Request) -> Response {
        let id_raw = &req.path["/trace/".len()..];
        let Ok(id) = id_raw.parse::<u64>() else {
            return Response::json(400, "{\"error\":\"trace id must be a decimal u64\"}");
        };
        let trace = TraceId(id);
        let Some(cluster) = self.cluster() else {
            return Response::json(503, "{\"error\":\"no corpus ingested yet\"}");
        };
        let mut collector = TraceCollector::new();
        collector.ingest(
            cluster
                .trace_records()
                .into_iter()
                .filter(|r| r.trace == trace),
        );
        if req.query_param("scope").unwrap_or("cluster") == "cluster" {
            // Peers are asked for `scope=local` — no scrape cycles —
            // and the serving lock is already released (socket I/O must
            // run lock-free; the audit's lock-order graph stays flat).
            for &(_, http) in &self.cfg.http_peers {
                let path = format!("/trace/{id}?scope=local&format=records");
                if let Some(text) = scrape_peer(http, &path) {
                    if let Ok(records) = parse_records_text(&text) {
                        collector.ingest(records.into_iter().filter(|r| r.trace == trace));
                    }
                }
            }
        }
        collector.dedup();
        if collector.records().is_empty() {
            return Response::json(404, "{\"error\":\"no records for that trace\"}");
        }
        match req.query_param("format").unwrap_or("chrome") {
            "chrome" | "json" => Response::json(200, chrome_trace_json(collector.records())),
            "records" | "text" => Response::text(200, render_records_text(collector.records())),
            "tree" => match collector.tree(trace) {
                Some(tree) => Response::text(200, tree.render()),
                None => Response::json(404, "{\"error\":\"no records for that trace\"}"),
            },
            "path" => match collector.tree(trace) {
                Some(tree) => {
                    let mut out = String::new();
                    for hop in tree.critical_path() {
                        let _ = writeln!(
                            out,
                            "{}\tnode{}\t{}us",
                            hop.name,
                            hop.node,
                            hop.duration.as_micros()
                        );
                    }
                    Response::text(200, out)
                }
                None => Response::json(404, "{\"error\":\"no records for that trace\"}"),
            },
            other => Response::json(
                400,
                format!("{{\"error\":\"unknown format {other:?} (chrome|records|tree|path)\"}}"),
            ),
        }
    }
}

/// One-shot GET against a peer front-end; `None` on any transport or
/// non-200 outcome (federation degrades to the reachable subset rather
/// than failing the whole request).
fn scrape_peer(addr: SocketAddr, path: &str) -> Option<String> {
    let (status, body) = http_request(addr, "GET", path, b"").ok()?;
    (status == 200).then(|| String::from_utf8_lossy(&body).into_owned())
}

/// The `?trace=1` JSON tail appended to a query response (without the
/// surrounding braces): trace id plus the critical path through the
/// stitched cross-process span tree.
fn render_trace_suffix(outcome: &WireQueryOutcome) -> String {
    let mut out = String::new();
    match outcome.trace {
        None => out.push_str(",\"trace\":null,\"critical_path\":[]"),
        Some(t) => {
            let _ = write!(out, ",\"trace\":{},\"critical_path\":[", t.0);
            for (i, hop) in outcome.critical_path.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":{:?},\"node\":{},\"duration_us\":{}}}",
                    hop.name,
                    hop.node,
                    hop.duration.as_micros()
                );
            }
            out.push(']');
        }
    }
    out
}

/// Merge per-node Prometheus expositions into one cluster-scope text:
/// every sample line gains a leading `node="N"` label; `# TYPE` lines
/// are kept once (first node wins — the metric vocabulary is identical
/// across processes); other comment lines are dropped.
pub fn federate_prometheus(parts: &[(u16, String)]) -> String {
    let mut out = String::new();
    let mut typed: Vec<String> = Vec::new();
    for (node, text) in parts {
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !typed.iter().any(|n| n == name) {
                    typed.push(name.to_string());
                    out.push_str(line);
                    out.push('\n');
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            match line.find('{') {
                Some(brace) if !line[brace + 1..].starts_with('}') => {
                    let _ = writeln!(
                        out,
                        "{}{{node=\"{node}\",{}",
                        &line[..brace],
                        &line[brace + 1..]
                    );
                }
                Some(brace) => {
                    let _ = writeln!(
                        out,
                        "{}{{node=\"{node}\"{}",
                        &line[..brace],
                        &line[brace + 1..]
                    );
                }
                None => match line.split_once(' ') {
                    Some((name, rest)) => {
                        let _ = writeln!(out, "{name}{{node=\"{node}\"}} {rest}");
                    }
                    None => {
                        out.push_str(line);
                        out.push('\n');
                    }
                },
            }
        }
    }
    out
}

/// Accept a raw residue string or a FASTA record (first sequence).
fn extract_query(text: &str, alphabet: Alphabet) -> Result<Vec<u8>, CliError> {
    let trimmed = text.trim();
    if trimmed.starts_with('>') {
        let mut seqs = parse_fasta_sequences(trimmed, alphabet)?;
        if seqs.is_empty() {
            return Err(bad("query", "<empty fasta>", "FASTA with one sequence"));
        }
        return Ok(seqs.remove(0).residues);
    }
    let cleaned: String = trimmed.chars().filter(|c| !c.is_whitespace()).collect();
    let seqs = parse_fasta_sequences(&format!(">query\n{cleaned}\n"), alphabet)?;
    Ok(seqs
        .into_iter()
        .next()
        .map(|s| s.residues)
        .unwrap_or_default())
}

/// Readiness marker for process harnesses: printed exactly once, after
/// the HTTP socket is live. `cmd_serve` blocks until shutdown, so this
/// cannot be returned through `run()` like other command output.
#[allow(clippy::print_stdout)]
fn announce_ready(node: u16, http: SocketAddr) {
    // audit:allow(println): serve readiness marker; the command blocks until shutdown
    println!("mendel serve: node {node} http {http} ready");
}

/// `mendel serve` — blocks until `POST /shutdown` (or the process is
/// killed). Returns a one-line summary for tests that exercise the
/// orderly path.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let cfg = ServeConfig::from_args(args)?;
    let state = Arc::new(State {
        cfg: cfg.clone(),
        serving: Mutex::new(None),
        stop: AtomicBool::new(false),
        uptime: MonotonicClock::new(),
    });
    if let Some(db_path) = &cfg.db {
        let text =
            std::fs::read_to_string(db_path).map_err(|e| CliError::Io(db_path.clone(), e))?;
        state.ingest(&text)?;
    }
    let handler: Handler = {
        let state = state.clone();
        Arc::new(move |req: &Request| state.handle(req))
    };
    let mut http =
        HttpServer::bind(cfg.http, handler).map_err(|e| CliError::Io(cfg.http.to_string(), e))?;
    announce_ready(cfg.node, http.local_addr());
    // audit:ordering(Relaxed): best-effort stop flag; polling loop
    while !state.stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(100));
    }
    http.shutdown();
    let served = state
        .serving
        .lock()
        .as_ref()
        .map(|s| s.sequences)
        .unwrap_or(0);
    *state.serving.lock() = None;
    Ok(format!(
        "node {} stopped; last corpus had {served} sequences\n",
        cfg.node
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn toml_subset_parses_flat_keys() {
        let parsed = parse_toml_subset(
            "# node zero\nnode = 0\nlisten = \"127.0.0.1:7701\"\npeers = \"1=127.0.0.1:7702\"\n\
             replication = 2 # with a comment\ndna = true\n",
        )
        .unwrap();
        assert_eq!(parsed.get("node").map(String::as_str), Some("0"));
        assert_eq!(
            parsed.get("listen").map(String::as_str),
            Some("127.0.0.1:7701")
        );
        assert_eq!(parsed.get("replication").map(String::as_str), Some("2"));
        assert_eq!(parsed.get("dna").map(String::as_str), Some("true"));
    }

    #[test]
    fn toml_subset_rejects_sections_and_garbage() {
        assert!(parse_toml_subset("[node]\n")
            .unwrap_err()
            .contains("section"));
        assert!(parse_toml_subset("node 0\n")
            .unwrap_err()
            .contains("key = value"));
        assert!(parse_toml_subset("s = \"open\n")
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_toml_subset("a = 1\na = 2\n")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse_toml_subset("a = one two\n")
            .unwrap_err()
            .contains("spaces"));
    }

    #[test]
    fn flags_override_config_file() {
        let dir = std::env::temp_dir().join("mendel-serve-cfg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.toml");
        std::fs::write(
            &path,
            "node = 1\nlisten = \"127.0.0.1:7701\"\nhttp = \"127.0.0.1:8701\"\n\
             nodes = 6\ngroups = 2\nrpc-timeout-ms = 1234\n",
        )
        .unwrap();
        let args = Args::parse(&toks(&format!(
            "serve --config {} --node 2 --groups 3",
            path.display()
        )))
        .unwrap();
        let cfg = ServeConfig::from_args(&args).unwrap();
        assert_eq!(cfg.node, 2, "flag beats file");
        assert_eq!(cfg.groups, 3, "flag beats file");
        assert_eq!(cfg.nodes, 6, "file fills the rest");
        assert_eq!(cfg.timeouts.rpc, Duration::from_millis(1234));
        assert_eq!(cfg.listen, "127.0.0.1:7701".parse().unwrap());
    }

    #[test]
    fn missing_listen_is_reported() {
        let args = Args::parse(&toks("serve --node 0 --http 127.0.0.1:0")).unwrap();
        let err = ServeConfig::from_args(&args).unwrap_err();
        assert!(err.to_string().contains("listen"), "{err}");
    }

    #[test]
    fn peers_parse_and_reject() {
        assert_eq!(
            parse_peers("1=127.0.0.1:7702, 2=127.0.0.1:7703").unwrap(),
            vec![
                (1u16, "127.0.0.1:7702".parse().unwrap()),
                (2u16, "127.0.0.1:7703".parse().unwrap()),
            ]
        );
        assert!(parse_peers("x=1").is_err());
        assert!(parse_peers("1:no-equals").is_err());
        assert!(parse_peers("").unwrap().is_empty());
    }

    #[test]
    fn render_outcome_json_is_deterministic_and_wellformed() {
        let db = SeqStore::new();
        let hits = vec![MendelHit {
            subject: mendel_seq::SeqId(3),
            score: 120,
            bits: 50.25,
            evalue: 1.5e-20,
            query_start: 0,
            query_end: 99,
            subject_start: 4,
            subject_end: 103,
            identity: 0.875,
        }];
        let coverage = CoverageReport {
            blocks_expected: 10,
            blocks_reachable: 8,
            per_group: Vec::new(),
            degraded: true,
        };
        let a = render_outcome_json(&db, &hits, &coverage, &[NodeId(2)]);
        let b = render_outcome_json(&db, &hits, &coverage, &[NodeId(2)]);
        assert_eq!(a, b);
        assert!(a.contains("\"subject\":3"));
        assert!(a.contains("\"bits\":50.25"));
        assert!(a.contains("\"degraded\":true"));
        assert!(a.contains("\"unreachable\":[2]"));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn serve_config_parses_observability_keys() {
        let args = Args::parse(&toks(
            "serve --listen 127.0.0.1:0 --http 127.0.0.1:0 \
             --http-peers 1=127.0.0.1:8702,2=127.0.0.1:8703 \
             --tracing false --trace-sample 4 \
             --slowlog-threshold-ms 25 --slowlog-sample 16",
        ))
        .unwrap();
        let cfg = ServeConfig::from_args(&args).unwrap();
        assert_eq!(cfg.http_peers.len(), 2);
        assert_eq!(cfg.http_peers[0], (1, "127.0.0.1:8702".parse().unwrap()));
        assert!(!cfg.tracing);
        assert_eq!(cfg.trace_sample, 4);
        assert_eq!(cfg.slowlog_threshold, Duration::from_millis(25));
        assert_eq!(cfg.slowlog_sample, 16);
        // Defaults: tracing on, every query sampled, 500ms threshold.
        let args = Args::parse(&toks("serve --listen 127.0.0.1:0 --http 127.0.0.1:0")).unwrap();
        let cfg = ServeConfig::from_args(&args).unwrap();
        assert!(cfg.tracing);
        assert_eq!(cfg.trace_sample, 1);
        assert_eq!(cfg.slowlog_threshold, Duration::from_millis(500));
        assert_eq!(cfg.slowlog_sample, 0);
        assert!(cfg.http_peers.is_empty());
    }

    #[test]
    fn federate_prometheus_labels_samples_and_dedups_types() {
        let n0 = "# HELP mendel_q queries\n# TYPE mendel_q counter\nmendel_q 3\n\
                  # TYPE mendel_lat histogram\nmendel_lat_bucket{le=\"0.1\"} 2\nmendel_lat_count 2\n";
        let n1 = "# TYPE mendel_q counter\nmendel_q 5\nmendel_empty{} 1\n";
        let merged = federate_prometheus(&[(0, n0.to_string()), (1, n1.to_string())]);
        assert!(merged.contains("mendel_q{node=\"0\"} 3\n"), "{merged}");
        assert!(merged.contains("mendel_q{node=\"1\"} 5\n"), "{merged}");
        assert!(
            merged.contains("mendel_lat_bucket{node=\"0\",le=\"0.1\"} 2\n"),
            "{merged}"
        );
        assert!(merged.contains("mendel_empty{node=\"1\"} 1\n"), "{merged}");
        assert_eq!(
            merged.matches("# TYPE mendel_q counter").count(),
            1,
            "{merged}"
        );
        assert!(!merged.contains("# HELP"), "{merged}");
    }

    #[test]
    fn trace_suffix_renders_null_and_hops() {
        let untraced = WireQueryOutcome {
            trace: None,
            ..Default::default()
        };
        assert_eq!(
            render_trace_suffix(&untraced),
            ",\"trace\":null,\"critical_path\":[]"
        );
        let traced = WireQueryOutcome {
            trace: Some(TraceId(9)),
            critical_path: vec![mendel::CriticalHop {
                name: "query".into(),
                node: 60_000,
                duration: Duration::from_micros(1500),
            }],
            ..Default::default()
        };
        let suffix = render_trace_suffix(&traced);
        assert_eq!(
            suffix,
            ",\"trace\":9,\"critical_path\":[{\"name\":\"query\",\"node\":60000,\"duration_us\":1500}]"
        );
    }

    #[test]
    fn extract_query_accepts_raw_and_fasta() {
        let raw = extract_query("MKTAYIAKQR", Alphabet::Protein).unwrap();
        let fasta = extract_query(">q\nMKTAYIAKQR\n", Alphabet::Protein).unwrap();
        assert_eq!(raw, fasta);
        assert!(!raw.is_empty());
        assert!(
            extract_query(">empty\n", Alphabet::Protein).is_err()
                || extract_query(">empty\n", Alphabet::Protein)
                    .map(|r| r.is_empty())
                    .unwrap_or(false)
        );
    }
}
