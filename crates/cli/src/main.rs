//! Thin binary shim over [`mendel_cli::run`].

// Command output belongs on stdout; this shim is the one place the CLI
// prints.
#![allow(clippy::print_stdout)]

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match mendel_cli::run(&tokens) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", mendel_cli::USAGE);
            std::process::exit(1);
        }
    }
}
