//! Command implementations. Every command is a function from parsed
//! [`Args`] to a rendered `String` (so tests assert on output without a
//! subprocess); `run` dispatches and does the file I/O.

use crate::args::{ArgError, Args};
use bytes::Bytes;
use mendel::{
    snapshot, store, ClusterConfig, MendelCluster, MendelError, MetricKind, QueryParams,
    StorageBackend,
};
use mendel_net::LatencyModel;
use mendel_seq::gen::{MutationModel, NrLikeSpec};
use mendel_seq::{parse_fasta_sequences, write_fasta, Alphabet, SeqError, SeqStore};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Top-level CLI failures.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation failed.
    Args(ArgError),
    /// The subcommand does not exist.
    UnknownCommand(String),
    /// File I/O failed.
    Io(String, std::io::Error),
    /// A sequence-layer failure.
    Seq(SeqError),
    /// A framework failure.
    Mendel(MendelError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}; try `mendel help`"),
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
            CliError::Seq(e) => write!(f, "{e}"),
            CliError::Mendel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<SeqError> for CliError {
    fn from(e: SeqError) -> Self {
        CliError::Seq(e)
    }
}

impl From<MendelError> for CliError {
    fn from(e: MendelError) -> Self {
        CliError::Mendel(e)
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(path.into(), e))
}

fn write_file(path: &str, contents: &[u8]) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| CliError::Io(path.into(), e))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| CliError::Io(path.into(), e))
}

fn alphabet_of(args: &Args) -> Alphabet {
    if args.flag("dna") {
        Alphabet::Dna
    } else {
        Alphabet::Protein
    }
}

fn load_db(path: &str, alphabet: Alphabet) -> Result<Arc<SeqStore>, CliError> {
    let text = read(path)?;
    let mut store = SeqStore::new();
    for s in parse_fasta_sequences(&text, alphabet)? {
        store.insert(s);
    }
    Ok(Arc::new(store))
}

fn cluster_config(args: &Args, alphabet: Alphabet) -> Result<ClusterConfig, CliError> {
    let base = if alphabet == Alphabet::Dna {
        ClusterConfig {
            alphabet: Alphabet::Dna,
            metric: MetricKind::Hamming,
            ..ClusterConfig::paper_testbed_protein()
        }
    } else {
        ClusterConfig::paper_testbed_protein()
    };
    Ok(ClusterConfig {
        nodes: args.get_parsed("nodes", base.nodes, "integer")?,
        groups: args.get_parsed("groups", base.groups, "integer")?,
        block_len: args.get_parsed("block-len", base.block_len, "integer")?,
        replication: args.get_parsed("replication", base.replication, "integer")?,
        seed: args.get_parsed("seed", base.seed, "integer")?,
        ..base
    })
}

fn query_params(args: &Args, alphabet: Alphabet) -> Result<QueryParams, CliError> {
    let base = if alphabet == Alphabet::Dna {
        QueryParams::dna()
    } else {
        QueryParams::protein()
    };
    Ok(QueryParams {
        k: args.get_parsed("step", base.k, "integer")?,
        n: args.get_parsed("nn", base.n, "integer")?,
        i: args.get_parsed("identity", base.i, "number")?,
        c: args.get_parsed("cscore", base.c, "number")?,
        l: args.get_parsed("band", base.l, "integer")?,
        e: args.get_parsed("evalue", base.e, "number")?,
        ..base
    })
}

/// `mendel generate` — write a synthetic `nr`-like FASTA database.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let alphabet = alphabet_of(args);
    let spec = NrLikeSpec {
        alphabet,
        families: args.get_parsed("families", 64, "integer")?,
        members_per_family: args.get_parsed("members", 4, "integer")?,
        length_range: (
            args.get_parsed("min-len", 200, "integer")?,
            args.get_parsed("max-len", 600, "integer")?,
        ),
        family_divergence: MutationModel::with_indels(
            args.get_parsed("divergence", 0.10, "number")?,
            0.01,
        ),
        seed: args.get_parsed("seed", 0x4d454e44, "integer")?,
    };
    let db = spec.generate()?;
    let fasta = write_fasta(db.iter(), 70);
    let out = args.require("out")?;
    write_file(out, fasta.as_bytes())?;
    Ok(format!(
        "wrote {} sequences / {} residues to {out}\n",
        db.len(),
        db.total_residues()
    ))
}

/// `mendel index` — index a FASTA database into a snapshot file.
pub fn cmd_index(args: &Args) -> Result<String, CliError> {
    let alphabet = alphabet_of(args);
    let db = load_db(args.require("db")?, alphabet)?;
    let config = cluster_config(args, alphabet)?;
    let cluster = MendelCluster::build(config, db)?;
    let bytes = snapshot::save(&cluster)?;
    let out = args.require("out")?;
    write_file(out, &bytes)?;
    Ok(format!(
        "indexed {} blocks over {} nodes / {} groups in {:?}; snapshot {} KiB -> {out}\n",
        cluster.total_blocks(),
        cluster.config().nodes,
        cluster.config().groups,
        cluster.index_elapsed(),
        bytes.len() / 1024
    ))
}

/// Restore a cluster from `--index`/`--db`, inferring the alphabet.
/// The db must be encoded with the snapshot's alphabet, so try protein
/// first, then DNA.
fn restore_cluster(args: &Args) -> Result<(MendelCluster, Alphabet), CliError> {
    let index_path = args.require("index")?;
    let raw = std::fs::read(index_path).map_err(|e| CliError::Io(index_path.into(), e))?;
    let try_restore = |alpha: Alphabet| -> Result<MendelCluster, CliError> {
        let db = load_db(args.require("db")?, alpha)?;
        snapshot::restore(&Bytes::from(raw.clone()), db, LatencyModel::lan())
            .map_err(CliError::from)
    };
    match try_restore(Alphabet::Protein) {
        Ok(c) if c.config().alphabet == Alphabet::Protein => Ok((c, Alphabet::Protein)),
        _ => Ok((try_restore(Alphabet::Dna)?, Alphabet::Dna)),
    }
}

/// `mendel query` — run FASTA queries against a snapshot.
pub fn cmd_query(args: &Args) -> Result<String, CliError> {
    let (cluster, alphabet) = restore_cluster(args)?;
    let params = query_params(args, alphabet)?;
    let top = args.get_parsed("top", 5usize, "integer")?;
    let queries = parse_fasta_sequences(&read(args.require("query")?)?, alphabet)?;
    let mut out = String::new();
    for q in &queries {
        let report = cluster.query(&q.residues, &params)?;
        let _ = writeln!(
            out,
            "query {} ({} residues): {} hits, simulated turnaround {:?}",
            q.name,
            q.len(),
            report.hits.len(),
            report.turnaround()
        );
        for hit in report.hits.iter().take(top) {
            let name = cluster
                .db()
                .get(hit.subject)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| hit.subject.to_string());
            let _ = writeln!(
                out,
                "  {name:<20} score {:>6}  bits {:>8.1}  E {:>10.2e}  id {:>5.1}%  q[{}..{}] s[{}..{}]",
                hit.score,
                hit.bits,
                hit.evalue,
                hit.identity * 100.0,
                hit.query_start,
                hit.query_end,
                hit.subject_start,
                hit.subject_end
            );
        }
    }
    Ok(out)
}

/// `mendel blast` — run the BLAST baseline over a FASTA database.
pub fn cmd_blast(args: &Args) -> Result<String, CliError> {
    use mendel_blast::{Blast, BlastParams};
    let alphabet = alphabet_of(args);
    let db = load_db(args.require("db")?, alphabet)?;
    let mut params = if alphabet == Alphabet::Dna {
        BlastParams::dna()
    } else {
        BlastParams::protein()
    };
    params.evalue_cutoff = args.get_parsed("evalue", params.evalue_cutoff, "number")?;
    let blast = Blast::new(db.clone(), params);
    let top = args.get_parsed("top", 5usize, "integer")?;
    let queries = parse_fasta_sequences(&read(args.require("query")?)?, alphabet)?;
    let mut out = String::new();
    for q in &queries {
        let hits = blast.search(&q.residues);
        let _ = writeln!(
            out,
            "query {} ({} residues): {} hits",
            q.name,
            q.len(),
            hits.len()
        );
        for hit in hits.iter().take(top) {
            let name = db
                .get(hit.subject)
                .map(|s| s.name.clone())
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {name:<20} score {:>6}  bits {:>8.1}  E {:>10.2e}  id {:>5.1}%",
                hit.score,
                hit.bits,
                hit.evalue,
                hit.identity * 100.0
            );
        }
    }
    Ok(out)
}

/// `mendel info` — describe a snapshot.
pub fn cmd_info(args: &Args) -> Result<String, CliError> {
    let index_path = args.require("index")?;
    let raw = std::fs::read(index_path).map_err(|e| CliError::Io(index_path.into(), e))?;
    let db = load_db(args.require("db")?, Alphabet::Protein)
        .or_else(|_| load_db(args.require("db")?, Alphabet::Dna))?;
    let cluster = snapshot::restore(&Bytes::from(raw), db, LatencyModel::lan())?;
    let cfg = cluster.config();
    let report = cluster.load_report();
    Ok(format!(
        "snapshot: {:?} cluster, {} nodes / {} groups, block length {}, replication {}\n\
         blocks: {} ({} bytes payload), load spread {:.3} pp\n",
        cfg.alphabet,
        cfg.nodes,
        cfg.groups,
        cfg.block_len,
        cfg.replication,
        cluster.total_blocks(),
        report.total(),
        report.spread_pct()
    ))
}

/// `mendel metrics` — exercise a snapshot and dump its metric registry.
///
/// With `--query` the given FASTA queries run first so search counters
/// and stage histograms are populated; without it the dump reflects
/// only restore-time state. `--format prometheus` (default) emits the
/// text exposition; `--format json` the JSON one (DESIGN.md §11).
pub fn cmd_metrics(args: &Args) -> Result<String, CliError> {
    let (cluster, alphabet) = restore_cluster(args)?;
    if let Some(query_path) = args.get("query") {
        let params = query_params(args, alphabet)?;
        for q in parse_fasta_sequences(&read(query_path)?, alphabet)? {
            cluster.query(&q.residues, &params)?;
        }
    }
    let snap = cluster.metrics_snapshot();
    match args.get("format").unwrap_or("prometheus") {
        "prometheus" | "prom" | "text" => Ok(snap.to_prometheus()),
        "json" => Ok(snap.to_json()),
        other => Err(CliError::Args(ArgError::BadValue {
            key: "format".into(),
            value: other.into(),
            expected: "prometheus|json",
        })),
    }
}

/// `mendel durability` — kill-and-recover chaos demo for the durable
/// storage backend (DESIGN.md §14).
///
/// Builds a cluster whose nodes persist every placed block through the
/// `mendel-store` WAL engine on an in-memory fault-injectable disk,
/// records baseline answers for a handful of self-queries, then kills
/// and recovers **every node in turn** — a kill drops the node's RAM
/// and store handle; a recover replays its WAL and verifies its segment
/// checksums. The command fails loudly if any post-recovery answer
/// differs from the baseline; otherwise it reports the engine counters
/// (`mendel.store.*`) and recovery timings.
pub fn cmd_durability(args: &Args) -> Result<String, CliError> {
    let alphabet = alphabet_of(args);
    let spec = NrLikeSpec {
        alphabet,
        families: args.get_parsed("families", 24, "integer")?,
        members_per_family: args.get_parsed("members", 2, "integer")?,
        length_range: (120, 260),
        seed: args.get_parsed("seed", 0x4d45_4e44, "integer")?,
        ..Default::default()
    };
    let db = Arc::new(spec.generate()?);
    let fsync = match args.get("fsync").unwrap_or("always") {
        "always" => store::FsyncPolicy::Always,
        "group" => store::FsyncPolicy::EveryN(8),
        "flush" => store::FsyncPolicy::OnFlush,
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                key: "fsync".into(),
                value: other.into(),
                expected: "always|group|flush",
            }))
        }
    };
    let base = if alphabet == Alphabet::Dna {
        ClusterConfig::small_dna()
    } else {
        ClusterConfig::small_protein()
    };
    let config = ClusterConfig {
        nodes: args.get_parsed("nodes", base.nodes, "integer")?,
        groups: args.get_parsed("groups", base.groups, "integer")?,
        storage: StorageBackend::Durable(store::StoreOptions {
            fsync,
            memtable_max_entries: args.get_parsed("memtable", 1024, "integer")?,
        }),
        ..base
    };
    let cluster = MendelCluster::build(config, db.clone())?;
    let params = if alphabet == Alphabet::Dna {
        QueryParams::dna()
    } else {
        QueryParams::protein()
    };
    let queries: Vec<Vec<u8>> = (0..db.len())
        .step_by((db.len() / 5).max(1))
        .filter_map(|i| db.get(mendel_seq::SeqId(i as u32)))
        .map(|s| s.residues.clone())
        .collect();
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| cluster.query(q, &params).map(|r| r.hits))
        .collect::<Result<_, _>>()?;

    let topo = cluster.topology();
    let nodes: Vec<_> = topo.nodes().collect();
    for &n in &nodes {
        cluster.fail_node(n)?;
        cluster.recover_node(n)?;
    }
    for (q, want) in queries.iter().zip(&baseline) {
        let got = cluster.query(q, &params)?.hits;
        if &got != want {
            return Err(CliError::Mendel(MendelError::Store(
                "post-recovery answers diverged from the baseline".into(),
            )));
        }
    }

    let snap = cluster.metrics_snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "durable backend: {} nodes / {} groups, fsync {:?}, {} sequences / {} residues",
        nodes.len(),
        cluster.config().groups,
        fsync,
        db.len(),
        db.total_residues(),
    );
    let _ = writeln!(
        out,
        "chaos: killed and recovered {} nodes; {} self-queries bit-identical",
        nodes.len(),
        queries.len(),
    );
    for c in [
        "wal_appends",
        "wal_fsyncs",
        "replayed_records",
        "segment_flushes",
        "segment_reads",
        "bloom_negatives",
        "dedup_hits",
        "recoveries",
    ] {
        let _ = writeln!(
            out,
            "  mendel.store.{c:<18} {}",
            snap.counter(&format!("mendel.store.{c}"))
        );
    }
    if let Some(h) = snap.histogram("mendel.store.recovery.seconds") {
        if let Some(mean) = h.mean() {
            let _ = writeln!(
                out,
                "  recovery time          mean {:.2} ms over {} recoveries",
                mean * 1e3,
                h.count(),
            );
        }
    }
    Ok(out)
}

/// Parse `host:port` for the live-node HTTP commands.
fn http_addr(key: &str, raw: &str) -> Result<std::net::SocketAddr, CliError> {
    raw.parse().map_err(|_| {
        CliError::Args(ArgError::BadValue {
            key: key.into(),
            value: raw.into(),
            expected: "host:port",
        })
    })
}

/// One-shot GET against a live node's HTTP front-end; non-200 is an
/// error carrying the node's own message.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<String, CliError> {
    let (status, body) = crate::http::http_request(addr, "GET", path, b"")
        .map_err(|e| CliError::Io(format!("http://{addr}{path}"), e))?;
    let body = String::from_utf8_lossy(&body).into_owned();
    if status != 200 {
        return Err(CliError::Mendel(MendelError::Query(format!(
            "GET {path} returned {status}: {}",
            body.trim()
        ))));
    }
    Ok(body)
}

/// Pull the trace ids a live node knows about (`/debug/traces` returns
/// `{"traces":[1,2,...]}` — parsed by hand, the workspace has no JSON
/// parser).
fn remote_trace_ids(addr: std::net::SocketAddr) -> Result<Vec<u64>, CliError> {
    let body = http_get(addr, "/debug/traces")?;
    let inner = body
        .split_once('[')
        .and_then(|(_, rest)| rest.split_once(']'))
        .map(|(ids, _)| ids)
        .unwrap_or("");
    Ok(inner
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect())
}

/// `mendel trace dump --addr <host:port>` — pull a stitched trace from
/// a live node over HTTP instead of replaying queries locally. Without
/// `--trace <id>` the most recent trace is dumped.
fn trace_dump_remote(args: &Args, addr_raw: &str) -> Result<String, CliError> {
    let addr = http_addr("addr", addr_raw)?;
    let format = match args.get("format").unwrap_or("chrome") {
        "chrome" | "json" => "chrome",
        "tree" | "text" => "tree",
        "records" => "records",
        "path" => "path",
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                key: "format".into(),
                value: other.into(),
                expected: "chrome|tree|records|path",
            }))
        }
    };
    let id: u64 = match args.get("trace") {
        Some(raw) => raw.parse().map_err(|_| {
            CliError::Args(ArgError::BadValue {
                key: "trace".into(),
                value: raw.into(),
                expected: "decimal trace id",
            })
        })?,
        None => *remote_trace_ids(addr)?.last().ok_or_else(|| {
            CliError::Mendel(MendelError::Query(format!(
                "node at {addr} has no recorded traces (is tracing enabled?)"
            )))
        })?,
    };
    let artifact = http_get(addr, &format!("/trace/{id}?format={format}&scope=cluster"))?;
    match args.get("out") {
        Some(path) => {
            write_file(path, artifact.as_bytes())?;
            Ok(format!(
                "trace {id}: wrote {} bytes to {path}\n",
                artifact.len()
            ))
        }
        None => Ok(artifact),
    }
}

/// `mendel trace slowlog --addr <host:port>` — dump a live node's
/// structured slow-query log (ring-buffered JSON; DESIGN.md §17).
pub fn cmd_trace_slowlog(args: &Args) -> Result<String, CliError> {
    let addr = http_addr("addr", args.require("addr")?)?;
    let mut body = http_get(addr, "/debug/slowlog")?;
    if !body.ends_with('\n') {
        body.push('\n');
    }
    Ok(body)
}

/// `mendel trace dump` — run queries with causal tracing on and dump
/// the per-node flight recorders (DESIGN.md §12).
///
/// `--format chrome` (default) emits Chrome trace-event JSON — load it
/// at ui.perfetto.dev or chrome://tracing; `--format tree` renders each
/// query's trace tree plus its critical path as plain text. With
/// `--out <path>` the artifact goes to a file and a one-line summary is
/// printed instead. With `--addr <host:port>` the trace is pulled from
/// a live node instead (no local replay; see DESIGN.md §17).
pub fn cmd_trace_dump(args: &Args) -> Result<String, CliError> {
    if let Some(addr) = args.get("addr") {
        return trace_dump_remote(args, addr);
    }
    let (cluster, alphabet) = restore_cluster(args)?;
    cluster.set_tracing(true);
    let params = query_params(args, alphabet)?;
    let queries = parse_fasta_sequences(&read(args.require("query")?)?, alphabet)?;
    let mut traced = Vec::new();
    for q in &queries {
        let report = cluster.query(&q.residues, &params)?;
        traced.push((q.name.clone(), report));
    }
    let artifact = match args.get("format").unwrap_or("chrome") {
        "chrome" | "json" => cluster.chrome_trace(),
        "tree" | "text" => {
            let mut out = String::new();
            for (name, report) in &traced {
                if let Some(tree) = report.trace.and_then(|t| cluster.trace_tree(t)) {
                    let _ = writeln!(out, "query {name}:");
                    out.push_str(&tree.render());
                    out.push_str("critical path:");
                    for hop in &report.critical_path {
                        let _ = write!(out, " {} [node{}] {:?};", hop.name, hop.node, hop.duration);
                    }
                    out.push('\n');
                }
            }
            out
        }
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                key: "format".into(),
                value: other.into(),
                expected: "chrome|tree",
            }))
        }
    };
    match args.get("out") {
        Some(path) => {
            write_file(path, artifact.as_bytes())?;
            Ok(format!(
                "traced {} queries; wrote {} bytes to {path}\n",
                traced.len(),
                artifact.len()
            ))
        }
        None => Ok(artifact),
    }
}

/// `mendel bench qps` — sustained-throughput probe over an indexed
/// cluster (DESIGN.md §15): the query set runs once through the
/// sequential `query` loop (per-query latency percentiles) and once
/// through `query_batch` at `--batch` (default 32), then the
/// work-stealing scheduler's counters are reported. Per-query hits are
/// asserted identical between the two paths.
pub fn cmd_bench_qps(args: &Args) -> Result<String, CliError> {
    let (cluster, alphabet) = restore_cluster(args)?;
    let params = query_params(args, alphabet)?;
    let batch: usize = args.get_parsed("batch", 32, "positive integer")?;
    if batch == 0 {
        return Err(CliError::Args(ArgError::BadValue {
            key: "batch".into(),
            value: "0".into(),
            expected: "positive integer",
        }));
    }
    let queries: Vec<Vec<u8>> = parse_fasta_sequences(&read(args.require("query")?)?, alphabet)?
        .into_iter()
        .map(|q| q.residues)
        .collect();

    // Sequential sweep with per-query wall latencies.
    let mut lats = Vec::with_capacity(queries.len());
    let mut seq_hits = Vec::with_capacity(queries.len());
    let wall = std::time::Instant::now();
    for q in &queries {
        let t = std::time::Instant::now();
        let r = cluster.query(q, &params)?;
        lats.push(t.elapsed());
        seq_hits.push(r.hits);
    }
    let seq_wall = wall.elapsed();

    // Batched sweep at the requested batch size.
    let mut batch_hits = Vec::with_capacity(queries.len());
    let mut shed = 0usize;
    let wall = std::time::Instant::now();
    for chunk in queries.chunks(batch) {
        for r in cluster.query_batch(chunk, &params) {
            match r {
                Ok(rep) => batch_hits.push(Some(rep.hits)),
                Err(MendelError::Shed { .. }) => {
                    shed += 1;
                    batch_hits.push(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    let batch_wall = wall.elapsed();
    for (s, b) in seq_hits.iter().zip(&batch_hits) {
        if let Some(b) = b {
            if s != b {
                return Err(CliError::Mendel(MendelError::Query(
                    "batched hits diverged from sequential".into(),
                )));
            }
        }
    }

    lats.sort_unstable();
    let pct = |p: f64| -> f64 {
        let idx = ((p / 100.0) * (lats.len().saturating_sub(1)) as f64).round() as usize;
        lats.get(idx).map_or(0.0, |d| d.as_secs_f64() * 1e3)
    };
    let seq_qps = queries.len() as f64 / seq_wall.as_secs_f64().max(1e-12);
    let served = batch_hits.iter().filter(|h| h.is_some()).count();
    let batch_qps = served as f64 / batch_wall.as_secs_f64().max(1e-12);
    let snap = cluster.metrics_snapshot();

    let mut out = String::new();
    let _ = writeln!(out, "qps bench: {} queries, batch {batch}", queries.len());
    let _ = writeln!(
        out,
        "  sequential {seq_qps:8.2} qps   p50 {:.2} ms   p95 {:.2} ms   p99 {:.2} ms",
        pct(50.0),
        pct(95.0),
        pct(99.0),
    );
    let _ = writeln!(
        out,
        "  batched    {batch_qps:8.2} qps   speedup {:.2}x   ({served} served, {shed} shed)",
        batch_qps / seq_qps.max(1e-12),
    );
    let _ = writeln!(
        out,
        "  scheduler: submitted {} completed {} steals {} shed {}",
        snap.counter("mendel.sched.submitted"),
        snap.counter("mendel.sched.completed"),
        snap.counter("mendel.sched.steals"),
        snap.counter("mendel.sched.shed"),
    );
    Ok(out)
}

/// One Prometheus text sample: metric name, labels, value.
type PromSample = (String, Vec<(String, String)>, f64);

/// Minimal Prometheus text parser for `mendel top` (the workspace has
/// no metrics client): `name{k="v",...} value` lines; comments and
/// anything unparsable are skipped.
fn parse_prom_samples(text: &str) -> Vec<PromSample> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let rest = rest.strip_suffix('}').unwrap_or(rest);
                let labels = rest
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .filter_map(|pair| {
                        let (k, v) = pair.split_once('=')?;
                        Some((k.to_string(), v.trim_matches('"').to_string()))
                    })
                    .collect();
                (name.to_string(), labels)
            }
        };
        out.push((name, labels, value));
    }
    out
}

fn prom_label<'a>(labels: &'a [(String, String)], key: &str) -> Option<&'a str> {
    labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Sum a metric across every node label.
fn sum_samples(samples: &[PromSample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|(n, _, _)| n == name)
        .map(|(_, _, v)| v)
        .sum()
}

/// Approximate quantile (ms) from `<name>_bucket` lines, cumulative
/// counts merged across nodes (every process shares the same log-spaced
/// boundaries). Returns the smallest bucket bound covering `q`; when
/// the mass sits in the +Inf bucket the largest finite bound is a lower
/// estimate.
fn quantile_ms(samples: &[PromSample], name: &str, q: f64) -> Option<f64> {
    let bucket = format!("{name}_bucket");
    let mut acc: Vec<(f64, f64)> = Vec::new();
    for (n, labels, v) in samples {
        if *n != bucket {
            continue;
        }
        let le = match prom_label(labels, "le") {
            Some("+Inf") => f64::INFINITY,
            Some(s) => match s.parse() {
                Ok(le) => le,
                Err(_) => continue,
            },
            None => continue,
        };
        match acc.iter_mut().find(|(l, _)| *l == le) {
            Some((_, c)) => *c += v,
            None => acc.push((le, *v)),
        }
    }
    acc.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = acc.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let target = q * total;
    let hit = acc.iter().find(|(_, c)| *c >= target)?.0;
    if hit.is_finite() {
        return Some(hit * 1e3);
    }
    acc.iter()
        .rev()
        .find(|(le, _)| le.is_finite())
        .map(|(le, _)| le * 1e3)
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{}B", b as u64)
    }
}

/// `mendel top` — live cluster overview from the federated metrics
/// exposition (`/metrics?scope=cluster`): cluster QPS, turnaround
/// percentiles, shed and degraded-coverage counts, and per-node query
/// and wire-byte totals. Renders one frame per poll, `--iterations`
/// times (default 3), sleeping `--interval-ms` (default 1000) between
/// polls; QPS is the counter delta between consecutive frames.
pub fn cmd_top(args: &Args) -> Result<String, CliError> {
    let addr = http_addr("addr", args.require("addr")?)?;
    let iterations: usize = args.get_parsed("iterations", 3, "positive integer")?;
    let interval_ms: u64 = args.get_parsed("interval-ms", 1000, "integer")?;
    let mut out = String::new();
    let mut prev: Option<(std::time::Instant, f64)> = None;
    for i in 0..iterations.max(1) {
        if i > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
        let text = http_get(addr, "/metrics?scope=cluster")?;
        let now = std::time::Instant::now();
        let samples = parse_prom_samples(&text);
        let total_q = sum_samples(&samples, "mendel_query_count");
        let qps = match prev {
            Some((t0, q0)) => {
                let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
                format!("{:.1}", (total_q - q0).max(0.0) / dt)
            }
            None => "-".to_string(),
        };
        prev = Some((now, total_q));
        let fmt_ms = |v: Option<f64>| v.map_or("-".to_string(), |ms| format!("{ms:.2}ms"));
        let mut nodes: Vec<u64> = samples
            .iter()
            .filter_map(|(_, l, _)| prom_label(l, "node")?.parse().ok())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let _ = writeln!(
            out,
            "mendel top @ {addr}  nodes {}  queries {}  qps {qps}  p50 {}  p99 {}  shed {}  degraded {}",
            nodes.len(),
            total_q as u64,
            fmt_ms(quantile_ms(&samples, "mendel_query_turnaround_seconds", 0.50)),
            fmt_ms(quantile_ms(&samples, "mendel_query_turnaround_seconds", 0.99)),
            sum_samples(&samples, "mendel_sched_shed") as u64,
            sum_samples(&samples, "mendel_query_degraded") as u64,
        );
        for n in &nodes {
            let ns = n.to_string();
            let of_node = |name: &str| -> f64 {
                samples
                    .iter()
                    .filter(|(nm, l, _)| nm == name && prom_label(l, "node") == Some(ns.as_str()))
                    .map(|(_, _, v)| v)
                    .sum()
            };
            let _ = writeln!(
                out,
                "  node {n}: queries {}  tx {}  rx {}  dead-letters {}",
                of_node("mendel_query_count") as u64,
                fmt_bytes(of_node("mendel_net_transport_bytes_sent")),
                fmt_bytes(of_node("mendel_net_transport_bytes_received")),
                of_node("mendel_net_transport_dead_letters") as u64,
            );
        }
    }
    Ok(out)
}

/// Dispatch a raw argv (without program name) to its command.
pub fn run(tokens: &[String]) -> Result<String, CliError> {
    // `mendel trace dump` / `mendel bench qps` are two-word subcommands;
    // fold them into one token so the grammar (command, then options)
    // still holds.
    let mut tokens = tokens.to_vec();
    if tokens.first().map(String::as_str) == Some("trace")
        && tokens.get(1).map(String::as_str) == Some("dump")
    {
        tokens.splice(0..2, ["trace-dump".to_string()]);
    }
    if tokens.first().map(String::as_str) == Some("trace")
        && tokens.get(1).map(String::as_str) == Some("slowlog")
    {
        tokens.splice(0..2, ["trace-slowlog".to_string()]);
    }
    if tokens.first().map(String::as_str) == Some("bench")
        && tokens.get(1).map(String::as_str) == Some("qps")
    {
        tokens.splice(0..2, ["bench-qps".to_string()]);
    }
    let args = Args::parse(&tokens)?;
    match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "index" => cmd_index(&args),
        "query" => cmd_query(&args),
        "blast" => cmd_blast(&args),
        "info" => cmd_info(&args),
        "metrics" => cmd_metrics(&args),
        "durability" => cmd_durability(&args),
        "trace-dump" => cmd_trace_dump(&args),
        "trace-slowlog" => cmd_trace_slowlog(&args),
        "bench-qps" => cmd_bench_qps(&args),
        "top" => cmd_top(&args),
        "serve" => crate::serve::cmd_serve(&args),
        "trace" => Err(CliError::UnknownCommand(
            "trace (did you mean `mendel trace dump` or `mendel trace slowlog`?)".into(),
        )),
        "bench" => Err(CliError::UnknownCommand(
            "bench (did you mean `mendel bench qps`?)".into(),
        )),
        "help" | "--help" | "-h" => Ok(crate::USAGE.to_string()),
        other => Err(CliError::UnknownCommand(other.into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mendel-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&toks("help")).unwrap();
        assert!(out.contains("mendel generate"));
        assert!(out.contains("mendel query"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(
            run(&toks("frobnicate")),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn generate_index_query_roundtrip() {
        let fasta = tmp("db.fasta");
        let snap = tmp("db.mendel");
        let qf = tmp("q.fasta");

        let out = run(&toks(&format!(
            "generate --out {fasta} --families 10 --members 2 --min-len 120 --max-len 200 --seed 5"
        )))
        .unwrap();
        assert!(out.contains("20 sequences"), "{out}");

        let out = run(&toks(&format!(
            "index --db {fasta} --out {snap} --nodes 6 --groups 2"
        )))
        .unwrap();
        assert!(out.contains("indexed"), "{out}");

        // Query with the first database sequence itself.
        let text = std::fs::read_to_string(&fasta).unwrap();
        let first_record: String = {
            let mut lines = text.lines();
            let header = lines.next().unwrap().to_string();
            let body: Vec<&str> = lines.take_while(|l| !l.starts_with('>')).collect();
            format!("{header}\n{}\n", body.join("\n"))
        };
        std::fs::write(&qf, first_record).unwrap();
        let out = run(&toks(&format!(
            "query --index {snap} --db {fasta} --query {qf} --top 3"
        )))
        .unwrap();
        assert!(out.contains("fam0_m0"), "self-hit expected:\n{out}");

        let out = run(&toks(&format!("info --index {snap} --db {fasta}"))).unwrap();
        assert!(out.contains("6 nodes"), "{out}");

        // The metrics dump reflects the queries it just ran.
        let out = run(&toks(&format!(
            "metrics --index {snap} --db {fasta} --query {qf}"
        )))
        .unwrap();
        assert!(out.contains("# TYPE mendel_query_count counter"), "{out}");
        assert!(out.contains("mendel_query_count 1"), "{out}");
        assert!(out.contains("mendel_vptree_dist_calls"), "{out}");
        assert!(
            out.contains("mendel_query_turnaround_seconds_count 1"),
            "{out}"
        );

        let out = run(&toks(&format!(
            "metrics --index {snap} --db {fasta} --query {qf} --format json"
        )))
        .unwrap();
        assert!(out.contains("\"mendel.query.count\": 1"), "{out}");

        let err = run(&toks(&format!(
            "metrics --index {snap} --db {fasta} --format xml"
        )))
        .unwrap_err();
        assert!(err.to_string().contains("prometheus|json"), "{err}");
    }

    #[test]
    fn prom_parser_reads_federated_samples() {
        let text = "# TYPE mendel_query_count counter\n\
                    mendel_query_count{node=\"0\"} 3\n\
                    mendel_query_count{node=\"1\"} 5\n\
                    mendel_query_turnaround_seconds_bucket{node=\"0\",le=\"0.001\"} 2\n\
                    mendel_query_turnaround_seconds_bucket{node=\"0\",le=\"+Inf\"} 3\n\
                    mendel_query_turnaround_seconds_bucket{node=\"1\",le=\"0.001\"} 4\n\
                    mendel_query_turnaround_seconds_bucket{node=\"1\",le=\"+Inf\"} 5\n\
                    not a sample\n";
        let samples = parse_prom_samples(text);
        assert_eq!(sum_samples(&samples, "mendel_query_count"), 8.0);
        let s = samples
            .iter()
            .find(|(n, l, _)| n == "mendel_query_count" && prom_label(l, "node") == Some("1"))
            .unwrap();
        assert_eq!(s.2, 5.0);
        // 6/8 of the mass is ≤ 1ms → p50 resolves to the 1ms bound.
        assert_eq!(
            quantile_ms(&samples, "mendel_query_turnaround_seconds", 0.50),
            Some(1.0)
        );
        // p99 spills into +Inf → largest finite bound as lower estimate.
        assert_eq!(
            quantile_ms(&samples, "mendel_query_turnaround_seconds", 0.99),
            Some(1.0)
        );
        assert_eq!(quantile_ms(&samples, "missing_metric", 0.5), None);
    }

    #[test]
    fn fmt_bytes_scales_units() {
        assert_eq!(fmt_bytes(512.0), "512B");
        assert_eq!(fmt_bytes(2_048.0), "2.0KB");
        assert_eq!(fmt_bytes(3_500_000.0), "3.50MB");
        assert_eq!(fmt_bytes(7_250_000_000.0), "7.25GB");
    }

    #[test]
    fn top_and_slowlog_require_addr() {
        let err = run(&toks("top")).unwrap_err();
        assert!(err.to_string().contains("addr"), "{err}");
        let err = run(&toks("trace slowlog")).unwrap_err();
        assert!(err.to_string().contains("addr"), "{err}");
    }

    #[test]
    fn trace_dump_emits_chrome_and_tree_formats() {
        let fasta = tmp("tdb.fasta");
        let snap = tmp("tdb.mendel");
        let qf = tmp("tq.fasta");
        run(&toks(&format!(
            "generate --out {fasta} --families 8 --members 2 --min-len 120 --max-len 180 --seed 11"
        )))
        .unwrap();
        run(&toks(&format!(
            "index --db {fasta} --out {snap} --nodes 6 --groups 2"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&fasta).unwrap();
        let first_record: String = {
            let mut lines = text.lines();
            let header = lines.next().unwrap().to_string();
            let body: Vec<&str> = lines.take_while(|l| !l.starts_with('>')).collect();
            format!("{header}\n{}\n", body.join("\n"))
        };
        std::fs::write(&qf, first_record).unwrap();

        // Default format is chrome trace-event JSON.
        let out = run(&toks(&format!(
            "trace dump --index {snap} --db {fasta} --query {qf}"
        )))
        .unwrap();
        assert!(
            out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            "{out}"
        );
        assert!(out.contains("\"name\":\"query\""), "{out}");

        // Tree format renders the spans and the critical path.
        let out = run(&toks(&format!(
            "trace dump --index {snap} --db {fasta} --query {qf} --format tree"
        )))
        .unwrap();
        assert!(out.contains("critical path:"), "{out}");
        assert!(out.contains("decompose"), "{out}");

        // --out writes the artifact and summarizes.
        let artifact = tmp("trace.json");
        let out = run(&toks(&format!(
            "trace dump --index {snap} --db {fasta} --query {qf} --out {artifact}"
        )))
        .unwrap();
        assert!(out.contains("traced 1 queries"), "{out}");
        let written = std::fs::read_to_string(&artifact).unwrap();
        assert!(written.contains("\"ph\":\"X\""), "{written}");

        let err = run(&toks(&format!(
            "trace dump --index {snap} --db {fasta} --query {qf} --format xml"
        )))
        .unwrap_err();
        assert!(err.to_string().contains("chrome|tree"), "{err}");

        // Bare `trace` points at the real spelling.
        let err = run(&toks("trace")).unwrap_err();
        assert!(err.to_string().contains("trace dump"), "{err}");
    }

    #[test]
    fn bench_qps_reports_throughput_and_scheduler_counters() {
        let fasta = tmp("qdb.fasta");
        let snap = tmp("qdb.mendel");
        let qf = tmp("qq.fasta");
        run(&toks(&format!(
            "generate --out {fasta} --families 8 --members 2 --min-len 120 --max-len 180 --seed 13"
        )))
        .unwrap();
        run(&toks(&format!(
            "index --db {fasta} --out {snap} --nodes 6 --groups 2"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&fasta).unwrap();
        let first_record: String = {
            let mut lines = text.lines();
            let header = lines.next().unwrap().to_string();
            let body: Vec<&str> = lines.take_while(|l| !l.starts_with('>')).collect();
            format!("{header}\n{}\n", body.join("\n"))
        };
        std::fs::write(&qf, first_record).unwrap();

        let out = run(&toks(&format!(
            "bench qps --index {snap} --db {fasta} --query {qf} --batch 4"
        )))
        .unwrap();
        assert!(out.contains("qps bench: 1 queries, batch 4"), "{out}");
        assert!(out.contains("sequential"), "{out}");
        assert!(out.contains("batched"), "{out}");
        assert!(out.contains("scheduler: submitted"), "{out}");

        let err = run(&toks(&format!(
            "bench qps --index {snap} --db {fasta} --query {qf} --batch 0"
        )))
        .unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");

        // Bare `bench` points at the real spelling.
        let err = run(&toks("bench")).unwrap_err();
        assert!(err.to_string().contains("bench qps"), "{err}");
    }

    #[test]
    fn blast_command_runs() {
        let fasta = tmp("bdb.fasta");
        let qf = tmp("bq.fasta");
        run(&toks(&format!(
            "generate --out {fasta} --families 6 --members 2 --min-len 100 --max-len 150 --seed 9"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&fasta).unwrap();
        let first: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        std::fs::write(&qf, first).unwrap();
        let out = run(&toks(&format!("blast --db {fasta} --query {qf}"))).unwrap();
        assert!(out.contains("hits"), "{out}");
    }

    #[test]
    fn durability_command_reports_clean_chaos_run() {
        let out = run(&toks(
            "durability --families 8 --members 2 --nodes 4 --groups 2 --fsync group --seed 11",
        ))
        .unwrap();
        assert!(out.contains("killed and recovered 4 nodes"), "{out}");
        assert!(out.contains("bit-identical"), "{out}");
        assert!(out.contains("mendel.store.wal_appends"), "{out}");
        let err = run(&toks("durability --fsync sometimes")).unwrap_err();
        assert!(err.to_string().contains("always|group|flush"), "{err}");
    }

    #[test]
    fn missing_files_report_path() {
        let err = run(&toks("index --db /nonexistent.fasta --out /tmp/x")).unwrap_err();
        assert!(err.to_string().contains("/nonexistent.fasta"));
    }

    #[test]
    fn missing_required_option_reports_key() {
        let err = run(&toks("generate")).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }
}
