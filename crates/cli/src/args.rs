//! A small, dependency-free command-line argument parser.
//!
//! Grammar: `mendel <command> [--key value]... [--flag]...`. Values never
//! start with `--`; everything else is an error with a helpful message.

use std::collections::HashMap;

/// Parsed invocation: the subcommand plus its options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (`index`, `query`, ...).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Argument-parsing errors, with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// `--key` appeared at the end with no value.
    MissingValue(String),
    /// A bare token appeared where `--key` was expected.
    UnexpectedToken(String),
    /// A required option is absent.
    MissingOption(String),
    /// A value failed to parse as the expected type.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value supplied.
        value: String,
        /// What it should have been.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given; try `mendel help`"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::UnexpectedToken(t) => write!(f, "unexpected argument {t:?}"),
            ArgError::MissingOption(k) => write!(f, "required option --{k} is missing"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value:?} is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Option keys that are boolean flags (no value).
const FLAGS: &[&str] = &["dna", "protein", "exact", "verbose"];

impl Args {
    /// Parse a raw token stream (without the program name).
    pub fn parse(tokens: &[String]) -> Result<Args, ArgError> {
        let mut it = tokens.iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut args = Args {
            command,
            ..Default::default()
        };
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError::UnexpectedToken(tok.clone()))?;
            if FLAGS.contains(&key) {
                args.flags.push(key.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.into()))?;
                if value.starts_with("--") {
                    return Err(ArgError::MissingValue(key.into()));
                }
                args.options.insert(key.to_string(), value.clone());
            }
        }
        Ok(args)
    }

    /// A string option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError::MissingOption(key.into()))
    }

    /// A parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.into(),
                value: raw.into(),
                expected,
            }),
        }
    }

    /// True when a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = Args::parse(&toks("index --db x.fasta --nodes 10 --dna")).unwrap();
        assert_eq!(a.command, "index");
        assert_eq!(a.get("db"), Some("x.fasta"));
        assert_eq!(a.get_parsed("nodes", 0usize, "integer").unwrap(), 10);
        assert!(a.flag("dna"));
        assert!(!a.flag("protein"));
    }

    #[test]
    fn empty_invocation_is_missing_command() {
        assert_eq!(Args::parse(&[]), Err(ArgError::MissingCommand));
    }

    #[test]
    fn dangling_option_is_missing_value() {
        assert_eq!(
            Args::parse(&toks("query --db")),
            Err(ArgError::MissingValue("db".into()))
        );
        assert_eq!(
            Args::parse(&toks("query --db --dna")),
            Err(ArgError::MissingValue("db".into()))
        );
    }

    #[test]
    fn bare_token_is_unexpected() {
        assert_eq!(
            Args::parse(&toks("query stray")),
            Err(ArgError::UnexpectedToken("stray".into()))
        );
    }

    #[test]
    fn require_and_bad_value() {
        let a = Args::parse(&toks("q --n abc")).unwrap();
        assert!(matches!(a.require("db"), Err(ArgError::MissingOption(_))));
        assert!(matches!(
            a.get_parsed::<usize>("n", 1, "integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(&toks("q")).unwrap();
        assert_eq!(a.get_parsed("nodes", 50usize, "integer").unwrap(), 50);
    }

    #[test]
    fn errors_render_usefully() {
        assert!(ArgError::MissingOption("db".into())
            .to_string()
            .contains("--db"));
        assert!(ArgError::BadValue {
            key: "n".into(),
            value: "x".into(),
            expected: "integer"
        }
        .to_string()
        .contains("integer"));
    }
}
