//! A minimal HTTP/1.1 front-end for `mendel serve`.
//!
//! Small on purpose: the serve node needs exactly four routes (`POST
//! /ingest`, `POST /query`, `GET /metrics`, `GET /healthz`) plus an
//! orderly shutdown, and the workspace vendors no HTTP stack — so this
//! is a from-scratch, thread-per-connection server over
//! `std::net::TcpListener`. Every connection carries one request
//! (`Connection: close`), which keeps parsing trivial and is plenty for
//! a control/query plane measured in requests per second, not
//! thousands.
//!
//! Hostile-input posture mirrors the frame codec: requests are parsed
//! into a typed [`Request`] or rejected with a 4xx, bodies above
//! [`MAX_BODY`] are refused before allocation, and a malformed preamble
//! never panics the acceptor.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard ceiling on a request body (FASTA ingests are the largest
/// legitimate payload). Larger Content-Lengths are rejected with 413
/// before any buffer is allocated.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Per-connection socket timeouts so a stalled client cannot pin a
/// handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// The body (empty when no Content-Length was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of query parameter `key` (`k=v` pairs split on `&`;
    /// no percent-decoding — the operational surface uses plain
    /// alphanumeric values). A bare `key` with no `=` reads as `""`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// One response; the server adds Content-Length and Connection headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Request handler: pure function from request to response. Handler
/// panics are caught per connection and answered as 500 so one bad
/// query cannot take the server down.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// The server: an acceptor thread plus one short-lived thread per
/// connection. [`HttpServer::shutdown`] (also run on drop) stops the
/// acceptor and joins it; in-flight handler threads finish their one
/// request and exit.
pub struct HttpServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (port 0 allowed) and start serving `handler`.
    pub fn bind(addr: SocketAddr, handler: Handler) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("mendel-http-accept".into())
                .spawn(move || accept_loop(&listener, &handler, &stop))?
        };
        Ok(HttpServer {
            local,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The socket actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stop accepting and join the acceptor. Idempotent.
    pub fn shutdown(&mut self) {
        // audit:ordering(Relaxed): best-effort stop flag; the wake-up connection below does the real unblocking
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, handler: &Handler, stop: &Arc<AtomicBool>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                // audit:ordering(Relaxed): best-effort stop flag re-check
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        // audit:ordering(Relaxed): best-effort stop flag re-check
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let handler = handler.clone();
        let _ = std::thread::Builder::new()
            .name("mendel-http-conn".into())
            .spawn(move || serve_connection(stream, &handler));
    }
}

fn serve_connection(stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(&stream) {
        Ok(req) => {
            // A panicking handler answers 500 instead of killing the
            // connection silently (the thread is already isolated).
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&req))) {
                Ok(resp) => resp,
                Err(_) => Response::json(500, "{\"error\":\"internal handler failure\"}"),
            }
        }
        Err(status) => Response::json(status, format!("{{\"error\":{:?}}}", status_reason(status))),
    };
    let _ = write_response(&stream, &response);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Parse one request off the stream; `Err` is the status to answer.
fn read_request(stream: &TcpStream) -> Result<Request, u16> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|_| 400u16)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_ascii_uppercase();
    let target = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/1.") {
        return Err(400);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    // Headers: only Content-Length matters to us.
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|_| 400u16)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| 400u16)?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(413);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| 400u16)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn write_response(mut stream: &TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)
}

/// Blocking one-shot HTTP client, for tests and the multi-process
/// harness: one request per connection, mirroring the server.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: Handler =
            Arc::new(
                |req: &Request| match (req.method.as_str(), req.path.as_str()) {
                    ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}"),
                    ("POST", "/echo") => Response::text(200, req.body.clone()),
                    ("GET", "/boom") => panic!("handler blew up"),
                    _ => Response::json(404, "{\"error\":\"no such route\"}"),
                },
            );
        HttpServer::bind("127.0.0.1:0".parse().expect("loopback"), handler).expect("bind")
    }

    #[test]
    fn routes_get_and_post() {
        let server = echo_server();
        let (status, body) =
            http_request(server.local_addr(), "GET", "/healthz", b"").expect("get");
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"status\":\"ok\"}");
        let (status, body) =
            http_request(server.local_addr(), "POST", "/echo", b"MKTAYIAK").expect("post");
        assert_eq!(status, 200);
        assert_eq!(body, b"MKTAYIAK");
        let (status, _) = http_request(server.local_addr(), "GET", "/nope", b"").expect("404");
        assert_eq!(status, 404);
    }

    #[test]
    fn query_strings_are_stripped() {
        let server = echo_server();
        let (status, _) =
            http_request(server.local_addr(), "GET", "/healthz?verbose=1", b"").expect("get");
        assert_eq!(status, 200);
    }

    #[test]
    fn query_params_parse() {
        let req = Request {
            method: "GET".into(),
            path: "/trace/7".into(),
            query: "format=chrome&scope=cluster&bare".into(),
            body: Vec::new(),
        };
        assert_eq!(req.query_param("format"), Some("chrome"));
        assert_eq!(req.query_param("scope"), Some("cluster"));
        assert_eq!(req.query_param("bare"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        let empty = Request {
            query: String::new(),
            ..req
        };
        assert_eq!(empty.query_param("format"), None);
    }

    #[test]
    fn handler_panic_is_a_500_and_server_survives() {
        let server = echo_server();
        let (status, _) = http_request(server.local_addr(), "GET", "/boom", b"").expect("500");
        assert_eq!(status, 500);
        let (status, _) = http_request(server.local_addr(), "GET", "/healthz", b"").expect("alive");
        assert_eq!(status, 200);
    }

    #[test]
    fn garbage_preamble_is_rejected_not_fatal() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"\x00\x01\x02 not http at all\r\n\r\n")
            .expect("write");
        let mut out = String::new();
        let mut reader = BufReader::new(&stream);
        let _ = reader.read_line(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        // And the server still answers real requests.
        let (status, _) = http_request(server.local_addr(), "GET", "/healthz", b"").expect("alive");
        assert_eq!(status, 200);
    }

    #[test]
    fn oversized_content_length_is_413_before_allocation() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let head = format!(
            "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        stream.write_all(head.as_bytes()).expect("write");
        let mut out = String::new();
        let mut reader = BufReader::new(&stream);
        let _ = reader.read_line(&mut out);
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut server = echo_server();
        server.shutdown();
        server.shutdown();
        assert!(http_request(server.local_addr(), "GET", "/healthz", b"").is_err());
    }
}
