//! Deterministic two-thread interleaving stress tests for the
//! lock-free [`Histogram`] and the mutex-plus-atomic
//! [`FlightRecorder`].
//!
//! Two phases per structure:
//!
//! 1. **Lockstep**: the threads alternate strictly (an atomic turn
//!    variable with a spin/yield wait), so the exact interleaving —
//!    and therefore the exact final state, including eviction order —
//!    is known and asserted.
//! 2. **Free-running**: no coordination, assert the aggregate
//!    invariants that must hold under any schedule.
//!
//! These are the tests `ci.sh` runs under ThreadSanitizer and Miri
//! when the toolchain has them: the strict alternation drives both
//! orders of every pair of racing operations through the instrumented
//! atomics, which is exactly what the sanitizers want to see.

use mendel_obs::trace::{SpanId, SpanRecord, TraceId};
use mendel_obs::{FlightRecorder, Histogram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Run `op(step)` for `steps` steps on two threads in strict
/// alternation: thread 0 performs even steps, thread 1 odd steps, and
/// step `n + 1` never starts before step `n` finished.
fn lockstep(steps: usize, op: impl Fn(usize) + Send + Sync) {
    let turn = AtomicUsize::new(0);
    let op = &op;
    let turn = &turn;
    std::thread::scope(|scope| {
        for who in 0..2usize {
            scope.spawn(move || loop {
                let now = turn.load(Ordering::Acquire);
                if now >= steps {
                    break;
                }
                if now % 2 != who {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                    continue;
                }
                op(now);
                turn.store(now + 1, Ordering::Release);
            });
        }
    });
}

fn record(n: u64) -> SpanRecord {
    SpanRecord {
        trace: TraceId(7),
        span: SpanId(n),
        parent: None,
        node: (n % 2) as u32,
        name: format!("step{n}"),
        start: Duration::from_micros(n),
        end: Duration::from_micros(n + 1),
        tags: Vec::new(),
    }
}

#[test]
fn histogram_lockstep_interleaving_is_exact() {
    // Boundaries at 10 and 20: three buckets.
    let h = Histogram::with_bounds(vec![10.0, 20.0]).expect("valid bounds");
    const STEPS: usize = 64;
    // Even steps (thread 0) record 5.0, odd steps (thread 1) record
    // 15.0 — every pair of adjacent steps races a fetch_add on a
    // different cell and a CAS on the shared sum.
    lockstep(STEPS, |step| {
        h.record(if step % 2 == 0 { 5.0 } else { 15.0 });
    });
    assert_eq!(h.count(), STEPS as u64);
    let snap = h.snapshot();
    assert_eq!(snap.counts, vec![32, 32, 0]);
    let expected_sum = 32.0 * 5.0 + 32.0 * 15.0;
    assert!((h.sum() - expected_sum).abs() < 1e-9, "sum {}", h.sum());
}

#[test]
fn histogram_free_running_totals_hold() {
    let h = Arc::new(Histogram::with_bounds(vec![1.0, 2.0, 4.0]).expect("valid bounds"));
    const PER_THREAD: usize = 10_000;
    let handles: Vec<_> = (0..2)
        .map(|who| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record((who * PER_THREAD + i) as f64 / PER_THREAD as f64);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    assert_eq!(h.count(), 2 * PER_THREAD as u64);
    // Sum of (k / N) for k in 0..2N is (2N - 1).
    let expected = (2 * PER_THREAD - 1) as f64;
    assert!((h.sum() - expected).abs() < 1e-6, "sum {}", h.sum());
}

#[test]
fn flight_recorder_lockstep_eviction_order_is_exact() {
    let r = FlightRecorder::new(4);
    const STEPS: usize = 20;
    lockstep(STEPS, |step| {
        r.push(record(step as u64));
    });
    // Strict alternation makes the push order 0, 1, …, 19 regardless
    // of which thread performed each push.
    assert_eq!(r.len(), 4);
    assert_eq!(r.dropped(), (STEPS - 4) as u64);
    let retained: Vec<u64> = r.records().into_iter().map(|s| s.span.0).collect();
    assert_eq!(retained, vec![16, 17, 18, 19]);
}

#[test]
fn flight_recorder_free_running_invariants_hold() {
    let r = Arc::new(FlightRecorder::new(8));
    const PER_THREAD: u64 = 5_000;
    let handles: Vec<_> = (0..2u64)
        .map(|who| {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    r.push(record(who * PER_THREAD + i));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("pusher thread");
    }
    // Every push either remains in the ring or was counted as dropped.
    assert_eq!(r.len(), 8);
    assert_eq!(r.dropped() + r.len() as u64, 2 * PER_THREAD);
    // Per-thread FIFO survives interleaving: each thread's retained
    // spans appear in its own push order.
    let retained: Vec<u64> = r.records().into_iter().map(|s| s.span.0).collect();
    for who in 0..2u64 {
        let own: Vec<u64> = retained
            .iter()
            .copied()
            .filter(|s| s / PER_THREAD == who)
            .collect();
        let mut sorted = own.clone();
        sorted.sort_unstable();
        assert_eq!(own, sorted, "thread {who} order violated: {retained:?}");
    }
}
