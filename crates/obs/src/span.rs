//! Stage-timing spans over the injectable clock.
//!
//! A [`Span`] captures the clock at construction and reports elapsed
//! time on demand; [`Span::finish`] optionally records the elapsed
//! seconds into a histogram sink (that is how
//! `Registry::span("mendel.query.stage.hash")` feeds
//! `mendel.query.stage.hash.seconds`). Recording is explicit — dropping
//! an unfinished span records nothing, so abandoned stages do not
//! pollute timing distributions.

use crate::clock::Clock;
use crate::histogram::Histogram;
use std::sync::Arc;
use std::time::Duration;

/// One timed region.
#[must_use = "a dropped span records nothing; call finish()"]
#[derive(Debug)]
pub struct Span {
    clock: Arc<dyn Clock>,
    start: Duration,
    sink: Option<Arc<Histogram>>,
}

impl Span {
    /// Start a span on `clock` with no recording sink.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_sink(clock, None)
    }

    /// Start a span that records elapsed seconds into `sink` on finish.
    pub fn with_sink(clock: Arc<dyn Clock>, sink: Option<Arc<Histogram>>) -> Self {
        let start = clock.now();
        Span { clock, start, sink }
    }

    /// Time since the span started. Monotone: repeated calls never
    /// decrease (the clock contract plus saturating subtraction).
    pub fn elapsed(&self) -> Duration {
        self.clock.now().saturating_sub(self.start)
    }

    /// Stop the span, record into the sink (if any), and return the
    /// elapsed time.
    pub fn finish(self) -> Duration {
        let elapsed = self.elapsed();
        if let Some(sink) = &self.sink {
            sink.record(elapsed.as_secs_f64());
        }
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use proptest::prelude::*;

    #[test]
    fn elapsed_tracks_virtual_time() {
        let clock = Arc::new(VirtualClock::new());
        let span = Span::new(clock.clone());
        assert_eq!(span.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_micros(250));
        assert_eq!(span.elapsed(), Duration::from_micros(250));
        assert_eq!(span.finish(), Duration::from_micros(250));
    }

    #[test]
    fn finish_without_sink_records_nothing() {
        let clock = Arc::new(VirtualClock::new());
        let span = Span::new(clock.clone());
        clock.advance(Duration::from_secs(1));
        assert_eq!(span.finish(), Duration::from_secs(1));
    }

    #[test]
    fn drop_without_finish_records_nothing() {
        let clock = Arc::new(VirtualClock::new());
        let sink = Arc::new(Histogram::span_seconds());
        {
            let _span = Span::with_sink(clock.clone(), Some(sink.clone()));
            clock.advance(Duration::from_millis(10));
        }
        assert_eq!(sink.count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite property: under a virtual clock, `elapsed` is
        /// monotone over any sequence of advances, and `finish` equals
        /// the sum of advances seen since the span started.
        #[test]
        fn span_elapsed_is_monotone(advances in proptest::collection::vec(0u64..5_000_000, 1..40)) {
            let clock = Arc::new(VirtualClock::new());
            let span = Span::new(clock.clone());
            let mut last = span.elapsed();
            let mut total = Duration::ZERO;
            for nanos in advances {
                clock.advance(Duration::from_nanos(nanos));
                total += Duration::from_nanos(nanos);
                let now = span.elapsed();
                prop_assert!(now >= last, "elapsed went backwards: {now:?} < {last:?}");
                prop_assert_eq!(now, total);
                last = now;
            }
            prop_assert_eq!(span.finish(), total);
        }
    }
}
