//! Structured slow-query log: a bounded ring of the queries worth a
//! second look.
//!
//! Two admission rules, both deterministic (DESIGN.md §17):
//!
//! * **threshold** — any query at or above [`SlowLogConfig::threshold`]
//!   is logged (the operator's "why was that slow" trail);
//! * **1-in-N sampling** — every `sample_every`-th observation is
//!   logged regardless of duration, giving a baseline to compare the
//!   slow tail against. The decision is a counter modulus, not a coin
//!   flip, so a replayed workload logs the same entries.
//!
//! Lock discipline: entries are fully built *before* the ring mutex is
//! taken, and rendering clones the entries out under the lock and
//! formats after releasing it — the ring lock is never held across
//! socket I/O (the `/debug/slowlog` handler writes the rendered string
//! only after this module has let go of everything).

use crate::trace::TraceId;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Admission policy and retention for a [`SlowQueryLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowLogConfig {
    /// Queries at or above this duration are always logged. `ZERO`
    /// logs every query (useful in tests; ruinous in production).
    pub threshold: Duration,
    /// Log every Nth observation regardless of duration; `0` disables
    /// baseline sampling.
    pub sample_every: u64,
    /// Ring capacity; the oldest entry is evicted (and counted) when
    /// full.
    pub capacity: usize,
}

impl Default for SlowLogConfig {
    fn default() -> Self {
        SlowLogConfig {
            threshold: Duration::from_millis(500),
            sample_every: 0,
            capacity: 256,
        }
    }
}

/// Why an entry was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowLogReason {
    /// Duration cleared the threshold.
    Slow,
    /// Deterministic 1-in-N baseline sample.
    Sampled,
}

impl SlowLogReason {
    fn as_str(self) -> &'static str {
        match self {
            SlowLogReason::Slow => "slow",
            SlowLogReason::Sampled => "sampled",
        }
    }
}

/// One observed query, as the query paths report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryObservation {
    /// Clock offset when the query finished.
    pub at: Duration,
    /// End-to-end duration.
    pub duration: Duration,
    /// Trace id, when the query was traced (correlates the entry with
    /// `/trace/{id}`).
    pub trace: Option<TraceId>,
    /// Query length in residues.
    pub query_len: usize,
    /// Ranked hits returned.
    pub hits: usize,
    /// Groups contacted.
    pub groups: usize,
    /// Whether coverage was degraded (nodes unreachable).
    pub degraded: bool,
}

/// One retained log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowLogEntry {
    /// 0-based observation index (the sampling counter's value).
    pub seq: u64,
    /// Why this entry was admitted.
    pub reason: SlowLogReason,
    /// The observation itself.
    pub query: QueryObservation,
}

/// The bounded, deterministic slow-query ring.
#[derive(Debug)]
pub struct SlowQueryLog {
    cfg: RwLock<SlowLogConfig>,
    seen: AtomicU64,
    evicted: AtomicU64,
    ring: Mutex<VecDeque<SlowLogEntry>>,
}

impl SlowQueryLog {
    /// A log under the given policy.
    pub fn new(cfg: SlowLogConfig) -> Self {
        SlowQueryLog {
            cfg: RwLock::new(cfg),
            seen: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The current policy.
    pub fn config(&self) -> SlowLogConfig {
        *self.cfg.read()
    }

    /// Replace the policy (entries already retained are kept; the
    /// observation counter keeps running, so sampling stays aligned).
    pub fn set_config(&self, cfg: SlowLogConfig) {
        *self.cfg.write() = cfg;
    }

    /// Observe one finished query; returns `true` when it was logged.
    pub fn observe(&self, query: QueryObservation) -> bool {
        let cfg = self.config();
        // audit:ordering(Relaxed): deterministic per-log sequence; fetch_add atomicity alone yields distinct, gapless indices
        let seq = self.seen.fetch_add(1, Ordering::Relaxed);
        let slow = query.duration >= cfg.threshold;
        let sampled = cfg.sample_every > 0 && seq % cfg.sample_every == 0;
        if !slow && !sampled {
            return false;
        }
        let entry = SlowLogEntry {
            seq,
            reason: if slow {
                SlowLogReason::Slow
            } else {
                SlowLogReason::Sampled
            },
            query,
        };
        // The entry is fully built: the lock now guards only the push.
        let mut ring = self.ring.lock();
        while ring.len() >= cfg.capacity.max(1) {
            ring.pop_front();
            // audit:ordering(Relaxed): statistics counter bumped under the ring mutex; the racy read side needs only atomicity
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
        true
    }

    /// Total queries observed (logged or not).
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed) // audit:ordering(Relaxed): statistics read; may trail concurrent observations by design
    }

    /// Entries evicted by the ring bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed) // audit:ordering(Relaxed): statistics read; may trail concurrent evictions by design
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowLogEntry> {
        self.ring.lock().iter().copied().collect()
    }

    /// Deterministic JSON dump (hand-rendered; the workspace has no
    /// JSON serializer). All numbers derive from integers. The ring
    /// lock is released before any formatting happens.
    pub fn render_json(&self) -> String {
        let entries = self.entries();
        let cfg = self.config();
        let mut out = format!(
            "{{\"seen\":{},\"evicted\":{},\"threshold_us\":{},\"sample_every\":{},\"entries\":[",
            self.seen(),
            self.evicted(),
            cfg.threshold.as_micros(),
            cfg.sample_every,
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let q = &e.query;
            let _ = write!(
                out,
                "{{\"seq\":{},\"reason\":\"{}\",\"at_us\":{},\"duration_us\":{},\"trace\":{},\
                 \"query_len\":{},\"hits\":{},\"groups\":{},\"degraded\":{}}}",
                e.seq,
                e.reason.as_str(),
                q.at.as_micros(),
                q.duration.as_micros(),
                q.trace
                    .map_or_else(|| "null".to_string(), |t| t.0.to_string()),
                q.query_len,
                q.hits,
                q.groups,
                q.degraded,
            );
        }
        out.push_str("]}");
        out
    }
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        Self::new(SlowLogConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(ms: u64) -> QueryObservation {
        QueryObservation {
            duration: Duration::from_millis(ms),
            ..Default::default()
        }
    }

    #[test]
    fn threshold_admits_only_slow_queries() {
        let log = SlowQueryLog::new(SlowLogConfig {
            threshold: Duration::from_millis(100),
            sample_every: 0,
            capacity: 8,
        });
        assert!(!log.observe(obs(5)));
        assert!(log.observe(obs(100)), "boundary is inclusive");
        assert!(log.observe(obs(500)));
        assert_eq!(log.seen(), 3);
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.reason == SlowLogReason::Slow));
    }

    #[test]
    fn one_in_n_sampling_is_deterministic() {
        let log = SlowQueryLog::new(SlowLogConfig {
            threshold: Duration::from_secs(3600),
            sample_every: 3,
            capacity: 64,
        });
        for _ in 0..10 {
            log.observe(obs(1));
        }
        let seqs: Vec<u64> = log.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 3, 6, 9], "every 3rd observation, from 0");
        assert!(log
            .entries()
            .iter()
            .all(|e| e.reason == SlowLogReason::Sampled));
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let log = SlowQueryLog::new(SlowLogConfig {
            threshold: Duration::ZERO,
            sample_every: 0,
            capacity: 2,
        });
        for ms in [1, 2, 3] {
            log.observe(obs(ms));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 1, "oldest entry was evicted");
        assert_eq!(log.evicted(), 1);
    }

    #[test]
    fn reconfigure_keeps_the_sequence_running() {
        let log = SlowQueryLog::default();
        assert_eq!(log.config().threshold, Duration::from_millis(500));
        log.observe(obs(1));
        log.set_config(SlowLogConfig {
            threshold: Duration::ZERO,
            sample_every: 0,
            capacity: 4,
        });
        assert!(log.observe(obs(1)));
        assert_eq!(log.entries()[0].seq, 1, "counter did not reset");
    }

    #[test]
    fn json_dump_is_deterministic_and_balanced() {
        let log = SlowQueryLog::new(SlowLogConfig {
            threshold: Duration::ZERO,
            sample_every: 2,
            capacity: 8,
        });
        log.observe(QueryObservation {
            at: Duration::from_micros(10),
            duration: Duration::from_micros(1500),
            trace: Some(TraceId(42)),
            query_len: 120,
            hits: 3,
            groups: 2,
            degraded: true,
        });
        log.observe(obs(0));
        let a = log.render_json();
        assert_eq!(a, log.render_json());
        assert!(a.contains("\"trace\":42"));
        assert!(a.contains("\"trace\":null"));
        assert!(a.contains("\"reason\":\"slow\""));
        assert!(a.contains("\"duration_us\":1500"));
        assert!(a.contains("\"degraded\":true"));
        let depth = a.chars().fold(0i32, |d, ch| match ch {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }
}
