//! The metric registry: namespaced get-or-create handles and snapshots.
//!
//! A [`Registry`] is cheap to clone (an `Arc` around the table) and
//! hands out `Arc` handles, so instrumented structures hold their
//! counters directly and never touch the table on the hot path; the
//! lock guards only registration and snapshotting.

use crate::clock::{Clock, MonotonicClock};
use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};
use crate::recorder::FlightRecorder;
use crate::snapshot::MetricsSnapshot;
use crate::span::Span;
use crate::trace::{SpanRecord, Tracer};
use parking_lot::RwLock;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Default per-node flight-recorder capacity (spans retained).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Inner {
    metrics: RwLock<BTreeMap<String, Metric>>,
    clock: Arc<dyn Clock>,
    /// Shared trace/span id sequence: ids are unique across the whole
    /// registry and deterministic for a fixed call order (starts at 1 so
    /// 0 can mean "unset" on the wire).
    trace_ids: Arc<AtomicU64>,
    /// Per-node flight recorders, created on first `tracer()` call.
    recorders: RwLock<BTreeMap<u32, Arc<FlightRecorder>>>,
}

/// A shared, namespaced metric table with an injectable clock.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A registry on the production monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an explicit clock (virtual in tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry {
            inner: Arc::new(Inner {
                metrics: RwLock::new(BTreeMap::new()),
                clock,
                trace_ids: Arc::new(AtomicU64::new(1)),
                recorders: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// The registry's time source. Instrumented code takes "now" from
    /// here instead of `Instant::now()` (the injectable-clock rule).
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.inner.clock.clone()
    }

    /// Rebase the shared trace/span id counter to `max(current, base)`.
    ///
    /// In-process, one registry mints all ids and uniqueness is free.
    /// Across *processes* each registry counts independently, so two
    /// nodes would mint colliding span ids for the same trace; a
    /// `mendel serve` process therefore salts its id space with
    /// `(node + 1) << 48` before serving (DESIGN.md §17). Monotone
    /// (never lowers the counter), so late or repeated calls cannot
    /// reissue ids.
    pub fn seed_trace_ids(&self, base: u64) {
        let ids = &self.inner.trace_ids;
        // audit:ordering(Relaxed): fetch_max atomicity alone guarantees the counter never goes backwards; no other data is published
        ids.fetch_max(base, std::sync::atomic::Ordering::Relaxed);
    }

    /// Get or create the counter `name`. If the name is already taken
    /// by a different metric kind, a detached counter is returned (it
    /// works, but never appears in snapshots) — name kinds are stable
    /// by convention, see DESIGN.md §11.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.metrics.write();
        match map.entry(name.to_string()) {
            Entry::Occupied(e) => match e.get() {
                Metric::Counter(c) => c.clone(),
                _ => Arc::new(Counter::new()),
            },
            Entry::Vacant(v) => {
                let c = Arc::new(Counter::new());
                v.insert(Metric::Counter(c.clone()));
                c
            }
        }
    }

    /// Get or create the gauge `name` (kind-mismatch behaves as for
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.metrics.write();
        match map.entry(name.to_string()) {
            Entry::Occupied(e) => match e.get() {
                Metric::Gauge(g) => g.clone(),
                _ => Arc::new(Gauge::new()),
            },
            Entry::Vacant(v) => {
                let g = Arc::new(Gauge::new());
                v.insert(Metric::Gauge(g.clone()));
                g
            }
        }
    }

    /// Get or create the histogram `name` with the given constructor
    /// for first registration; an existing histogram keeps its original
    /// boundaries (names imply boundaries, by convention).
    pub fn histogram_with(&self, name: &str, make: impl FnOnce() -> Histogram) -> Arc<Histogram> {
        let mut map = self.inner.metrics.write();
        match map.entry(name.to_string()) {
            Entry::Occupied(e) => match e.get() {
                Metric::Histogram(h) => h.clone(),
                _ => Arc::new(make()),
            },
            Entry::Vacant(v) => {
                let h = Arc::new(make());
                v.insert(Metric::Histogram(h.clone()));
                h
            }
        }
    }

    /// Get or create the histogram `name` with the default span
    /// boundaries (1µs–100s, log-spaced).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::span_seconds)
    }

    /// Start a span that records elapsed seconds into the histogram
    /// `<name>.seconds` when finished.
    pub fn span(&self, name: &str) -> Span {
        let hist = self.histogram(&format!("{name}.seconds"));
        Span::with_sink(self.clock(), Some(hist))
    }

    /// A tracer for `node`, minting ids from the registry-wide
    /// deterministic counter and recording into that node's flight
    /// recorder (created on first use, capacity
    /// [`DEFAULT_FLIGHT_CAPACITY`]). Tracers for the same node share a
    /// recorder.
    pub fn tracer(&self, node: u32) -> Tracer {
        let recorder = {
            let mut map = self.inner.recorders.write();
            map.entry(node)
                .or_insert_with(|| Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)))
                .clone()
        };
        Tracer::new(
            self.inner.clock.clone(),
            self.inner.trace_ids.clone(),
            recorder,
            node,
        )
    }

    /// Every node's flight recorder, by node id (ascending).
    pub fn flight_recorders(&self) -> Vec<(u32, Arc<FlightRecorder>)> {
        self.inner
            .recorders
            .read()
            .iter()
            .map(|(&node, r)| (node, r.clone()))
            .collect()
    }

    /// All retained span records across every node's flight recorder,
    /// in node order (each recorder oldest-first). Feed this to a
    /// [`crate::TraceCollector`].
    pub fn trace_records(&self) -> Vec<SpanRecord> {
        self.flight_recorders()
            .into_iter()
            .flat_map(|(_, r)| r.records())
            .collect()
    }

    /// A handle factory that prefixes every metric name with
    /// `<prefix>.`.
    pub fn scoped(&self, prefix: &str) -> ScopedRegistry {
        ScopedRegistry {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// A point-in-time view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.metrics.read();
        let mut out = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    out.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    out.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`Registry`] view under a fixed namespace prefix.
#[derive(Debug, Clone)]
pub struct ScopedRegistry {
    registry: Registry,
    prefix: String,
}

impl ScopedRegistry {
    fn name(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// Get or create `<prefix>.<name>` as a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.name(name))
    }

    /// Get or create `<prefix>.<name>` as a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.name(name))
    }

    /// Get or create `<prefix>.<name>` as a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.name(name))
    }

    /// Start a span recording into `<prefix>.<name>.seconds`.
    pub fn span(&self, name: &str) -> Span {
        self.registry.span(&self.name(name))
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::time::Duration;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("mendel.test.hits");
        let b = r.counter("mendel.test.hits");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counter("mendel.test.hits"), 3);
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let r = Registry::new();
        r.counter("mendel.test.x").inc();
        let g = r.gauge("mendel.test.x");
        g.set(99);
        // The registered counter is untouched and the gauge is invisible.
        let snap = r.snapshot();
        assert_eq!(snap.counter("mendel.test.x"), 1);
        assert_eq!(snap.gauge("mendel.test.x"), 0);
    }

    #[test]
    fn scoped_registry_prefixes_names() {
        let r = Registry::new();
        let vptree = r.scoped("mendel.vptree");
        vptree.counter("dist_calls").add(7);
        assert_eq!(r.snapshot().counter("mendel.vptree.dist_calls"), 7);
    }

    #[test]
    fn span_records_into_named_histogram() {
        let clock = Arc::new(VirtualClock::new());
        let r = Registry::with_clock(clock.clone());
        let span = r.span("mendel.query.stage.hash");
        clock.advance(Duration::from_millis(3));
        let elapsed = span.finish();
        assert_eq!(elapsed, Duration::from_millis(3));
        let snap = r.snapshot();
        let h = snap
            .histogram("mendel.query.stage.hash.seconds")
            .expect("span histogram registered");
        assert_eq!(h.count(), 1);
        assert!((h.sum - 0.003).abs() < 1e-12);
    }

    #[test]
    fn tracers_share_ids_and_per_node_recorders() {
        let clock = Arc::new(VirtualClock::new());
        let r = Registry::with_clock(clock.clone());
        let t0 = r.tracer(0);
        let t3 = r.tracer(3);
        let root = t0.start_trace("query"); // ids 1 (trace), 2 (span)
        clock.advance(Duration::from_micros(10));
        let child = t3.child("group", root.context()); // id 3
        child.finish();
        root.finish();
        assert_eq!(t0.next_id(), 4, "counter is registry-wide");
        let recorders = r.flight_recorders();
        assert_eq!(
            recorders.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec![0, 3]
        );
        let records = r.trace_records();
        assert_eq!(records.len(), 2);
        // Same node → same recorder instance.
        assert_eq!(r.tracer(0).recorder().len(), 1);
    }

    #[test]
    fn seed_trace_ids_is_monotone() {
        let r = Registry::new();
        let t = r.tracer(0);
        assert_eq!(t.next_id(), 1);
        r.seed_trace_ids((3u64 << 48) | 1);
        assert_eq!(t.next_id(), (3u64 << 48) | 1, "counter jumped to the base");
        r.seed_trace_ids(5);
        assert_eq!(
            t.next_id(),
            (3u64 << 48) | 2,
            "a lower base never rewinds the counter"
        );
    }

    #[test]
    fn hostile_metric_names_render_as_valid_prometheus() {
        let r = Registry::new();
        r.counter("0day{evil=\"1\"}\ninjected 9").inc();
        r.gauge("héllo wörld").set(2);
        r.histogram("9.stage time").record(0.5);
        let text = r.snapshot().to_prometheus();
        for line in text.lines() {
            assert!(!line.is_empty());
            let name = if let Some(rest) = line.strip_prefix("# TYPE ") {
                rest.split_whitespace().next().expect("type line has name")
            } else {
                line.split(['{', ' ']).next().expect("sample line has name")
            };
            let mut chars = name.chars();
            let first = chars.next().expect("non-empty metric name");
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "bad leading char in {name:?}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad char in {name:?}"
            );
        }
        assert!(text.contains("_0day_evil__1___injected_9 1"));
    }

    #[test]
    fn snapshot_since_isolates_one_interval() {
        let r = Registry::new();
        let c = r.counter("mendel.test.events");
        c.add(5);
        let before = r.snapshot();
        c.add(37);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.counter("mendel.test.events"), 37);
    }
}
