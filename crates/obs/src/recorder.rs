//! The flight recorder: a bounded per-node ring of finished spans.
//!
//! Each node keeps the last `capacity` [`SpanRecord`]s it produced, so
//! when a chaos assertion fires the recent causal history is still on
//! hand (and dumpable) without unbounded memory growth. Overwritten
//! records are counted, never silently lost.

use crate::trace::SpanRecord;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded ring buffer of span records. Push is O(1); when full, the
/// oldest record is evicted and the `dropped` counter bumped.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&self, record: SpanRecord) {
        let mut ring = self.inner.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed); // audit:ordering(Relaxed): incremented under the ring mutex, which orders it with evictions; the racy read side needs only atomicity
        }
        ring.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // audit:ordering(Relaxed): statistics read; may trail a concurrent eviction by design
    }

    /// Discard all retained records (eviction count is kept).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, TraceId};
    use std::time::Duration;

    fn record(n: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(1),
            span: SpanId(n),
            parent: None,
            node: 0,
            name: format!("s{n}"),
            start: Duration::from_micros(n),
            end: Duration::from_micros(n + 1),
            tags: Vec::new(),
        }
    }

    #[test]
    fn retains_in_fifo_order() {
        let r = FlightRecorder::new(8);
        assert!(r.is_empty());
        for n in 0..3 {
            r.push(record(n));
        }
        let names: Vec<String> = r.records().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["s0", "s1", "s2"]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_when_full_and_counts_drops() {
        let r = FlightRecorder::new(4);
        for n in 0..10 {
            r.push(record(n));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let spans: Vec<u64> = r.records().into_iter().map(|s| s.span.0).collect();
        assert_eq!(spans, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let r = FlightRecorder::new(0);
        r.push(record(1));
        r.push(record(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.records()[0].span, SpanId(2));
    }

    #[test]
    fn clear_keeps_drop_count() {
        let r = FlightRecorder::new(2);
        for n in 0..5 {
            r.push(record(n));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 3);
    }
}
