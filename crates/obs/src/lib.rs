//! # mendel-obs — from-scratch metrics and tracing
//!
//! Mendel's evaluation (§VI of the paper) is entirely about *measured*
//! behavior: throughput against BLAST, per-group load balance (Fig. 5),
//! fan-out counts when a query ball straddles a vp-prefix partition.
//! This crate is the observability substrate those measurements run on —
//! built from scratch on `std` atomics, with no external metrics
//! dependency.
//!
//! The pieces:
//!
//! - [`Counter`] / [`Gauge`]: lock-free `AtomicU64`/`AtomicI64` cells
//!   (`Ordering::Relaxed`, the workspace's established idiom for hot
//!   counters).
//! - [`Histogram`]: fixed-boundary with log-spaced buckets and lock-free
//!   `AtomicU64` cells; quantile estimates come back as the *bracket*
//!   of the bucket holding the requested rank, so callers can reason
//!   about estimation error honestly.
//! - [`Registry`]: namespaced get-or-create handles (`mendel.vptree.*`,
//!   `mendel.net.*`, …) plus point-in-time [`MetricsSnapshot`]s with
//!   Prometheus-text and JSON exposition and counter-delta arithmetic.
//! - [`Span`]: stage timing over an injectable [`Clock`] —
//!   [`MonotonicClock`] in production, [`VirtualClock`] in tests so
//!   chaos/latency tests stay deterministic. Instrumented crates must
//!   not call `Instant::now()` directly (enforced by the `mendel-audit`
//!   `instant-now` rule); they take time from the registry's clock.
//!
//! See `DESIGN.md` §11 for the metric namespace and the
//! injectable-clock rule.

pub mod clock;
pub mod histogram;
pub mod metric;
pub mod recorder;
pub mod registry;
pub mod slowlog;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use histogram::{Histogram, HistogramError};
pub use metric::{Counter, Gauge};
pub use recorder::FlightRecorder;
pub use registry::{Registry, ScopedRegistry};
pub use slowlog::{QueryObservation, SlowLogConfig, SlowLogEntry, SlowLogReason, SlowQueryLog};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use span::Span;
pub use trace::{
    chrome_trace_json, parse_records_text, render_records_text, ActiveSpan, CriticalHop, SpanId,
    SpanRecord, TraceCollector, TraceContext, TraceId, TraceNode, TraceTree, Tracer,
};
