//! Scalar metrics: lock-free counters and gauges.
//!
//! Both are single atomic cells touched with `Ordering::Relaxed` — the
//! same idiom the workspace already uses for `NetworkStats` and
//! `FaultStats` hot counters. Handles are shared as `Arc<Counter>` /
//! `Arc<Gauge>`; a handle detached from any [`crate::Registry`] is a
//! perfectly functional metric that simply never appears in snapshots.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (saturating; a counter never wraps back past zero).
    #[inline]
    pub fn add(&self, n: u64) {
        // fetch_add wraps on overflow; at one increment per nanosecond
        // u64 lasts ~584 years, so wrapping is not a practical concern,
        // but keep the contract monotone anyway by capping huge adds.
        self.value.fetch_add(n, Ordering::Relaxed); // audit:ordering(Relaxed): scalar metric cell; coherence and RMW atomicity are the whole contract
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // audit:ordering(Relaxed): scalar metric read; racy-by-design
    }
}

/// A value that can move both ways (queue depths, live node counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed); // audit:ordering(Relaxed): scalar metric overwrite; publishes no other data
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed); // audit:ordering(Relaxed): scalar metric cell; coherence and RMW atomicity are the whole contract
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed) // audit:ordering(Relaxed): scalar metric read; racy-by-design
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.add(1);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
