//! Fixed-boundary histograms with lock-free cells.
//!
//! Boundaries are chosen once at construction (typically log-spaced —
//! latency and distance-count distributions are heavy-tailed) and never
//! change, so recording is a binary search plus one relaxed atomic
//! increment: safe to leave in hot paths.
//!
//! Quantile estimates are deliberately returned as the *bracket* of the
//! bucket containing the requested rank, `(lo, hi]`: the true sample
//! quantile is guaranteed to lie inside the bracket (the property suite
//! proves it), and the caller decides how to collapse it to a scalar.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram construction/merge failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// Boundaries must be finite and strictly increasing, with at least
    /// one entry.
    BadBounds(String),
    /// Merging requires bitwise-identical boundary vectors.
    BoundaryMismatch,
}

impl std::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistogramError::BadBounds(why) => write!(f, "bad histogram bounds: {why}"),
            HistogramError::BoundaryMismatch => {
                write!(f, "cannot merge histograms with different boundaries")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// A fixed-boundary histogram. Bucket `i` counts samples `v` with
/// `bounds[i-1] < v <= bounds[i]`; one extra overflow bucket counts
/// everything above the last boundary. NaN samples are ignored.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    cells: Vec<AtomicU64>,
    /// Running sum of recorded samples, stored as f64 bits.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit boundaries (finite, strictly
    /// increasing, non-empty).
    pub fn with_bounds(bounds: Vec<f64>) -> Result<Self, HistogramError> {
        if bounds.is_empty() {
            return Err(HistogramError::BadBounds("no boundaries".into()));
        }
        for w in bounds.windows(2) {
            if !(w[0] < w[1]) {
                return Err(HistogramError::BadBounds(format!(
                    "not strictly increasing at {} -> {}",
                    w[0], w[1]
                )));
            }
        }
        if bounds.iter().any(|b| !b.is_finite()) {
            return Err(HistogramError::BadBounds("non-finite boundary".into()));
        }
        let cells = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Ok(Histogram {
            bounds,
            cells,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        })
    }

    /// `buckets` log-spaced boundaries from `min` to `max` inclusive
    /// (`min > 0`, `max > min`, `buckets >= 2`): boundary `i` is
    /// `min · (max/min)^(i/(buckets−1))`.
    pub fn log_spaced(min: f64, max: f64, buckets: usize) -> Result<Self, HistogramError> {
        if !(min > 0.0 && min.is_finite()) || !(max > min && max.is_finite()) {
            return Err(HistogramError::BadBounds(format!(
                "log spacing needs 0 < min < max, got {min}..{max}"
            )));
        }
        if buckets < 2 {
            return Err(HistogramError::BadBounds(
                "log spacing needs at least 2 buckets".into(),
            ));
        }
        let ratio = max / min;
        let mut bounds: Vec<f64> = (0..buckets)
            .map(|i| min * ratio.powf(i as f64 / (buckets - 1) as f64))
            .collect();
        // powf rounding can land the last boundary a hair under max;
        // pin the endpoints exactly.
        bounds[0] = min;
        bounds[buckets - 1] = max;
        Self::with_bounds(bounds)
    }

    /// The default span histogram: 1µs to 100s in seconds, 36 log-spaced
    /// boundaries (~4.4 per decade).
    pub fn span_seconds() -> Self {
        // audit:allow(expect): constant arguments proven valid above.
        Self::log_spaced(1e-6, 100.0, 36).expect("constant bounds are valid")
    }

    /// Record one sample. NaN is ignored.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.cells[idx].fetch_add(1, Ordering::Relaxed); // audit:ordering(Relaxed): per-bucket event counter; RMW atomicity suffices, snapshots are racy by design
        let mut cur = self.sum_bits.load(Ordering::Relaxed); // audit:ordering(Relaxed): CAS loop seed read; any stale value is corrected by the retry
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed) // audit:ordering(Relaxed): f64-bits accumulator CAS; only RMW atomicity of this cell is required, no other data is published under it
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The boundary vector.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum() // audit:ordering(Relaxed): count snapshot read; racy-by-design statistics
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed)) // audit:ordering(Relaxed): sum snapshot read; racy-by-design statistics
    }

    /// The `(lo, hi]` bracket of the bucket holding the `q`-quantile
    /// (nearest-rank, `q` clamped into `[0, 1]`), or `None` when the
    /// histogram is empty. `lo` is `-∞` for the first bucket and `hi`
    /// is `+∞` for the overflow bucket.
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        let counts: Vec<u64> = self
            .cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed)) // audit:ordering(Relaxed): bucket snapshot read; racy-by-design statistics
            .collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the r-th smallest sample, r in [1, n].
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let lo = if i == 0 {
                    f64::NEG_INFINITY
                } else {
                    self.bounds[i - 1]
                };
                let hi = if i == self.bounds.len() {
                    f64::INFINITY
                } else {
                    self.bounds[i]
                };
                return Some((lo, hi));
            }
        }
        None
    }

    /// Conservative scalar quantile estimate: the upper edge of the
    /// bracket (may be `+∞` if the rank falls in the overflow bucket).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_bounds(q).map(|(_, hi)| hi)
    }

    /// Fold `other`'s samples into `self`. Boundaries must be bitwise
    /// identical.
    pub fn merge_from(&self, other: &Histogram) -> Result<(), HistogramError> {
        if self.bounds.len() != other.bounds.len()
            || self
                .bounds
                .iter()
                .zip(&other.bounds)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Err(HistogramError::BoundaryMismatch);
        }
        for (mine, theirs) in self.cells.iter().zip(&other.cells) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed); // audit:ordering(Relaxed): cell-by-cell merge of statistics counters; racy-by-design
        }
        let add = other.sum();
        let mut cur = self.sum_bits.load(Ordering::Relaxed); // audit:ordering(Relaxed): CAS loop seed read; any stale value is corrected by the retry
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self
                .sum_bits
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed) // audit:ordering(Relaxed): f64-bits accumulator CAS; only RMW atomicity of this cell is required
            {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .cells
                .iter()
                .map(|c| c.load(Ordering::Relaxed)) // audit:ordering(Relaxed): snapshot read; racy-by-design statistics
                .collect(),
            sum: self.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bad_bounds_rejected() {
        assert!(Histogram::with_bounds(vec![]).is_err());
        assert!(Histogram::with_bounds(vec![1.0, 1.0]).is_err());
        assert!(Histogram::with_bounds(vec![2.0, 1.0]).is_err());
        assert!(Histogram::with_bounds(vec![1.0, f64::INFINITY]).is_err());
        assert!(Histogram::log_spaced(0.0, 1.0, 4).is_err());
        assert!(Histogram::log_spaced(1.0, 1.0, 4).is_err());
        assert!(Histogram::log_spaced(1.0, 10.0, 1).is_err());
    }

    #[test]
    fn log_spacing_pins_endpoints_and_is_geometric() {
        let h = Histogram::log_spaced(1e-3, 1e3, 7).unwrap();
        let b = h.bounds();
        assert_eq!(b.len(), 7);
        assert_eq!(b[0], 1e-3);
        assert_eq!(b[6], 1e3);
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9, "{:?}", b);
        }
    }

    #[test]
    fn bucketing_is_upper_inclusive() {
        let h = Histogram::with_bounds(vec![1.0, 10.0]).unwrap();
        h.record(1.0); // first bucket (v <= 1.0)
        h.record(1.5); // second bucket
        h.record(10.0); // second bucket (v <= 10.0)
        h.record(11.0); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 23.5).abs() < 1e-12);
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::with_bounds(vec![1.0]).unwrap();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_on_empty_are_none() {
        let h = Histogram::span_seconds();
        assert_eq!(h.quantile_bounds(0.5), None);
        assert_eq!(h.quantile(0.99), None);
    }

    #[test]
    fn quantile_extremes_hit_first_and_last_occupied_buckets() {
        let h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]).unwrap();
        h.record(0.5); // bucket 0
        h.record(5.0); // bucket 1
        h.record(50.0); // bucket 2
                        // q=0 clamps to rank 1: the smallest sample's bucket, whose lower
                        // edge is the open -inf end of the first bucket.
        assert_eq!(h.quantile_bounds(0.0), Some((f64::NEG_INFINITY, 1.0)));
        // q=1 is rank n: the largest sample's bucket.
        assert_eq!(h.quantile_bounds(1.0), Some((10.0, 100.0)));
        // Out-of-range q clamps rather than erroring.
        assert_eq!(h.quantile_bounds(-3.0), h.quantile_bounds(0.0));
        assert_eq!(h.quantile_bounds(7.5), h.quantile_bounds(1.0));
    }

    #[test]
    fn single_sample_owns_every_quantile() {
        let h = Histogram::with_bounds(vec![1.0, 10.0]).unwrap();
        h.record(3.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_bounds(q), Some((1.0, 10.0)), "q={q}");
            assert_eq!(h.quantile(q), Some(10.0), "q={q}");
        }
    }

    #[test]
    fn overflow_bucket_quantile_is_unbounded_above() {
        let h = Histogram::with_bounds(vec![1.0]).unwrap();
        h.record(1e9);
        assert_eq!(h.quantile_bounds(0.5), Some((1.0, f64::INFINITY)));
        assert_eq!(h.quantile(0.5), Some(f64::INFINITY));
    }

    #[test]
    fn nan_record_leaves_cells_sum_and_quantiles_untouched() {
        let h = Histogram::with_bounds(vec![1.0, 10.0]).unwrap();
        h.record(2.0);
        let before = h.snapshot();
        h.record(f64::NAN);
        let after = h.snapshot();
        assert_eq!(before, after, "NaN must not perturb any cell or the sum");
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_bounds(0.5), Some((1.0, 10.0)));
    }

    #[test]
    fn merge_rejects_different_bounds() {
        let a = Histogram::with_bounds(vec![1.0, 2.0]).unwrap();
        let b = Histogram::with_bounds(vec![1.0, 3.0]).unwrap();
        assert_eq!(a.merge_from(&b), Err(HistogramError::BoundaryMismatch));
    }

    /// Reference quantile: the nearest-rank sample itself.
    fn true_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len() as f64;
        let rank = ((q.clamp(0.0, 1.0) * n).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Satellite property: bucket counts always sum to n.
        #[test]
        fn counts_sum_to_n(samples in proptest::collection::vec(-1e6f64..1e6, 0..300)) {
            let h = Histogram::log_spaced(1e-3, 1e4, 24).unwrap();
            for &s in &samples {
                h.record(s);
            }
            prop_assert_eq!(h.count(), samples.len() as u64);
            let snap = h.snapshot();
            prop_assert_eq!(snap.counts.iter().sum::<u64>(), samples.len() as u64);
            prop_assert_eq!(snap.counts.len(), snap.bounds.len() + 1);
        }

        /// Satellite property: the quantile bracket contains the true
        /// nearest-rank sample quantile, for arbitrary samples and q.
        #[test]
        fn quantile_bracket_contains_true_quantile(
            samples in proptest::collection::vec(-10.0f64..1e5, 1..250),
            q in 0.0f64..1.0,
        ) {
            let h = Histogram::log_spaced(1e-2, 1e3, 30).unwrap();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let truth = true_quantile(&sorted, q);
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            // Buckets are (lo, hi], so the bracket is strict below.
            prop_assert!(lo < truth, "lower bracket {lo} not below true quantile {truth}");
            prop_assert!(truth <= hi, "true quantile {truth} above bracket {hi}");
            prop_assert!(h.quantile(q).unwrap() >= truth);
        }

        /// Satellite property: merge(a, b) is indistinguishable from
        /// recording every sample into one histogram.
        #[test]
        fn merge_equals_record_all(
            xs in proptest::collection::vec(0.0f64..1e4, 0..150),
            ys in proptest::collection::vec(0.0f64..1e4, 0..150),
        ) {
            let a = Histogram::log_spaced(1e-1, 1e3, 20).unwrap();
            let b = Histogram::log_spaced(1e-1, 1e3, 20).unwrap();
            let all = Histogram::log_spaced(1e-1, 1e3, 20).unwrap();
            for &x in &xs {
                a.record(x);
                all.record(x);
            }
            for &y in &ys {
                b.record(y);
                all.record(y);
            }
            a.merge_from(&b).unwrap();
            let (ma, mall) = (a.snapshot(), all.snapshot());
            prop_assert_eq!(&ma.counts, &mall.counts);
            prop_assert!((ma.sum - mall.sum).abs() <= 1e-6 * mall.sum.abs().max(1.0));
        }
    }
}
