//! The injectable clock: monotonic in production, virtual in tests.
//!
//! Everything in the workspace that needs "now" for instrumentation
//! takes it from a [`Clock`] rather than calling `Instant::now()`
//! directly, so chaos and latency tests can drive time deterministically
//! (the `mendel-audit` `instant-now` rule enforces this in the
//! instrumented crates; this module is the sanctioned wrapper).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source reporting the elapsed time since its own
/// origin. Implementations must be monotone: successive `now()` calls
/// never go backwards.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// Production clock: wall-clock monotonic time via `Instant`, anchored
/// at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Test clock: time advances only when told to, in whole nanoseconds.
/// Monotone by construction — there is no way to move it backwards.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `d` (saturating at `u64::MAX` nanoseconds).
    pub fn advance(&self, d: Duration) {
        let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let mut cur = self.nanos.load(Ordering::Relaxed); // audit:ordering(Relaxed): CAS loop seed read; any stale value is corrected by the retry
        loop {
            let next = cur.saturating_add(add);
            match self
                .nanos
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed) // audit:ordering(Relaxed): monotone CAS on a single cell; RMW atomicity suffices, saturating_add keeps it monotone
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed)) // audit:ordering(Relaxed): virtual time read; single-cell coherence already forbids a thread seeing time go backwards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let mut last = c.now();
        for _ in 0..1000 {
            let t = c.now();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn virtual_clock_advances_exactly() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
        c.advance(Duration::from_nanos(3));
        assert_eq!(c.now(), Duration::from_nanos(5_000_003));
    }

    #[test]
    fn virtual_clock_saturates_instead_of_wrapping() {
        let c = VirtualClock::new();
        c.advance(Duration::from_nanos(u64::MAX));
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn clock_is_object_safe_and_shareable() {
        let c: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let c2 = c.clone();
        assert_eq!(c.now(), c2.now());
    }
}
