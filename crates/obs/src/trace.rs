//! Causal tracing: per-query span trees over the injectable clock.
//!
//! Aggregate metrics (PR 4) answer "how much"; traces answer "why was
//! *this* query slow". A [`Tracer`] mints [`TraceId`]/[`SpanId`]s from a
//! deterministic shared counter and stamps [`SpanRecord`]s with the
//! registry's injectable [`Clock`] — never `Instant::now()` — so a
//! seeded run under a `VirtualClock` produces byte-identical trace
//! exports. Records land in a bounded per-node
//! [`crate::recorder::FlightRecorder`]; a [`TraceCollector`] reassembles
//! them into a [`TraceTree`] with critical-path extraction over the
//! scatter-gather DAG and Chrome trace-event JSON export (loadable in
//! Perfetto / `chrome://tracing`). See DESIGN.md §12.

use crate::clock::Clock;
use crate::recorder::FlightRecorder;
use crate::snapshot::escape_json;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identity of one end-to-end request across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace{}", self.0)
    }
}

/// Identity of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span{}", self.0)
    }
}

/// The causal context a message carries across node boundaries: which
/// trace it belongs to, which span caused it, and whether the receiver
/// should spend memory recording spans for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The request this work belongs to.
    pub trace: TraceId,
    /// The span that caused this work (parent for any child spans).
    pub parent: SpanId,
    /// Dapper-style sampling decision, made once at the trace root and
    /// propagated verbatim: when `false` the ids still flow (so log
    /// lines can be correlated) but downstream nodes record no spans.
    pub sampled: bool,
}

impl TraceContext {
    /// A sampled context (the common case: record everything).
    pub fn new(trace: TraceId, parent: SpanId) -> Self {
        TraceContext {
            trace,
            parent,
            sampled: true,
        }
    }
}

/// One finished span: a named, tagged `[start, end)` interval on a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Owning trace.
    pub trace: TraceId,
    /// This span.
    pub span: SpanId,
    /// Causal parent; `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Node the work ran on.
    pub node: u32,
    /// Span name (e.g. `query`, `group/2`, `rpc.attempt`).
    pub name: String,
    /// Start offset on the trace's clock.
    pub start: Duration,
    /// End offset on the trace's clock (`>= start`).
    pub end: Duration,
    /// Annotations, in insertion order.
    pub tags: Vec<(String, String)>,
}

impl SpanRecord {
    /// The span's own duration.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// Mints span ids, stamps time, and writes records into one node's
/// flight recorder. Cheap to clone; clones share the id counter (so ids
/// stay unique and deterministic) and the recorder.
#[derive(Debug, Clone)]
pub struct Tracer {
    clock: Arc<dyn Clock>,
    ids: Arc<AtomicU64>,
    recorder: Arc<FlightRecorder>,
    node: u32,
}

impl Tracer {
    /// A tracer over an explicit clock, id counter, and recorder.
    /// Production code gets one from `Registry::tracer`.
    pub fn new(
        clock: Arc<dyn Clock>,
        ids: Arc<AtomicU64>,
        recorder: Arc<FlightRecorder>,
        node: u32,
    ) -> Self {
        Tracer {
            clock,
            ids,
            recorder,
            node,
        }
    }

    /// The node this tracer records for.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The recorder this tracer writes into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The tracer's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Mint the next id from the shared deterministic counter. Trace and
    /// span ids draw from the same sequence, so a fixed call order yields
    /// a fixed id assignment.
    pub fn next_id(&self) -> u64 {
        self.ids.fetch_add(1, Ordering::Relaxed) // audit:ordering(Relaxed): unique id generation; fetch_add atomicity alone guarantees distinct ids
    }

    /// Start a new trace: mints a fresh [`TraceId`] and opens its root
    /// span (sampled: the caller decided to trace by calling this).
    pub fn start_trace(&self, name: &str) -> ActiveSpan {
        let trace = TraceId(self.next_id());
        self.span_inner(name, trace, None, true)
    }

    /// Open a child span of `ctx`, starting now. The child inherits the
    /// context's sampling decision.
    pub fn child(&self, name: &str, ctx: TraceContext) -> ActiveSpan {
        self.span_inner(name, ctx.trace, Some(ctx.parent), ctx.sampled)
    }

    fn span_inner(
        &self,
        name: &str,
        trace: TraceId,
        parent: Option<SpanId>,
        sampled: bool,
    ) -> ActiveSpan {
        ActiveSpan {
            tracer: self.clone(),
            trace,
            span: SpanId(self.next_id()),
            parent,
            sampled,
            name: name.to_string(),
            start: self.clock.now(),
            tags: Vec::new(),
        }
    }

    /// Record an instantaneous (zero-length) event under `ctx` at the
    /// current clock reading. Unsampled contexts record nothing — the
    /// Dapper-style decision travels with the context.
    pub fn event(&self, name: &str, ctx: TraceContext, tags: Vec<(String, String)>) {
        if !ctx.sampled {
            return;
        }
        let now = self.clock.now();
        self.record(SpanRecord {
            trace: ctx.trace,
            span: SpanId(self.next_id()),
            parent: Some(ctx.parent),
            node: self.node,
            name: name.to_string(),
            start: now,
            end: now,
            tags,
        });
    }

    /// Write a hand-built record (e.g. one positioned on a simulated
    /// timeline rather than the wall clock) into the flight recorder.
    pub fn record(&self, record: SpanRecord) {
        self.recorder.push(record);
    }
}

/// An open span. Records nothing until [`ActiveSpan::finish`] — dropping
/// it silently loses the measurement, hence the `must_use`.
#[must_use = "an unfinished span records nothing; call finish()"]
#[derive(Debug)]
pub struct ActiveSpan {
    tracer: Tracer,
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    sampled: bool,
    name: String,
    start: Duration,
    tags: Vec<(String, String)>,
}

impl ActiveSpan {
    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.span
    }

    /// The owning trace.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// The context to propagate to work this span causes: same trace,
    /// this span as parent, same sampling decision.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            parent: self.span,
            sampled: self.sampled,
        }
    }

    /// Attach a tag (kept in insertion order).
    pub fn tag(&mut self, key: &str, value: impl std::fmt::Display) {
        self.tags.push((key.to_string(), value.to_string()));
    }

    /// Close the span at the current clock reading, push its record into
    /// the flight recorder (unless the trace is unsampled — timing still
    /// comes back, memory is not spent), and return the elapsed time.
    pub fn finish(self) -> Duration {
        let end = self.tracer.clock.now();
        let record = SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            node: self.tracer.node,
            name: self.name,
            start: self.start,
            end: end.max(self.start),
            tags: self.tags,
        };
        let elapsed = record.duration();
        if self.sampled {
            self.tracer.record(record);
        }
        elapsed
    }
}

/// One hop on a trace's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Span name.
    pub name: String,
    /// Node the span ran on.
    pub node: u32,
    /// The span's own duration.
    pub duration: Duration,
}

/// A span and its causal children, children ordered by `(start, span)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans in deterministic order.
    pub children: Vec<TraceNode>,
}

/// A reassembled trace: the root span and everything under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The trace this tree renders.
    pub trace: TraceId,
    /// The root span (no parent, or parent missing from the record set).
    pub root: TraceNode,
}

impl TraceTree {
    /// The critical path through the scatter-gather DAG: starting at the
    /// root, repeatedly descend into the child that finishes *last*
    /// (ties broken toward the smaller span id, so extraction is
    /// deterministic). The returned hops are ordered root → leaf.
    pub fn critical_path(&self) -> Vec<CriticalHop> {
        let mut path = Vec::new();
        let mut node = &self.root;
        loop {
            path.push(CriticalHop {
                name: node.record.name.clone(),
                node: node.record.node,
                duration: node.record.duration(),
            });
            let Some(next) = node.children.iter().max_by(|a, b| {
                a.record
                    .end
                    .cmp(&b.record.end)
                    // max_by keeps the *last* maximal element, so to
                    // prefer the smaller span id we order larger ids
                    // as "less".
                    .then(b.record.span.cmp(&a.record.span))
            }) else {
                return path;
            };
            node = next;
        }
    }

    /// Plain-text rendering, one line per span, children indented.
    pub fn render(&self) -> String {
        fn walk(out: &mut String, node: &TraceNode, depth: usize) {
            let r = &node.record;
            let _ = write!(
                out,
                "{}{} [node{}] {:?}",
                "  ".repeat(depth),
                r.name,
                r.node,
                r.duration()
            );
            for (k, v) in &r.tags {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
            for c in &node.children {
                walk(out, c, depth + 1);
            }
        }
        let mut out = format!("{} ({:?} total)\n", self.trace, self.root.record.duration());
        walk(&mut out, &self.root, 0);
        out
    }

    /// Chrome trace-event JSON for just this tree.
    pub fn to_chrome_json(&self) -> String {
        fn flatten(node: &TraceNode, out: &mut Vec<SpanRecord>) {
            out.push(node.record.clone());
            for c in &node.children {
                flatten(c, out);
            }
        }
        let mut records = Vec::new();
        flatten(&self.root, &mut records);
        chrome_trace_json(&records)
    }
}

/// Reassembles [`SpanRecord`]s (from any number of flight recorders)
/// into per-trace trees.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    records: Vec<SpanRecord>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one record.
    pub fn add(&mut self, record: SpanRecord) {
        self.records.push(record);
    }

    /// Add many records.
    pub fn ingest(&mut self, records: impl IntoIterator<Item = SpanRecord>) {
        self.records.extend(records);
    }

    /// All ingested records.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Drop duplicate records (same `(node, span)` identity), keeping
    /// the first occurrence. Cross-process stitching can legitimately
    /// see a span twice — once riding home in a reply tail and once
    /// scraped over HTTP — so ingest the authoritative copy first and
    /// dedup before building trees.
    pub fn dedup(&mut self) {
        let mut seen = std::collections::HashSet::new();
        self.records.retain(|r| seen.insert((r.node, r.span)));
    }

    /// Distinct trace ids seen, ascending.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.records.iter().map(|r| r.trace).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Reassemble `trace` into a tree. The root is the record with no
    /// parent (or whose parent never arrived — a truncated ring buffer
    /// still yields the latest subtree); with several candidates the
    /// earliest-starting, smallest-id one wins. `None` when the trace has
    /// no records.
    pub fn tree(&self, trace: TraceId) -> Option<TraceTree> {
        let mut of_trace: Vec<&SpanRecord> =
            self.records.iter().filter(|r| r.trace == trace).collect();
        if of_trace.is_empty() {
            return None;
        }
        of_trace.sort_by_key(|r| (r.start, r.span));
        let present: std::collections::HashSet<SpanId> = of_trace.iter().map(|r| r.span).collect();
        let root = of_trace
            .iter()
            .find(|r| !r.parent.is_some_and(|p| present.contains(&p)))
            .copied()?;
        fn build(record: &SpanRecord, all: &[&SpanRecord]) -> TraceNode {
            let children = all
                .iter()
                .filter(|r| r.parent == Some(record.span))
                .map(|r| build(r, all))
                .collect();
            TraceNode {
                record: record.clone(),
                children,
            }
        }
        Some(TraceTree {
            trace,
            root: build(root, &of_trace),
        })
    }
}

fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '=' => out.push_str("\\e"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('e') => out.push('='),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Render span records as the line-oriented interchange format nodes
/// serve at `/trace/{id}?format=records`: one record per line,
/// tab-separated `trace span parent node start_ns end_ns name tag=value...`
/// with `-` for a missing parent and backslash escapes in names/tags.
/// The workspace has no JSON parser, so cross-process trace stitching
/// federates through this format instead; [`parse_records_text`] is the
/// exact inverse.
pub fn render_records_text(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.trace.0,
            r.span.0,
            r.parent
                .map_or_else(|| "-".to_string(), |p| p.0.to_string()),
            r.node,
            r.start.as_nanos(),
            r.end.as_nanos(),
            escape_field(&r.name),
        );
        for (k, v) in &r.tags {
            let _ = write!(out, "\t{}={}", escape_field(k), escape_field(v));
        }
        out.push('\n');
    }
    out
}

/// Parse [`render_records_text`] output. Hostile-input posture: any
/// malformed line is an error naming the line, never a panic.
pub fn parse_records_text(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        let mut fields = line.split('\t');
        let mut next = |what: &'static str| fields.next().ok_or_else(|| err(what));
        let trace: u64 = next("missing trace id")?
            .parse()
            .map_err(|_| err("bad trace id"))?;
        let span: u64 = next("missing span id")?
            .parse()
            .map_err(|_| err("bad span id"))?;
        let parent = match next("missing parent")? {
            "-" => None,
            raw => Some(SpanId(raw.parse().map_err(|_| err("bad parent id"))?)),
        };
        let node: u32 = next("missing node")?.parse().map_err(|_| err("bad node"))?;
        let start: u64 = next("missing start")?
            .parse()
            .map_err(|_| err("bad start"))?;
        let end: u64 = next("missing end")?.parse().map_err(|_| err("bad end"))?;
        let name = unescape_field(next("missing name")?).map_err(|e| err(&e))?;
        let mut tags = Vec::new();
        for field in fields {
            let Some((k, v)) = field.split_once('=') else {
                return Err(err("tag without `=`"));
            };
            tags.push((
                unescape_field(k).map_err(|e| err(&e))?,
                unescape_field(v).map_err(|e| err(&e))?,
            ));
        }
        out.push(SpanRecord {
            trace: TraceId(trace),
            span: SpanId(span),
            parent,
            node,
            name,
            start: Duration::from_nanos(start),
            end: Duration::from_nanos(end.max(start)),
            tags,
        });
    }
    Ok(out)
}

/// Duration as fractional microseconds (`ts`/`dur` units of the Chrome
/// trace-event format), rendered from integers so output is
/// byte-deterministic.
fn fmt_us(d: Duration) -> String {
    let nanos = d.as_nanos();
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Render records as Chrome trace-event JSON (`ph: "X"` complete
/// events; `pid`/`tid` carry the node id). Events are sorted by
/// `(start, trace, span)` and all numbers derive from integers, so the
/// same records always produce the same bytes.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.start, r.trace, r.span));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, r) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"mendel\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"trace\":{},\"span\":{}",
            escape_json(&r.name),
            r.node,
            r.node,
            fmt_us(r.start),
            fmt_us(r.duration()),
            r.trace.0,
            r.span.0,
        );
        if let Some(p) = r.parent {
            let _ = write!(out, ",\"parent\":{}", p.0);
        }
        for (k, v) in &r.tags {
            let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn tracer() -> (Arc<VirtualClock>, Tracer) {
        let clock = Arc::new(VirtualClock::new());
        let t = Tracer::new(
            clock.clone(),
            Arc::new(AtomicU64::new(1)),
            Arc::new(FlightRecorder::new(128)),
            0,
        );
        (clock, t)
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let (_clock, t) = tracer();
        assert_eq!(t.next_id(), 1);
        assert_eq!(t.next_id(), 2);
        let t2 = t.clone();
        assert_eq!(t2.next_id(), 3, "clones share the counter");
    }

    #[test]
    fn span_lifecycle_records_into_the_recorder() {
        let (clock, t) = tracer();
        let mut root = t.start_trace("query");
        root.tag("groups", 2);
        clock.advance(Duration::from_micros(500));
        let ctx = root.context();
        let child = t.child("scatter", ctx);
        clock.advance(Duration::from_micros(100));
        assert_eq!(child.finish(), Duration::from_micros(100));
        assert_eq!(root.finish(), Duration::from_micros(600));
        let records = t.recorder().records();
        assert_eq!(records.len(), 2);
        let scatter = &records[0];
        assert_eq!(scatter.name, "scatter");
        assert_eq!(scatter.parent, Some(ctx.parent));
        assert_eq!(scatter.start, Duration::from_micros(500));
        let query = &records[1];
        assert_eq!(query.parent, None);
        assert_eq!(query.tags, vec![("groups".to_string(), "2".to_string())]);
    }

    #[test]
    fn events_are_zero_length() {
        let (clock, t) = tracer();
        let root = t.start_trace("query");
        clock.advance(Duration::from_micros(7));
        t.event(
            "net.drop",
            root.context(),
            vec![("to".into(), "node3".into())],
        );
        root.finish();
        let records = t.recorder().records();
        let drop = records.iter().find(|r| r.name == "net.drop").unwrap();
        assert_eq!(drop.start, drop.end);
        assert_eq!(drop.start, Duration::from_micros(7));
    }

    /// The acceptance-criteria scenario: a hand-built scatter-gather
    /// trace under `VirtualClock` whose critical path must equal the
    /// hand-computed hop sequence and durations.
    #[test]
    fn critical_path_matches_hand_computed_dag() {
        let (_clock, t) = tracer();
        let trace = TraceId(t.next_id());
        let us = Duration::from_micros;
        let mk =
            |span: u64, parent: Option<u64>, node: u32, name: &str, s: u64, e: u64| SpanRecord {
                trace,
                span: SpanId(span),
                parent: parent.map(SpanId),
                node,
                name: name.into(),
                start: us(s),
                end: us(e),
                tags: Vec::new(),
            };
        // query[0,100] -> {group/0[10,40], group/1[10,90] -> {node/3[15,85], node/4[15,30]}}
        t.record(mk(2, None, 0, "query", 0, 100));
        t.record(mk(3, Some(2), 1, "group/0", 10, 40));
        t.record(mk(4, Some(2), 3, "group/1", 10, 90));
        t.record(mk(5, Some(4), 3, "node/3", 15, 85));
        t.record(mk(6, Some(4), 4, "node/4", 15, 30));
        let mut collector = TraceCollector::new();
        collector.ingest(t.recorder().records());
        let tree = collector.tree(trace).unwrap();
        let path = tree.critical_path();
        let got: Vec<(&str, u32, Duration)> = path
            .iter()
            .map(|h| (h.name.as_str(), h.node, h.duration))
            .collect();
        assert_eq!(
            got,
            vec![
                ("query", 0, us(100)),
                ("group/1", 3, us(80)),
                ("node/3", 3, us(70)),
            ]
        );
    }

    #[test]
    fn critical_path_tie_breaks_toward_smaller_span_id() {
        let trace = TraceId(1);
        let us = Duration::from_micros;
        let mk = |span: u64, parent: Option<u64>, s: u64, e: u64| SpanRecord {
            trace,
            span: SpanId(span),
            parent: parent.map(SpanId),
            node: 0,
            name: format!("s{span}"),
            start: us(s),
            end: us(e),
            tags: Vec::new(),
        };
        let mut c = TraceCollector::new();
        c.add(mk(2, None, 0, 50));
        c.add(mk(4, Some(2), 0, 50)); // same end as span 3
        c.add(mk(3, Some(2), 0, 50));
        let path = c.tree(trace).unwrap().critical_path();
        assert_eq!(path[1].name, "s3", "ties resolve to the smaller span id");
    }

    #[test]
    fn truncated_trace_still_yields_a_tree() {
        let trace = TraceId(9);
        let mut c = TraceCollector::new();
        c.add(SpanRecord {
            trace,
            span: SpanId(20),
            parent: Some(SpanId(10)), // parent evicted from the ring
            node: 2,
            name: "orphan".into(),
            start: Duration::from_micros(5),
            end: Duration::from_micros(8),
            tags: Vec::new(),
        });
        let tree = c.tree(trace).unwrap();
        assert_eq!(tree.root.record.name, "orphan");
        assert!(c.tree(TraceId(999)).is_none());
    }

    #[test]
    fn chrome_export_is_sorted_escaped_and_balanced() {
        let trace = TraceId(1);
        let us = Duration::from_micros;
        let mut c = TraceCollector::new();
        c.add(SpanRecord {
            trace,
            span: SpanId(3),
            parent: Some(SpanId(2)),
            node: 1,
            name: "weird\"name\n".into(),
            start: us(10),
            end: us(25),
            tags: vec![("peer".into(), "node1".into())],
        });
        c.add(SpanRecord {
            trace,
            span: SpanId(2),
            parent: None,
            node: 0,
            name: "query".into(),
            start: us(0),
            end: us(100),
            tags: Vec::new(),
        });
        let json = chrome_trace_json(c.records());
        // Events sorted by start: query first despite insertion order.
        assert!(json.find("\"name\":\"query\"").unwrap() < json.find("weird").unwrap());
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10.000"));
        assert!(json.contains("\"dur\":15.000"));
        assert!(json.contains("weird\\\"name\\u000a"));
        let depth = json.chars().fold(0i32, |d, ch| match ch {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        // Unescaped quotes must pair up (escaped ones live inside strings).
        let mut quotes = 0usize;
        let mut prev_backslash = false;
        for ch in json.chars() {
            if ch == '"' && !prev_backslash {
                quotes += 1;
            }
            prev_backslash = ch == '\\' && !prev_backslash;
        }
        assert_eq!(quotes % 2, 0);
    }

    #[test]
    fn records_text_roundtrips_hostile_names_and_tags() {
        let records = vec![
            SpanRecord {
                trace: TraceId(7),
                span: SpanId(8),
                parent: None,
                node: 2,
                name: "que\try\n\\weird=name".into(),
                start: Duration::from_nanos(1_234),
                end: Duration::from_nanos(9_999),
                tags: vec![("k=ey\t".into(), "v\\al\nue".into())],
            },
            SpanRecord {
                trace: TraceId(7),
                span: SpanId(9),
                parent: Some(SpanId(8)),
                node: 3,
                name: "node/3".into(),
                start: Duration::ZERO,
                end: Duration::from_secs(2),
                tags: Vec::new(),
            },
        ];
        let text = render_records_text(&records);
        assert_eq!(parse_records_text(&text).unwrap(), records);
        // Round-trip is a fixed point.
        assert_eq!(
            render_records_text(&parse_records_text(&text).unwrap()),
            text
        );
    }

    #[test]
    fn records_text_rejects_garbage_without_panicking() {
        assert!(parse_records_text("not\ta\trecord\n").is_err());
        assert!(parse_records_text("1\t2\t-\t0\t5\t9\tname\tno-equals\n").is_err());
        assert!(parse_records_text("1\t2\t-\t0\t5\t9\tbad\\escape\\q\n").is_err());
        assert!(parse_records_text("1\t2\t-\t0\t5\n").is_err(), "short line");
        assert!(parse_records_text("").unwrap().is_empty());
        // An end before its start is clamped, not trusted.
        let r = parse_records_text("1\t2\t-\t0\t50\t10\tclamped\n").unwrap();
        assert_eq!(r[0].start, r[0].end);
    }

    #[test]
    fn collector_dedup_keeps_first_copy_per_node_span() {
        let mut c = TraceCollector::new();
        let mk = |span: u64, node: u32, end_us: u64| SpanRecord {
            trace: TraceId(1),
            span: SpanId(span),
            parent: None,
            node,
            name: "x".into(),
            start: Duration::ZERO,
            end: Duration::from_micros(end_us),
            tags: Vec::new(),
        };
        c.add(mk(5, 1, 10)); // authoritative copy
        c.add(mk(5, 1, 99)); // federated duplicate
        c.add(mk(5, 2, 10)); // same span id, different node: kept
        c.dedup();
        assert_eq!(c.records().len(), 2);
        assert_eq!(c.records()[0].end, Duration::from_micros(10));
    }

    #[test]
    fn context_propagates_sampling_flag() {
        let (_clock, t) = tracer();
        let root = t.start_trace("query");
        assert!(root.context().sampled, "explicit traces are sampled");
        let mut unsampled = root.context();
        unsampled.sampled = false;
        let child = t.child("hop", unsampled);
        assert!(!child.context().sampled, "children inherit the decision");
        t.event("dropped", unsampled, Vec::new());
        child.finish();
        root.finish();
        let names: Vec<String> = t
            .recorder()
            .records()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert_eq!(names, vec!["query"], "unsampled work records nothing");
        assert!(TraceContext::new(TraceId(1), SpanId(2)).sampled);
    }

    #[test]
    fn render_shows_hierarchy_and_tags() {
        let trace = TraceId(1);
        let mut c = TraceCollector::new();
        c.add(SpanRecord {
            trace,
            span: SpanId(2),
            parent: None,
            node: 0,
            name: "query".into(),
            start: Duration::ZERO,
            end: Duration::from_micros(100),
            tags: vec![("hits".into(), "3".into())],
        });
        c.add(SpanRecord {
            trace,
            span: SpanId(3),
            parent: Some(SpanId(2)),
            node: 1,
            name: "scatter".into(),
            start: Duration::from_micros(1),
            end: Duration::from_micros(2),
            tags: Vec::new(),
        });
        let text = c.tree(trace).unwrap().render();
        assert!(text.contains("query [node0]"));
        assert!(text.contains("\n  scatter [node1]"), "{text}");
        assert!(text.contains("hits=3"));
    }
}
