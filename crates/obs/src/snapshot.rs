//! Point-in-time metric snapshots and their exposition formats.
//!
//! A [`MetricsSnapshot`] is plain data (`BTreeMap`s, so rendering is
//! deterministic) with two render targets — Prometheus text and JSON —
//! and counter-delta arithmetic so a caller can attribute counts to one
//! query: snapshot before, snapshot after, subtract.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen histogram cells (see [`crate::Histogram::snapshot`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// The boundary vector.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts (last = overflow).
    pub counts: Vec<u64>,
    /// Sum of recorded samples.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }
}

/// A point-in-time view of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram cells by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name; 0 when absent (a counter that never
    /// fired and one that was never created read the same).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name; 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram cells by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The change since `earlier`: counters and histogram cells are
    /// subtracted (saturating, so a restarted registry reads as zero
    /// rather than wrapping); gauges keep their current value, deltas
    /// being meaningless for level metrics.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), v.saturating_sub(earlier.counter(name))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let mut out = h.clone();
                if let Some(prev) = earlier.histograms.get(name) {
                    if prev.bounds == out.bounds && prev.counts.len() == out.counts.len() {
                        for (c, p) in out.counts.iter_mut().zip(&prev.counts) {
                            *c = c.saturating_sub(*p);
                        }
                        out.sum -= prev.sum;
                    }
                }
                (name.clone(), out)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Prometheus text exposition: one `# TYPE` line per metric, dots in
    /// names mapped to underscores, histogram buckets as cumulative
    /// `_bucket{le="…"}` series with `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (i, &count) in h.counts.iter().enumerate() {
                cumulative += count;
                let le = match h.bounds.get(i) {
                    Some(b) => format_f64(*b),
                    None => "+Inf".to_string(),
                };
                let le = prom_label_value(&le);
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_sum {}", format_f64(h.sum));
            let _ = writeln!(out, "{n}_count {cumulative}");
        }
        out
    }

    /// JSON exposition (hand-rendered; the workspace has no JSON
    /// serializer): `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {bounds, counts, sum}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        render_map(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        render_map(&mut out, self.gauges.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"histograms\": {");
        render_map(&mut out, self.histograms.iter(), |out, h| {
            out.push_str("{\"bounds\": [");
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}", format_f64(*b));
            }
            out.push_str("], \"counts\": [");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "], \"sum\": {}}}", format_f64(h.sum));
        });
        out.push_str("}\n}\n");
        out
    }
}

fn render_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    mut render: impl FnMut(&mut String, V),
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(&escape_json(name));
        out.push_str("\": ");
        render(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Prometheus metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`:
/// disallowed characters map to `_`, and a leading digit (or an empty
/// name) gets a `_` prefix so the result is always grammar-valid.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Prometheus label values allow any UTF-8 but require `\`, `"`, and
/// newline to be escaped in the text format.
fn prom_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a float so it round-trips as JSON (no `inf`/`NaN` in
/// snapshots: bounds are finite by construction and sums of finite
/// samples stay finite in practice).
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("mendel.vptree.dist_calls".into(), 42);
        s.gauges.insert("mendel.net.live_nodes".into(), 5);
        s.histograms.insert(
            "mendel.query.stage.hash.seconds".into(),
            HistogramSnapshot {
                bounds: vec![0.001, 0.01],
                counts: vec![2, 1, 0],
                sum: 0.0052,
            },
        );
        s
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let s = sample();
        assert_eq!(s.counter("mendel.vptree.dist_calls"), 42);
        assert_eq!(s.counter("absent"), 0);
        assert_eq!(s.gauge("absent"), 0);
    }

    #[test]
    fn histogram_snapshot_mean() {
        let s = sample();
        let h = s.histogram("mendel.query.stage.hash.seconds").unwrap();
        assert_eq!(h.count(), 3);
        assert!((h.mean().unwrap() - 0.0052 / 3.0).abs() < 1e-12);
        assert_eq!(HistogramSnapshot::default().mean(), None);
    }

    #[test]
    fn since_subtracts_counters_and_cells() {
        let earlier = sample();
        let mut later = sample();
        *later.counters.get_mut("mendel.vptree.dist_calls").unwrap() += 8;
        later
            .histograms
            .get_mut("mendel.query.stage.hash.seconds")
            .unwrap()
            .counts[1] += 3;
        let delta = later.since(&earlier);
        assert_eq!(delta.counter("mendel.vptree.dist_calls"), 8);
        assert_eq!(
            delta
                .histogram("mendel.query.stage.hash.seconds")
                .unwrap()
                .counts,
            vec![0, 3, 0]
        );
        // Gauges pass through as levels.
        assert_eq!(delta.gauge("mendel.net.live_nodes"), 5);
    }

    #[test]
    fn prometheus_text_is_cumulative_and_sanitized() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE mendel_vptree_dist_calls counter"));
        assert!(text.contains("mendel_vptree_dist_calls 42"));
        assert!(text.contains("mendel_net_live_nodes 5"));
        assert!(text.contains("mendel_query_stage_hash_seconds_bucket{le=\"0.001\"} 2"));
        assert!(text.contains("mendel_query_stage_hash_seconds_bucket{le=\"0.01\"} 3"));
        assert!(text.contains("mendel_query_stage_hash_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mendel_query_stage_hash_seconds_count 3"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = sample().to_json();
        assert!(json.contains("\"mendel.vptree.dist_calls\": 42"));
        assert!(json.contains("\"counts\": [2, 1, 0]"));
        let depth = json.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn prom_name_is_always_grammar_valid() {
        assert_eq!(prom_name("mendel.query.hits"), "mendel_query_hits");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name(""), "_");
        assert_eq!(prom_name("héllo wörld"), "h_llo_w_rld");
        for hostile in ["0", "{}", "a{b=\"c\"}", "\n", "1.5e3"] {
            let n = prom_name(hostile);
            let mut chars = n.chars();
            let first = chars.next().expect("non-empty");
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "{n}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "{n}"
            );
        }
    }

    #[test]
    fn prom_label_value_escapes_specials() {
        assert_eq!(prom_label_value("plain"), "plain");
        assert_eq!(prom_label_value("a\"b"), "a\\\"b");
        assert_eq!(prom_label_value("a\\b"), "a\\\\b");
        assert_eq!(prom_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.to_prometheus(), "");
        assert!(s.to_json().contains("\"counters\": {}"));
    }
}
