//! Metric-space distance functions over sequence windows (§III-B of the
//! paper).
//!
//! The vp-tree needs a *metric*: non-negative, zero-iff-equal, symmetric,
//! triangle inequality. For DNA, Hamming distance qualifies directly. For
//! proteins, the paper derives a per-residue distance matrix from BLOSUM62:
//!
//! ```text
//! M[i][j] = B[i][j] - B[i][i]      (taken as an absolute value)
//! ```
//!
//! which zeroes the diagonal and preserves the relative penalty gradient of
//! mismatches. As published, this transform is neither symmetric nor
//! guaranteed to satisfy the triangle inequality, so this module provides:
//!
//! * [`MatrixDistance::mendel`] — the paper's transform, symmetrised by
//!   taking the mean of the two one-sided values (the minimal change that
//!   restores symmetry without altering the diagonal);
//! * [`MatrixDistance::repair_metric`] — an all-pairs shortest-path closure
//!   that additionally enforces the triangle inequality (see DESIGN.md;
//!   quantified by the `ablation_metric` bench).
//!
//! Window distances compose per-residue distances with an L1 sum, which
//! preserves all metric axioms.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::matrix::ScoringMatrix;
use serde::{Deserialize, Serialize};

/// A distance function over values of type `T`.
///
/// Implementations used with the vp-tree should satisfy the metric axioms;
/// see [`MatrixDistance::is_metric`] for a checker.
pub trait Metric<T: ?Sized>: Send + Sync {
    /// Distance between `a` and `b`. Must be non-negative and symmetric.
    fn dist(&self, a: &T, b: &T) -> f32;

    /// Bounded distance: `Some(d)` iff `d = dist(a, b) ≤ bound`, `None`
    /// otherwise. The contract callers rely on (see DESIGN.md §10):
    ///
    /// * when `Some(d)` is returned, `d` is **bit-identical** to what
    ///   [`Self::dist`] would compute (implementations must accumulate in
    ///   the same order);
    /// * `None` may only be returned when the true distance strictly
    ///   exceeds `bound`.
    ///
    /// The default computes the full distance and compares — correct for
    /// every metric. Implementations whose distance is a monotone running
    /// sum (L1 window composition, Hamming counts) override this with an
    /// early-abandoning kernel that bails out as soon as the partial sum
    /// exceeds `bound`, which is where vp-tree leaf scans win their time
    /// back under a shrinking τ.
    #[inline]
    fn dist_bounded(&self, a: &T, b: &T, bound: f32) -> Option<f32> {
        let d = self.dist(a, b);
        (d <= bound).then_some(d)
    }

    /// Bounded distance from one query to *many* candidates under the
    /// same bound, appending one [`Self::dist_bounded`]-identical result
    /// per candidate to `out` (in candidate order; `out` is cleared
    /// first).
    ///
    /// This is the seam the SIMD kernels plug into (DESIGN.md §15): the
    /// serial f32 accumulation order of a single pair can never be
    /// reassociated without breaking bit-identity, but lanes *across*
    /// candidates are independent, so implementations vectorize one
    /// candidate per lane. The default simply loops `dist_bounded`,
    /// which keeps wrappers like [`Unbounded`] exact by construction.
    fn dist_bounded_many(&self, a: &T, bs: &[&T], bound: f32, out: &mut Vec<Option<f32>>) {
        out.clear();
        out.extend(bs.iter().map(|b| self.dist_bounded(a, b, bound)));
    }
}

/// Hamming distance over equal-length encoded windows — the paper's DNA
/// metric. Counts positions whose residue codes differ.
///
/// # Panics
/// Panics if the windows have different lengths; Mendel only ever compares
/// same-length inverted-index blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hamming;

impl Hamming {
    /// Hamming distance as an integer count. Dispatches to the SIMD
    /// byte-compare kernel when available ([`crate::simd`]); the count
    /// is an integer so every dispatch is exact.
    #[inline]
    pub fn count(a: &[u8], b: &[u8]) -> usize {
        crate::simd::hamming_count(a, b)
    }
}

impl Metric<[u8]> for Hamming {
    #[inline]
    fn dist(&self, a: &[u8], b: &[u8]) -> f32 {
        Hamming::count(a, b) as f32
    }

    fn dist_bounded(&self, a: &[u8], b: &[u8], bound: f32) -> Option<f32> {
        assert_eq!(a.len(), b.len(), "Hamming distance requires equal lengths");
        if crate::simd::simd_enabled() {
            // One cmpeq+movemask per 16/32 bytes beats abandoning early
            // at block-window lengths, and the integer count is exact
            // under any chunking.
            let d = crate::simd::hamming_count(a, b) as f32;
            return (d <= bound).then_some(d);
        }
        const LANE: usize = 16;
        let n = a.len();
        let mut count = 0usize;
        let mut i = 0;
        while i + LANE <= n {
            for j in i..i + LANE {
                count += usize::from(a[j] != b[j]);
            }
            if count as f32 > bound {
                return None;
            }
            i += LANE;
        }
        while i < n {
            count += usize::from(a[i] != b[i]);
            i += 1;
        }
        let d = count as f32;
        (d <= bound).then_some(d)
    }
}

/// A per-residue distance table derived from a scoring matrix, composed
/// over windows with an L1 sum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixDistance {
    /// Name recording provenance, e.g. `"mendel(BLOSUM62)"`.
    pub name: String,
    /// Alphabet whose codes index the table.
    pub alphabet: Alphabet,
    n: usize,
    d: Vec<f32>,
}

impl MatrixDistance {
    /// The paper's transform (§III-B): `M[i][j] = |B[i][j] − B[j][j]|`
    /// applied to the lower triangle and mirrored, so the matrix is
    /// symmetric with a zero diagonal.
    ///
    /// Ambiguity codes (`B`, `Z`, `X`, `*`) are given the distance of the
    /// worst canonical pair so unknown residues never look artificially
    /// close to anything.
    pub fn mendel(b: &ScoringMatrix) -> Self {
        let k = b.alphabet.canonical_size();
        let n = b.alphabet.size();
        let mut d = vec![0.0f32; n * n];
        let mut worst = 0.0f32;
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                // One-sided transforms relative to each diagonal; average to
                // symmetrise (B is symmetric, so the two sides differ only
                // through the diagonals B[i][i] vs B[j][j]).
                let via_j = (b.score(i as u8, j as u8) - b.score(j as u8, j as u8)).abs() as f32;
                let via_i = (b.score(i as u8, j as u8) - b.score(i as u8, i as u8)).abs() as f32;
                let v = 0.5 * (via_i + via_j);
                d[i * n + j] = v;
                worst = worst.max(v);
            }
        }
        // Ambiguity codes: maximally distant from everything, including
        // themselves distance 0 only when identical codes compare.
        for i in 0..n {
            for j in 0..n {
                if (i >= k || j >= k) && i != j {
                    d[i * n + j] = worst;
                }
            }
        }
        MatrixDistance {
            name: format!("mendel({})", b.name),
            alphabet: b.alphabet,
            n,
            d,
        }
    }

    /// Unit distance table: 0 on the diagonal, 1 elsewhere (Hamming as a
    /// `MatrixDistance`, useful for tests and DNA).
    pub fn unit(alphabet: Alphabet) -> Self {
        let n = alphabet.size();
        let mut d = vec![1.0f32; n * n];
        for i in 0..n {
            d[i * n + i] = 0.0;
        }
        MatrixDistance {
            name: "unit".into(),
            alphabet,
            n,
            d,
        }
    }

    /// Per-residue distance between codes `a` and `b`.
    #[inline]
    pub fn residue_dist(&self, a: u8, b: u8) -> f32 {
        debug_assert!((a as usize) < self.n && (b as usize) < self.n);
        self.d[a as usize * self.n + b as usize]
    }

    /// Enforce the triangle inequality by closing the table under
    /// shortest paths (Floyd–Warshall over residues). Returns a new table;
    /// distances can only shrink, and the diagonal stays zero.
    pub fn repair_metric(&self) -> Self {
        let n = self.n;
        let mut d = self.d.clone();
        for mid in 0..n {
            for i in 0..n {
                let dim = d[i * n + mid];
                for j in 0..n {
                    let via = dim + d[mid * n + j];
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        MatrixDistance {
            name: format!("repaired({})", self.name),
            ..MatrixDistance { d, ..self.clone() }
        }
    }

    /// Check all four metric axioms over the residue table. Returns the
    /// first violation found, or `None` if the table is a true metric.
    pub fn metric_violation(&self) -> Option<MetricViolation> {
        let n = self.n as u8;
        for i in 0..n {
            if self.residue_dist(i, i) != 0.0 {
                return Some(MetricViolation::NonZeroDiagonal(i));
            }
            for j in 0..n {
                let dij = self.residue_dist(i, j);
                if dij < 0.0 {
                    return Some(MetricViolation::Negative(i, j));
                }
                if dij != self.residue_dist(j, i) {
                    return Some(MetricViolation::Asymmetric(i, j));
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                for via in 0..n {
                    let direct = self.residue_dist(i, j);
                    let detour = self.residue_dist(i, via) + self.residue_dist(via, j);
                    if direct > detour + 1e-6 {
                        return Some(MetricViolation::Triangle(i, via, j));
                    }
                }
            }
        }
        None
    }

    /// True when the residue table satisfies every metric axiom.
    pub fn is_metric(&self) -> bool {
        self.metric_violation().is_none()
    }

    /// Largest per-residue distance in the table.
    pub fn max_residue_dist(&self) -> f32 {
        self.d.iter().copied().fold(0.0, f32::max)
    }
}

/// A concrete metric-axiom violation, reported by
/// [`MatrixDistance::metric_violation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricViolation {
    /// `d(i,i) != 0`.
    NonZeroDiagonal(u8),
    /// `d(i,j) < 0`.
    Negative(u8, u8),
    /// `d(i,j) != d(j,i)`.
    Asymmetric(u8, u8),
    /// `d(i,k) > d(i,j) + d(j,k)` for the recorded `(i, j, k)`.
    Triangle(u8, u8, u8),
}

impl Metric<[u8]> for MatrixDistance {
    /// L1 composition over a window.
    ///
    /// # Panics
    /// Panics if the windows have different lengths.
    #[inline]
    fn dist(&self, a: &[u8], b: &[u8]) -> f32 {
        assert_eq!(a.len(), b.len(), "window distance requires equal lengths");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.residue_dist(x, y))
            .sum()
    }

    /// Early-abandoning L1 kernel, unrolled over 8-residue spans of the
    /// fixed block length. Accumulation is strictly left-to-right — the
    /// identical f32 addition order as [`Metric::dist`] — so a `Some`
    /// result is bit-identical to the full kernel; the bound is only
    /// *checked* once per span to keep the bail-out off the dependency
    /// chain of the adds.
    fn dist_bounded(&self, a: &[u8], b: &[u8], bound: f32) -> Option<f32> {
        assert_eq!(a.len(), b.len(), "window distance requires equal lengths");
        // `iter::Sum<f32>` folds from -0.0 (it preserves every addend,
        // including -0.0); the kernel seeds identically so even the
        // empty window's result matches `dist` bit-for-bit.
        crate::simd::matrix_sum_scalar(&self.d, self.n, a, b, bound)
    }

    /// Multi-candidate bounded kernel: one SIMD/ILP lane per candidate,
    /// each accumulating in the identical strict left-to-right f32 order
    /// as [`Metric::dist`], so every `Some` is bit-identical to the
    /// per-pair kernel (see [`crate::simd`]).
    fn dist_bounded_many(&self, a: &[u8], bs: &[&[u8]], bound: f32, out: &mut Vec<Option<f32>>) {
        out.clear();
        crate::simd::matrix_dist_bounded_many(&self.d, self.n, a, bs, bound, out);
    }
}

/// Distance over *owned* windows (`Vec<u8>` points in a vp-tree), delegating
/// to an inner `[u8]` metric. Blanket-bridges the slice metrics above to the
/// owned block type the DHT stores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockDistance<M> {
    /// The underlying per-window metric.
    pub inner: M,
}

impl<M: Metric<[u8]>> BlockDistance<M> {
    /// Wrap a slice metric for use over owned blocks.
    pub fn new(inner: M) -> Self {
        BlockDistance { inner }
    }
}

impl<M: Metric<[u8]>> Metric<Vec<u8>> for BlockDistance<M> {
    #[inline]
    fn dist(&self, a: &Vec<u8>, b: &Vec<u8>) -> f32 {
        self.inner.dist(a, b)
    }

    #[inline]
    fn dist_bounded(&self, a: &Vec<u8>, b: &Vec<u8>, bound: f32) -> Option<f32> {
        self.inner.dist_bounded(a, b, bound)
    }

    fn dist_bounded_many(
        &self,
        a: &Vec<u8>,
        bs: &[&Vec<u8>],
        bound: f32,
        out: &mut Vec<Option<f32>>,
    ) {
        let slices: Vec<&[u8]> = bs.iter().map(|b| b.as_slice()).collect();
        self.inner.dist_bounded_many(a, &slices, bound, out)
    }
}

/// Reference wrapper that disables early abandoning: `dist_bounded` always
/// computes the full distance via the trait default. Searches through an
/// `Unbounded<M>` tree take the exact same code path as through `M` — only
/// the kernel differs — which is what the `kernel_bench` harness and the
/// bit-identity property tests compare against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Unbounded<M>(pub M);

impl<T: ?Sized, M: Metric<T>> Metric<T> for Unbounded<M> {
    #[inline]
    fn dist(&self, a: &T, b: &T) -> f32 {
        self.0.dist(a, b)
    }
    // `dist_bounded` deliberately left at the trait default: full distance,
    // then compare against the bound.
}

/// Percent identity between two equal-length windows: the fraction of
/// positions with identical residue codes (§V-B's first candidate measure).
pub fn percent_identity(a: &[u8], b: &[u8]) -> Result<f32, SeqError> {
    if a.len() != b.len() {
        return Err(SeqError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(SeqError::EmptySequence);
    }
    let matches = a.iter().zip(b).filter(|(x, y)| x == y).count();
    Ok(matches as f32 / a.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode_seq(s).unwrap()
    }

    #[test]
    fn hamming_counts_mismatches() {
        assert_eq!(Hamming::count(b"\x00\x01\x02", b"\x00\x02\x02"), 1);
        assert_eq!(
            Hamming.dist(b"\x00\x01".as_slice(), b"\x02\x03".as_slice()),
            2.0
        );
        assert_eq!(Hamming.dist(b"".as_slice(), b"".as_slice()), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_panics_on_length_mismatch() {
        Hamming::count(b"AA", b"A");
    }

    #[test]
    fn mendel_matrix_zero_diagonal_and_symmetry() {
        let m = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        for i in 0..24u8 {
            assert_eq!(m.residue_dist(i, i), 0.0, "diagonal {i}");
            for j in 0..24u8 {
                assert_eq!(m.residue_dist(i, j), m.residue_dist(j, i));
                assert!(m.residue_dist(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn mendel_matrix_preserves_penalty_gradient() {
        // L→I is a conservative substitution (BLOSUM62 +2); L→D is harsh
        // (−4). The distance must order them the same way.
        let m = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        let e = |c| Alphabet::Protein.encode(c).unwrap();
        assert!(
            m.residue_dist(e(b'L'), e(b'I')) < m.residue_dist(e(b'L'), e(b'D')),
            "conservative substitutions must be closer"
        );
    }

    #[test]
    fn mendel_matrix_wildcards_are_far() {
        let m = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        let x = Alphabet::Protein.encode(b'X').unwrap();
        let a = Alphabet::Protein.encode(b'A').unwrap();
        assert_eq!(m.residue_dist(x, a), m.max_residue_dist());
    }

    #[test]
    fn paper_matrix_violates_triangle_but_repair_fixes_it() {
        // This is the documented deviation: the published transform is not
        // quite a metric; the shortest-path closure is.
        let m = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        let r = m.repair_metric();
        assert!(r.is_metric(), "repaired table must satisfy all axioms");
        // Repair can only shrink distances.
        for i in 0..24u8 {
            for j in 0..24u8 {
                assert!(r.residue_dist(i, j) <= m.residue_dist(i, j) + 1e-6);
            }
        }
    }

    #[test]
    fn unit_distance_matches_hamming() {
        let u = MatrixDistance::unit(Alphabet::Dna);
        assert!(u.is_metric());
        let a = Alphabet::Dna.encode_seq(b"ACGT").unwrap();
        let b = Alphabet::Dna.encode_seq(b"AGGT").unwrap();
        assert_eq!(u.dist(&a[..], &b[..]), Hamming.dist(&a[..], &b[..]));
    }

    #[test]
    fn window_distance_is_l1_sum() {
        let m = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        let a = enc(b"LW");
        let b = enc(b"IV");
        let expect = m.residue_dist(a[0], b[0]) + m.residue_dist(a[1], b[1]);
        assert_eq!(m.dist(&a[..], &b[..]), expect);
    }

    #[test]
    fn block_distance_bridges_vec_points() {
        let bd = BlockDistance::new(Hamming);
        assert_eq!(bd.dist(&vec![0u8, 1], &vec![1u8, 1]), 1.0);
    }

    #[test]
    fn percent_identity_basics() {
        assert_eq!(percent_identity(b"\x00\x01", b"\x00\x01").unwrap(), 1.0);
        assert_eq!(percent_identity(b"\x00\x01", b"\x00\x02").unwrap(), 0.5);
        assert!(percent_identity(b"", b"").is_err());
        assert!(percent_identity(b"\x00", b"\x00\x01").is_err());
    }

    #[test]
    fn bounded_kernel_agrees_with_full_kernel() {
        // Deterministic pseudo-random windows across the lengths that
        // exercise the unrolled span, the remainder loop, and both.
        let m = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        let mut state = 0x9E37u32;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 16) as u8 % 20
        };
        for len in [0usize, 1, 7, 8, 9, 16, 17, 64] {
            let a: Vec<u8> = (0..len).map(|_| next()).collect();
            let b: Vec<u8> = (0..len).map(|_| next()).collect();
            let full = m.dist(&a[..], &b[..]);
            for bound in [0.0, full * 0.5, full, full + 0.1, f32::INFINITY] {
                match m.dist_bounded(&a[..], &b[..], bound) {
                    Some(d) => {
                        assert_eq!(d.to_bits(), full.to_bits(), "len {len} bound {bound}");
                        assert!(d <= bound);
                    }
                    None => assert!(full > bound, "len {len} bound {bound}"),
                }
            }
            let hfull = Hamming.dist(&a[..], &b[..]);
            for bound in [0.0, hfull - 1.0, hfull, f32::INFINITY] {
                match Hamming.dist_bounded(&a[..], &b[..], bound) {
                    Some(d) => assert_eq!(d.to_bits(), hfull.to_bits()),
                    None => assert!(hfull > bound),
                }
            }
        }
    }

    #[test]
    fn bounded_kernel_abandons_over_bound() {
        let m = MatrixDistance::unit(Alphabet::Dna);
        let a = vec![0u8; 32];
        let b = vec![1u8; 32]; // distance 32
        assert_eq!(m.dist_bounded(&a[..], &b[..], 31.0), None);
        assert_eq!(m.dist_bounded(&a[..], &b[..], 32.0), Some(32.0));
        assert_eq!(Hamming.dist_bounded(&a[..], &b[..], 10.0), None);
    }

    #[test]
    fn unbounded_wrapper_never_abandons_early_but_respects_bound() {
        let m = Unbounded(MatrixDistance::unit(Alphabet::Dna));
        let a = vec![0u8; 16];
        let b = vec![1u8; 16];
        assert_eq!(m.dist(&a[..], &b[..]), 16.0);
        assert_eq!(m.dist_bounded(&a[..], &b[..], 15.9), None);
        assert_eq!(m.dist_bounded(&a[..], &b[..], 16.0), Some(16.0));
    }

    #[test]
    fn block_distance_delegates_bounded_kernel() {
        let bd = BlockDistance::new(Hamming);
        assert_eq!(bd.dist_bounded(&vec![0u8, 1], &vec![1u8, 1], 0.5), None);
        assert_eq!(
            bd.dist_bounded(&vec![0u8, 1], &vec![1u8, 1], 1.0),
            Some(1.0)
        );
    }

    #[test]
    fn metric_violation_reports_diagonal() {
        let mut u = MatrixDistance::unit(Alphabet::Dna);
        u.d[0] = 0.5;
        assert_eq!(
            u.metric_violation(),
            Some(MetricViolation::NonZeroDiagonal(0))
        );
    }
}
