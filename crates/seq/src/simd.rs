//! Explicit SIMD distance kernels behind runtime feature detection.
//!
//! Two kernels live here, both slotted behind the [`crate::Metric`]
//! contract (DESIGN.md §15) so every caller keeps bit-identical results:
//!
//! * **Hamming** — byte-compare kernels over 16-byte (SSE2, the x86_64
//!   baseline) or 32-byte (AVX2, runtime-detected) chunks using
//!   `cmpeq` + `movemask` + popcount. The result is an integer mismatch
//!   count, so any chunking is exact; no floating-point order concerns.
//! * **MatrixDistance, multi-candidate** — the L1 window sum is a
//!   *serial* f32 dependency chain (`Sum<f32>` order, seeded at `-0.0`)
//!   that must not be reassociated, so within-pair vectorization is
//!   ruled out. Instead the kernel parallelizes *across candidates*:
//!   each lane owns one candidate window and accumulates
//!   `table[q[pos] * n + c[pos]]` in strict position order — exactly the
//!   per-pair chain. The production dispatch runs four independent
//!   scalar accumulation chains (instruction-level parallelism breaks
//!   the 4-cycle add-latency chain the serial kernel is bound by); an
//!   eight-lane AVX2 `vgatherdps` variant exists and is exactness-tested
//!   but is NOT dispatched — measured on the target hardware the gather
//!   is 1.7–2× *slower* than the serial chain (`vgatherdps` decodes to
//!   per-lane loads without the early-abandon asymmetry win; see
//!   BENCH_pr8_qps.json ablations). A periodic all-lanes-over-bound
//!   check keeps the early-abandoning behaviour of the scalar bounded
//!   kernel: since residue distances are non-negative the partial sums
//!   are monotone, so once every lane exceeds the bound every final
//!   distance would too, and `None` for all lanes is exact.
//!
//! The `set_simd_enabled(false)` switch forces every dispatch back to
//! the scalar kernels; `qps_bench` and `kernel_bench` use it for the
//! scalar-vs-SIMD ablations and CI asserts both paths agree bit-for-bit.

use std::sync::atomic::{AtomicBool, Ordering};

/// Global kill switch for the vectorized kernels (benchmark ablations,
/// CI agreement checks). Defaults to enabled.
static SIMD_ENABLED: AtomicBool = AtomicBool::new(true);

/// True when SIMD dispatch is enabled (the default).
#[inline]
pub fn simd_enabled() -> bool {
    // audit:ordering(Relaxed): independent on/off flag read on the hot path; no other memory is published through it and both settings compute bit-identical results
    SIMD_ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable the SIMD kernels process-wide; returns the
/// previous setting. Both settings are bit-identical — this exists for
/// ablation benchmarks and the CI agreement check.
pub fn set_simd_enabled(on: bool) -> bool {
    // audit:ordering(Relaxed): flag flip for ablations; the only reader is the dispatch check above and either value is correct
    SIMD_ENABLED.swap(on, Ordering::Relaxed)
}

/// Name of the widest kernel the running CPU dispatches to, honouring
/// the kill switch. Reported by benches and `mendel metrics`.
pub fn active_kernel() -> &'static str {
    if !simd_enabled() {
        return "scalar";
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            "avx2"
        } else {
            "sse2"
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "scalar"
    }
}

/// Hamming mismatch count with SIMD dispatch. Exact — the count is an
/// integer, so the chunked kernels agree with the scalar loop on every
/// input.
///
/// # Panics
/// Panics if the slices have different lengths (same contract as
/// [`crate::Hamming::count`]).
#[inline]
pub fn hamming_count(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "Hamming distance requires equal lengths");
    if !simd_enabled() {
        return hamming_scalar(a, b);
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just checked at runtime.
            return unsafe { x86::hamming_avx2(a, b) };
        }
        return x86::hamming_sse2(a, b);
    }
    #[cfg(not(target_arch = "x86_64"))]
    hamming_scalar(a, b)
}

/// Portable scalar mismatch count (the pre-SIMD kernel).
#[inline]
pub(crate) fn hamming_scalar(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Multi-candidate bounded L1 matrix kernel: for each candidate window
/// `cands[j]`, compute `sum_pos table[q[pos] * n + cands[j][pos]]` in
/// strict position order (seeded at `-0.0`, the `iter::Sum<f32>` fold)
/// and report `Some(sum)` iff `sum <= bound`. Appends one result per
/// candidate to `out`.
///
/// `table` is the row-major `n × n` residue table. Falls back to the
/// per-pair scalar kernel when SIMD is disabled, when a residue code is
/// out of table range (preserving the scalar panic-on-garbage
/// behaviour), or on non-x86_64 targets without the ILP win.
///
/// # Panics
/// Panics if any candidate length differs from the query length, or if
/// a residue code indexes outside the table (both identical to the
/// scalar kernel's behaviour).
pub(crate) fn matrix_dist_bounded_many(
    table: &[f32],
    n: usize,
    q: &[u8],
    cands: &[&[u8]],
    bound: f32,
    out: &mut Vec<Option<f32>>,
) {
    debug_assert_eq!(table.len(), n * n);
    for c in cands {
        assert_eq!(q.len(), c.len(), "window distance requires equal lengths");
    }
    if !simd_enabled() || q.is_empty() || !codes_in_range(q, n) {
        scalar_tail(table, n, q, cands, bound, out);
        return;
    }
    let mut rest = cands;
    // Four independent scalar accumulation chains: same per-lane f32
    // order as the serial kernel, ~4× the instruction-level parallelism.
    // The AVX2 gather variant (`x86::matrix_sums_avx2_x8`) is
    // deliberately not dispatched: measured on the target hardware
    // `vgatherdps` over the residue table runs 1.7–2× slower than these
    // chains — the gather decodes to per-lane loads, and grouping eight
    // candidates forfeits most of the per-candidate early-abandon win.
    while rest.len() >= 4 {
        let (head, tail) = rest.split_at(4);
        let group: [&[u8]; 4] = [head[0], head[1], head[2], head[3]];
        let sums = matrix_sums_ilp_x4(table, n, q, &group, bound);
        out.extend(sums.iter().map(|&s| (s <= bound).then_some(s)));
        rest = tail;
    }
    scalar_tail(table, n, q, rest, bound, out);
}

/// Per-pair scalar bounded kernel over a candidate slice — byte-for-byte
/// the `MatrixDistance::dist_bounded` loop, used for remainders and
/// fallback.
fn scalar_tail(
    table: &[f32],
    n: usize,
    q: &[u8],
    cands: &[&[u8]],
    bound: f32,
    out: &mut Vec<Option<f32>>,
) {
    for c in cands {
        out.push(matrix_sum_scalar(table, n, q, c, bound));
    }
}

/// The scalar early-abandoning kernel (8-unrolled, strict left-to-right,
/// `-0.0` seed — see `MatrixDistance::dist_bounded`).
pub(crate) fn matrix_sum_scalar(
    table: &[f32],
    n: usize,
    q: &[u8],
    c: &[u8],
    bound: f32,
) -> Option<f32> {
    const LANE: usize = 8;
    let len = q.len();
    let at = |x: u8, y: u8| table[x as usize * n + y as usize];
    let mut sum = -0.0f32;
    let mut i = 0;
    while i + LANE <= len {
        sum += at(q[i], c[i]);
        sum += at(q[i + 1], c[i + 1]);
        sum += at(q[i + 2], c[i + 2]);
        sum += at(q[i + 3], c[i + 3]);
        sum += at(q[i + 4], c[i + 4]);
        sum += at(q[i + 5], c[i + 5]);
        sum += at(q[i + 6], c[i + 6]);
        sum += at(q[i + 7], c[i + 7]);
        if sum > bound {
            return None;
        }
        i += LANE;
    }
    while i < len {
        sum += at(q[i], c[i]);
        i += 1;
    }
    (sum <= bound).then_some(sum)
}

/// True when every residue code indexes inside an `n × n` table.
#[inline]
fn codes_in_range(w: &[u8], n: usize) -> bool {
    w.iter().all(|&b| (b as usize) < n)
}

/// Four-lane scalar kernel: one independent accumulator per candidate,
/// each advancing in strict position order. Every 16 positions, if all
/// four partial sums exceed the bound the remaining positions are
/// skipped — monotone sums make the all-`None` verdict exact.
fn matrix_sums_ilp_x4(table: &[f32], n: usize, q: &[u8], c: &[&[u8]; 4], bound: f32) -> [f32; 4] {
    const CHECK: usize = 16;
    let at = |x: u8, y: u8| table[x as usize * n + y as usize];
    let (mut s0, mut s1, mut s2, mut s3) = (-0.0f32, -0.0f32, -0.0f32, -0.0f32);
    let len = q.len();
    let mut i = 0;
    while i + CHECK <= len {
        for pos in i..i + CHECK {
            let x = q[pos];
            s0 += at(x, c[0][pos]);
            s1 += at(x, c[1][pos]);
            s2 += at(x, c[2][pos]);
            s3 += at(x, c[3][pos]);
        }
        if s0 > bound && s1 > bound && s2 > bound && s3 > bound {
            return [f32::INFINITY; 4];
        }
        i += CHECK;
    }
    while i < len {
        let x = q[i];
        s0 += at(x, c[0][i]);
        s1 += at(x, c[1][i]);
        s2 += at(x, c[2][i]);
        s3 += at(x, c[3][i]);
        i += 1;
    }
    [s0, s1, s2, s3]
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// 16-byte SSE2 mismatch count. SSE2 is part of the x86_64 baseline,
    /// so no runtime check is needed.
    pub(super) fn hamming_sse2(a: &[u8], b: &[u8]) -> usize {
        let len = a.len();
        let mut total = 0usize;
        let mut i = 0;
        while i + 16 <= len {
            // SAFETY: `i + 16 <= len` bounds both unaligned 16-byte
            // loads; SSE2 is statically available on x86_64.
            unsafe {
                let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
                let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
                let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32;
                total += 16 - (eq & 0xFFFF).count_ones() as usize;
            }
            i += 16;
        }
        while i < len {
            total += usize::from(a[i] != b[i]);
            i += 1;
        }
        total
    }

    /// 32-byte AVX2 mismatch count.
    ///
    /// # Safety
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn hamming_avx2(a: &[u8], b: &[u8]) -> usize {
        let len = a.len();
        let mut total = 0usize;
        let mut i = 0;
        while i + 32 <= len {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
            total += 32 - eq.count_ones() as usize;
            i += 32;
        }
        if i < len {
            total += hamming_sse2(&a[i..], &b[i..]);
        }
        total
    }

    /// Eight-lane AVX2 gather kernel: lane `j` accumulates candidate
    /// `c[j]`'s residue distances in strict position order, seeded at
    /// `-0.0` — bit-identical per lane to the serial scalar sum. Every
    /// 8 positions an all-lanes-over-bound test short-circuits the rest
    /// (monotone sums make the all-abandon verdict exact; lanes are
    /// reported as `+inf`, which the caller maps to `None`).
    ///
    /// # Safety
    /// The caller must have verified AVX2 support at runtime and that
    /// every residue code of `q` and each `c[j]` is `< n`, so every
    /// gathered index lies inside the `n × n` table.
    // Kept exactness-tested but out of the production dispatch: the
    // gather is slower than the four-chain ILP kernel on the target
    // hardware (see the module docs).
    #[cfg_attr(not(test), allow(dead_code))]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matrix_sums_avx2_x8(
        table: &[f32],
        n: usize,
        q: &[u8],
        c: &[&[u8]; 8],
        bound: f32,
    ) -> [f32; 8] {
        const CHECK: usize = 8;
        let len = q.len();
        let nn = n as i32;
        let base = table.as_ptr();
        let mut acc = _mm256_set1_ps(-0.0);
        // `bound` can be +inf (unbounded search): the GT compare is then
        // always false and the kernel never bails, as intended.
        let vbound = _mm256_set1_ps(bound);
        let mut i = 0;
        while i + CHECK <= len {
            for pos in i..i + CHECK {
                let row = q[pos] as i32 * nn;
                let idx = _mm256_set_epi32(
                    row + c[7][pos] as i32,
                    row + c[6][pos] as i32,
                    row + c[5][pos] as i32,
                    row + c[4][pos] as i32,
                    row + c[3][pos] as i32,
                    row + c[2][pos] as i32,
                    row + c[1][pos] as i32,
                    row + c[0][pos] as i32,
                );
                acc = _mm256_add_ps(acc, _mm256_i32gather_ps(base, idx, 4));
            }
            let over = _mm256_movemask_ps(_mm256_cmp_ps(acc, vbound, _CMP_GT_OQ));
            if over == 0xFF {
                return [f32::INFINITY; 8];
            }
            i += CHECK;
        }
        while i < len {
            let row = q[i] as i32 * nn;
            let idx = _mm256_set_epi32(
                row + c[7][i] as i32,
                row + c[6][i] as i32,
                row + c[5][i] as i32,
                row + c[4][i] as i32,
                row + c[3][i] as i32,
                row + c[2][i] as i32,
                row + c[1][i] as i32,
                row + c[0][i] as i32,
            );
            acc = _mm256_add_ps(acc, _mm256_i32gather_ps(base, idx, 4));
            i += 1;
        }
        let mut out = [0.0f32; 8];
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows(len: usize, n: usize, seed: u32) -> (Vec<u8>, Vec<u8>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            ((state >> 16) as usize % n) as u8
        };
        let a: Vec<u8> = (0..len).map(|_| next()).collect();
        let b: Vec<u8> = (0..len).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn hamming_kernels_agree_with_scalar() {
        // Exercise the vector kernels directly (no global toggling, so
        // tests never race on the process-wide switch) across lengths
        // hitting every chunk boundary and remainder.
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 64, 100] {
            let (a, b) = windows(len, 4, 0xBEEF ^ len as u32);
            let want = hamming_scalar(&a, &b);
            assert_eq!(hamming_count(&a, &b), want, "len {len}");
            #[cfg(target_arch = "x86_64")]
            {
                assert_eq!(x86::hamming_sse2(&a, &b), want, "len {len} sse2");
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 presence just checked.
                    assert_eq!(unsafe { x86::hamming_avx2(&a, &b) }, want, "len {len} avx2");
                }
            }
        }
    }

    #[test]
    fn multi_candidate_kernel_is_bit_identical_to_scalar() {
        // n = 24 mimics the protein table; random tables exercise real
        // f32 rounding so bit-identity is meaningful.
        let n = 24usize;
        let mut state = 0xACE1u32;
        let mut nextf = move || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (state >> 16) as f32 / 7001.0
        };
        let mut table = vec![0.0f32; n * n];
        for (i, v) in table.iter_mut().enumerate() {
            *v = if i / n == i % n { 0.0 } else { nextf() };
        }
        for len in [1usize, 7, 8, 16, 23, 64] {
            let (q, _) = windows(len, n, 77 + len as u32);
            let cands: Vec<Vec<u8>> = (0..13).map(|j| windows(len, n, 1000 + j).0).collect();
            let refs: Vec<&[u8]> = cands.iter().map(|c| c.as_slice()).collect();
            let exact: Vec<f32> = refs
                .iter()
                .map(|c| {
                    q.iter()
                        .zip(c.iter())
                        .map(|(&x, &y)| table[x as usize * n + y as usize])
                        .sum()
                })
                .collect();
            for bound in [0.0, exact[0] * 0.5, exact[0], f32::INFINITY] {
                let mut out = Vec::new();
                matrix_dist_bounded_many(&table, n, &q, &refs, bound, &mut out);
                assert_eq!(out.len(), refs.len());
                for (j, res) in out.iter().enumerate() {
                    match res {
                        Some(d) => {
                            assert_eq!(d.to_bits(), exact[j].to_bits(), "len {len} cand {j}");
                            assert!(*d <= bound);
                        }
                        None => assert!(exact[j] > bound, "len {len} cand {j} bound {bound}"),
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_range_codes_fall_back_to_scalar_panic_path() {
        let n = 4usize;
        let table = vec![0.0f32; n * n];
        let q = vec![1u8, 2];
        let bad = vec![9u8, 9];
        let refs: Vec<&[u8]> = vec![&bad];
        let caught = std::panic::catch_unwind(|| {
            let mut out = Vec::new();
            matrix_dist_bounded_many(&table, n, &q, &refs, f32::INFINITY, &mut out);
        });
        assert!(caught.is_err(), "out-of-range code must panic like scalar");
    }

    #[test]
    fn toggle_reports_previous_state() {
        // The only test that flips the global switch; every other test
        // asserts values that are identical under either dispatch.
        let prev = set_simd_enabled(false);
        assert_eq!(active_kernel(), "scalar");
        assert!(!set_simd_enabled(prev));
        assert!(matches!(active_kernel(), "avx2" | "sse2" | "scalar"));
    }

    #[test]
    fn ilp_lanes_match_serial_chains() {
        let n = 8usize;
        let mut table = vec![0.0f32; n * n];
        for (i, v) in table.iter_mut().enumerate() {
            *v = if i / n == i % n {
                0.0
            } else {
                (i as f32).sqrt() / 3.0
            };
        }
        let (q, _) = windows(29, n, 5);
        let cands: Vec<Vec<u8>> = (0..4).map(|j| windows(29, n, 60 + j).0).collect();
        let group: [&[u8]; 4] = [&cands[0], &cands[1], &cands[2], &cands[3]];
        let sums = matrix_sums_ilp_x4(&table, n, &q, &group, f32::INFINITY);
        for (j, c) in group.iter().enumerate() {
            let serial = matrix_sum_scalar(&table, n, &q, c, f32::INFINITY).unwrap();
            assert_eq!(sums[j].to_bits(), serial.to_bits(), "lane {j}");
        }
    }
}
