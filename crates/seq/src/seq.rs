//! Encoded sequences and the id-addressed sequence store.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable identifier of a sequence within a [`SeqStore`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SeqId(pub u32);

impl SeqId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SeqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}

/// A single encoded sequence: residue codes plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequence {
    /// Identifier assigned by the owning store (or `SeqId(0)` when detached).
    pub id: SeqId,
    /// Accession / name, e.g. `sp|P69905|HBA_HUMAN`.
    pub name: String,
    /// Free-text description from the FASTA header.
    pub description: String,
    /// Which alphabet `residues` is encoded in.
    pub alphabet: Alphabet,
    /// Residue codes (see [`Alphabet::encode`]).
    pub residues: Vec<u8>,
}

impl Sequence {
    /// Build a sequence from ASCII text, encoding it into residue codes.
    pub fn from_ascii(
        name: impl Into<String>,
        alphabet: Alphabet,
        ascii: &[u8],
    ) -> Result<Self, SeqError> {
        Ok(Sequence {
            id: SeqId(0),
            name: name.into(),
            description: String::new(),
            alphabet,
            residues: alphabet.encode_seq(ascii)?,
        })
    }

    /// Build a sequence directly from residue codes (caller guarantees the
    /// codes are valid for `alphabet`).
    pub fn from_codes(name: impl Into<String>, alphabet: Alphabet, codes: Vec<u8>) -> Self {
        debug_assert!(
            codes.iter().all(|&c| (c as usize) < alphabet.size()),
            "residue code out of range for {alphabet:?}"
        );
        Sequence {
            id: SeqId(0),
            name: name.into(),
            description: String::new(),
            alphabet,
            residues: codes,
        }
    }

    /// Number of residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when the sequence holds no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Decode back to ASCII text.
    pub fn to_ascii(&self) -> String {
        self.alphabet.decode_seq(&self.residues)
    }

    /// A window `[start, start+len)` of residue codes; `None` if out of range.
    pub fn window(&self, start: usize, len: usize) -> Option<&[u8]> {
        self.residues.get(start..start.checked_add(len)?)
    }
}

/// An append-only, id-addressed collection of sequences — the "reference
/// database" role in the paper (NCBI `nr` stood in by synthetic data).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeqStore {
    seqs: Vec<Sequence>,
    #[serde(skip)]
    by_name: HashMap<String, SeqId>,
}

impl SeqStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a sequence, assigning and returning its [`SeqId`].
    ///
    /// Duplicate names are allowed (NCBI `nr` has them); name lookup returns
    /// the *first* sequence inserted under a name.
    pub fn insert(&mut self, mut seq: Sequence) -> SeqId {
        let id = SeqId(self.seqs.len() as u32);
        seq.id = id;
        self.by_name.entry(seq.name.clone()).or_insert(id);
        self.seqs.push(seq);
        id
    }

    /// Insert many sequences, returning the assigned ids in order.
    pub fn insert_batch(&mut self, seqs: impl IntoIterator<Item = Sequence>) -> Vec<SeqId> {
        seqs.into_iter().map(|s| self.insert(s)).collect()
    }

    /// Fetch by id.
    #[inline]
    pub fn get(&self, id: SeqId) -> Option<&Sequence> {
        self.seqs.get(id.index())
    }

    /// Fetch by name (first match).
    pub fn get_by_name(&self, name: &str) -> Option<&Sequence> {
        self.by_name.get(name).and_then(|&id| self.get(id))
    }

    /// Number of sequences stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when no sequences are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Total residue count across all sequences.
    pub fn total_residues(&self) -> usize {
        self.seqs.iter().map(Sequence::len).sum()
    }

    /// Iterate over all sequences in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Sequence> {
        self.seqs.iter()
    }

    /// Rebuild the name index (needed after deserialization, which skips it).
    pub fn rebuild_name_index(&mut self) {
        self.by_name.clear();
        for s in &self.seqs {
            self.by_name.entry(s.name.clone()).or_insert(s.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protein(name: &str, ascii: &[u8]) -> Sequence {
        Sequence::from_ascii(name, Alphabet::Protein, ascii).unwrap()
    }

    #[test]
    fn sequence_roundtrip() {
        let s = protein("p1", b"MARNDW");
        assert_eq!(s.len(), 6);
        assert_eq!(s.to_ascii(), "MARNDW");
    }

    #[test]
    fn window_bounds() {
        let s = protein("p1", b"MARNDW");
        assert_eq!(s.window(0, 3).map(|w| w.len()), Some(3));
        assert_eq!(s.window(4, 2).map(|w| w.len()), Some(2));
        assert!(s.window(4, 3).is_none());
        assert!(s.window(7, 0).is_none());
        assert!(s.window(usize::MAX, 2).is_none(), "overflow must not panic");
    }

    #[test]
    fn store_assigns_sequential_ids() {
        let mut st = SeqStore::new();
        let a = st.insert(protein("a", b"MA"));
        let b = st.insert(protein("b", b"MR"));
        assert_eq!(a, SeqId(0));
        assert_eq!(b, SeqId(1));
        assert_eq!(st.get(b).unwrap().name, "b");
        assert_eq!(st.len(), 2);
        assert_eq!(st.total_residues(), 4);
    }

    #[test]
    fn store_name_lookup_prefers_first_duplicate() {
        let mut st = SeqStore::new();
        let first = st.insert(protein("dup", b"MA"));
        st.insert(protein("dup", b"MRRR"));
        assert_eq!(st.get_by_name("dup").unwrap().id, first);
    }

    #[test]
    fn insert_batch_preserves_order() {
        let mut st = SeqStore::new();
        let ids = st.insert_batch(vec![protein("a", b"M"), protein("b", b"MM")]);
        assert_eq!(ids, vec![SeqId(0), SeqId(1)]);
    }

    #[test]
    fn rebuild_name_index_restores_lookup() {
        let mut st = SeqStore::new();
        st.insert(protein("x", b"MA"));
        st.by_name.clear();
        assert!(st.get_by_name("x").is_none());
        st.rebuild_name_index();
        assert!(st.get_by_name("x").is_some());
    }

    #[test]
    fn empty_store() {
        let st = SeqStore::new();
        assert!(st.is_empty());
        assert_eq!(st.total_residues(), 0);
        assert!(st.get(SeqId(0)).is_none());
    }
}
