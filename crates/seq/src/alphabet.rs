//! Residue alphabets and compact encodings.
//!
//! Mendel stores sequences as compact residue *codes* (`u8`), not ASCII.
//! The protein code order matches the NCBI scoring-matrix row order
//! `ARNDCQEGHILKMFPSTWYVBZX*` so a residue code doubles as a matrix index.
//! DNA uses `ACGTN`.

use crate::error::SeqError;
use serde::{Deserialize, Serialize};

/// ASCII symbols of the DNA alphabet in code order (`N` = any base).
pub const DNA_SYMBOLS: &[u8; 5] = b"ACGTN";

/// ASCII symbols of the protein alphabet in NCBI matrix order.
///
/// The first 20 are the canonical amino acids; `B` (Asx), `Z` (Glx) are
/// ambiguity codes, `X` is any residue and `*` a translation stop.
pub const PROTEIN_SYMBOLS: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// Code of the protein wildcard residue `X`.
pub const PROTEIN_X: u8 = 22;
/// Code of the DNA wildcard base `N`.
pub const DNA_N: u8 = 4;

/// A residue alphabet: DNA (`ACGTN`) or protein (NCBI 24-letter order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Alphabet {
    /// Nucleotides `A`, `C`, `G`, `T` plus the wildcard `N`.
    Dna,
    /// The 20 canonical amino acids plus `B`, `Z`, `X`, `*`.
    Protein,
}

impl Alphabet {
    /// Total number of residue codes, including ambiguity codes.
    #[inline]
    pub fn size(self) -> usize {
        match self {
            Alphabet::Dna => DNA_SYMBOLS.len(),
            Alphabet::Protein => PROTEIN_SYMBOLS.len(),
        }
    }

    /// Number of *canonical* (unambiguous) residues: 4 for DNA, 20 for protein.
    #[inline]
    pub fn canonical_size(self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 20,
        }
    }

    /// The wildcard code (`N` for DNA, `X` for protein).
    #[inline]
    pub fn wildcard(self) -> u8 {
        match self {
            Alphabet::Dna => DNA_N,
            Alphabet::Protein => PROTEIN_X,
        }
    }

    /// The ASCII symbol table in code order.
    #[inline]
    pub fn symbols(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => DNA_SYMBOLS,
            Alphabet::Protein => PROTEIN_SYMBOLS,
        }
    }

    /// Encode one ASCII byte into a residue code. Case-insensitive.
    ///
    /// Unknown-but-plausible IUPAC bytes map to the wildcard (`N`/`X`) so
    /// real-world FASTA with rare ambiguity codes still loads; genuinely
    /// non-alphabetic bytes return `None`.
    pub fn encode(self, byte: u8) -> Option<u8> {
        let up = byte.to_ascii_uppercase();
        match self {
            Alphabet::Dna => match up {
                b'A' => Some(0),
                b'C' => Some(1),
                b'G' => Some(2),
                b'T' | b'U' => Some(3),
                b'N' | b'R' | b'Y' | b'S' | b'W' | b'K' | b'M' | b'B' | b'D' | b'H' | b'V' => {
                    Some(DNA_N)
                }
                _ => None,
            },
            Alphabet::Protein => match up {
                b'*' => Some(23),
                b'U' | b'O' | b'J' => Some(PROTEIN_X),
                c if c.is_ascii_uppercase() => PROTEIN_SYMBOLS
                    .iter()
                    .position(|&s| s == c)
                    .map(|i| i as u8),
                _ => None,
            },
        }
    }

    /// Decode a residue code back to its ASCII symbol.
    ///
    /// # Panics
    /// Panics if `code` is out of range for the alphabet (that indicates a
    /// corrupted sequence, never ordinary data).
    #[inline]
    pub fn decode(self, code: u8) -> u8 {
        self.symbols()[code as usize]
    }

    /// Encode an ASCII byte string, failing on the first invalid byte.
    pub fn encode_seq(self, bytes: &[u8]) -> Result<Vec<u8>, SeqError> {
        bytes
            .iter()
            .enumerate()
            .map(|(position, &byte)| {
                self.encode(byte)
                    .ok_or(SeqError::InvalidResidue { byte, position })
            })
            .collect()
    }

    /// Decode a slice of residue codes into an ASCII string.
    pub fn decode_seq(self, codes: &[u8]) -> String {
        codes.iter().map(|&c| char::from(self.decode(c))).collect()
    }

    /// True if `code` is a canonical residue (not a wildcard/ambiguity code).
    #[inline]
    pub fn is_canonical(self, code: u8) -> bool {
        (code as usize) < self.canonical_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_roundtrip() {
        let enc = Alphabet::Dna.encode_seq(b"ACGTN").unwrap();
        assert_eq!(enc, vec![0, 1, 2, 3, 4]);
        assert_eq!(Alphabet::Dna.decode_seq(&enc), "ACGTN");
    }

    #[test]
    fn dna_lowercase_and_uracil() {
        assert_eq!(Alphabet::Dna.encode(b'a'), Some(0));
        assert_eq!(Alphabet::Dna.encode(b'u'), Some(3));
        assert_eq!(Alphabet::Dna.encode(b'U'), Some(3));
    }

    #[test]
    fn dna_iupac_ambiguity_maps_to_n() {
        for &b in b"RYSWKMBDHVryswkmbdhv" {
            assert_eq!(
                Alphabet::Dna.encode(b),
                Some(DNA_N),
                "byte {}",
                char::from(b)
            );
        }
    }

    #[test]
    fn dna_rejects_garbage() {
        assert_eq!(Alphabet::Dna.encode(b'!'), None);
        assert_eq!(Alphabet::Dna.encode(b'1'), None);
        assert_eq!(Alphabet::Dna.encode(b' '), None);
    }

    #[test]
    fn protein_roundtrip_full_symbol_table() {
        let enc = Alphabet::Protein.encode_seq(PROTEIN_SYMBOLS).unwrap();
        let expect: Vec<u8> = (0..24).collect();
        assert_eq!(enc, expect);
        assert_eq!(
            Alphabet::Protein.decode_seq(&enc).as_bytes(),
            PROTEIN_SYMBOLS
        );
    }

    #[test]
    fn protein_rare_residues_map_to_x() {
        for &b in b"UOJuoj" {
            assert_eq!(Alphabet::Protein.encode(b), Some(PROTEIN_X));
        }
    }

    #[test]
    fn protein_rejects_digits_and_punct() {
        for &b in b"0- .@" {
            assert_eq!(Alphabet::Protein.encode(b), None, "byte {}", char::from(b));
        }
    }

    #[test]
    fn encode_seq_reports_position_of_bad_byte() {
        let err = Alphabet::Protein.encode_seq(b"ARN!D").unwrap_err();
        assert_eq!(
            err,
            SeqError::InvalidResidue {
                byte: b'!',
                position: 3
            }
        );
    }

    #[test]
    fn canonical_sizes() {
        assert_eq!(Alphabet::Dna.canonical_size(), 4);
        assert_eq!(Alphabet::Protein.canonical_size(), 20);
        assert!(Alphabet::Dna.is_canonical(3));
        assert!(!Alphabet::Dna.is_canonical(DNA_N));
        assert!(Alphabet::Protein.is_canonical(19));
        assert!(!Alphabet::Protein.is_canonical(PROTEIN_X));
    }

    #[test]
    fn wildcards() {
        assert_eq!(Alphabet::Dna.decode(Alphabet::Dna.wildcard()), b'N');
        assert_eq!(Alphabet::Protein.decode(Alphabet::Protein.wildcard()), b'X');
    }
}
