//! # mendel-seq — sequence substrate for the Mendel framework
//!
//! This crate provides everything Mendel (IPDPS 2016) needs to talk about
//! biological sequences:
//!
//! * [`Alphabet`] — DNA and protein alphabets with compact residue codes,
//! * [`Sequence`] / [`SeqStore`] — encoded sequences and an id-addressed store,
//! * [`fasta`] — FASTA parsing and writing,
//! * [`matrix`] — alignment scoring matrices (BLOSUM62, DNA match/mismatch,
//!   NCBI-format parser),
//! * [`dist`] — metric-space distance functions: Hamming for DNA and the
//!   Mendel distance matrix derived from BLOSUM62 (§III-B of the paper),
//!   with an optional *metric repair* that restores the triangle inequality,
//!   plus bounded (early-abandoning) kernel variants for vp-tree searches,
//! * [`arena`] — shared sequence backing buffers and zero-copy window
//!   views, so overlapping inverted-index blocks store their sequence once,
//! * [`gen`] — deterministic synthetic dataset generators standing in for
//!   NCBI `nr` and the `s_aureus` / `e_coli` query sets,
//! * [`stats`] — residue composition statistics (Swiss-Prot background
//!   frequencies, entropy, composition counting).
//!
//! Everything is deterministic under a caller-supplied RNG so experiments
//! reproduce bit-for-bit.

pub mod alphabet;
pub mod arena;
pub mod dist;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod gen;
pub mod matrix;
pub mod pack;
pub mod seq;
pub mod simd;
pub mod stats;
pub mod translate;

pub use alphabet::Alphabet;
pub use arena::{SeqArena, WindowView};
pub use dist::{BlockDistance, Hamming, MatrixDistance, Metric, Unbounded};
pub use error::SeqError;
pub use fasta::{parse_fasta, parse_fasta_sequences, write_fasta, FastaRecord};
pub use fastq::{parse_fastq, FastqRecord};
pub use matrix::ScoringMatrix;
pub use pack::PackedDna;
pub use seq::{SeqId, SeqStore, Sequence};
pub use translate::{reverse_complement, six_frames, translate};
