//! FASTQ parsing — the format next-generation sequencers actually emit
//! (the paper's §I-A motivation: "Next-generation sequencers are capable
//! of producing large quantities of sequence data").
//!
//! Supports the standard 4-line record form with Phred+33 qualities,
//! plus quality-based 3' trimming, the usual first preprocessing step
//! before reads are mapped.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::seq::Sequence;
use serde::{Deserialize, Serialize};

/// One FASTQ read: name, raw bases, per-base Phred quality scores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastqRecord {
    /// Read identifier (after `@`, first token).
    pub name: String,
    /// Raw base characters (unencoded; may contain `N`).
    pub bases: Vec<u8>,
    /// Phred quality scores (already offset-corrected, so 0–93).
    pub quality: Vec<u8>,
}

impl FastqRecord {
    /// Mean Phred quality of the read (0 for an empty read).
    pub fn mean_quality(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        self.quality.iter().map(|&q| q as f64).sum::<f64>() / self.quality.len() as f64
    }

    /// Trim the 3' end at the first position where quality drops below
    /// `min_q`, returning the kept prefix length.
    pub fn trim_tail(&mut self, min_q: u8) -> usize {
        let keep = self
            .quality
            .iter()
            .position(|&q| q < min_q)
            .unwrap_or(self.quality.len());
        self.bases.truncate(keep);
        self.quality.truncate(keep);
        keep
    }

    /// Encode the bases into a [`Sequence`] under `alphabet`.
    pub fn into_sequence(self, alphabet: Alphabet) -> Result<Sequence, SeqError> {
        Sequence::from_ascii(self.name, alphabet, &self.bases)
    }
}

/// Parse FASTQ text (strict 4-line records, `+` separator, Phred+33).
pub fn parse_fastq(text: &str) -> Result<Vec<FastqRecord>, SeqError> {
    let mut out = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, header)) = lines.next() {
        if header.trim().is_empty() {
            continue;
        }
        let name = header
            .strip_prefix('@')
            .ok_or_else(|| SeqError::Fasta(format!("line {}: expected '@' header", lineno + 1)))?
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();
        if name.is_empty() {
            return Err(SeqError::Fasta(format!(
                "line {}: empty read name",
                lineno + 1
            )));
        }
        let (_, bases) = lines
            .next()
            .ok_or_else(|| SeqError::Fasta(format!("read {name}: missing sequence line")))?;
        let (_, sep) = lines
            .next()
            .ok_or_else(|| SeqError::Fasta(format!("read {name}: missing '+' line")))?;
        if !sep.starts_with('+') {
            return Err(SeqError::Fasta(format!(
                "read {name}: expected '+' separator"
            )));
        }
        let (_, qual) = lines
            .next()
            .ok_or_else(|| SeqError::Fasta(format!("read {name}: missing quality line")))?;
        if qual.len() != bases.len() {
            return Err(SeqError::Fasta(format!(
                "read {name}: {} bases but {} quality values",
                bases.len(),
                qual.len()
            )));
        }
        let quality: Vec<u8> = qual
            .bytes()
            .map(|b| {
                b.checked_sub(33)
                    .ok_or_else(|| SeqError::Fasta(format!("read {name}: quality below '!'")))
            })
            .collect::<Result<_, _>>()?;
        out.push(FastqRecord {
            name,
            bases: bases.as_bytes().to_vec(),
            quality,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "@read1 some description\nACGTN\n+\nIIII!\n@read2\nGGCC\n+read2\nFFFF\n";

    #[test]
    fn parses_records_and_qualities() {
        let reads = parse_fastq(SAMPLE).unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].name, "read1");
        assert_eq!(reads[0].bases, b"ACGTN");
        assert_eq!(reads[0].quality, vec![40, 40, 40, 40, 0]);
        assert_eq!(reads[1].quality, vec![37; 4]);
    }

    #[test]
    fn mean_quality() {
        let reads = parse_fastq(SAMPLE).unwrap();
        assert!((reads[0].mean_quality() - 32.0).abs() < 1e-9);
        let empty = FastqRecord {
            name: "e".into(),
            bases: vec![],
            quality: vec![],
        };
        assert_eq!(empty.mean_quality(), 0.0);
    }

    #[test]
    fn trim_tail_cuts_at_first_low_quality() {
        let mut r = parse_fastq(SAMPLE).unwrap().remove(0);
        let kept = r.trim_tail(10);
        assert_eq!(kept, 4);
        assert_eq!(r.bases, b"ACGT");
        assert_eq!(r.quality.len(), 4);
    }

    #[test]
    fn into_sequence_encodes() {
        let r = parse_fastq(SAMPLE).unwrap().remove(0);
        let s = r.into_sequence(Alphabet::Dna).unwrap();
        assert_eq!(s.to_ascii(), "ACGTN");
    }

    #[test]
    fn malformed_records_error() {
        assert!(parse_fastq("ACGT\n").is_err(), "missing @");
        assert!(parse_fastq("@r\nACGT\n").is_err(), "truncated");
        assert!(parse_fastq("@r\nACGT\nX\nIIII\n").is_err(), "bad separator");
        assert!(parse_fastq("@r\nACGT\n+\nII\n").is_err(), "length mismatch");
        assert!(parse_fastq("@\nA\n+\nI\n").is_err(), "empty name");
        assert!(
            parse_fastq("@r\nA\n+\n\x20\n").is_err(),
            "quality below '!'"
        );
    }

    #[test]
    fn malformed_quality_lines_report_the_failing_read() {
        // Quality bytes below '!' (Phred+33 floor) must be rejected no
        // matter where they appear, and the error must name the read.
        let err = |text: &str| parse_fastq(text).unwrap_err().to_string();

        // Space (0x20) is one below '!' — leading, middle, trailing.
        for bad in [
            "@r1\nACGT\n+\n\x20III\n",
            "@r1\nACGT\n+\nI\x20II\n",
            "@r1\nACGT\n+\nIII\x20\n",
        ] {
            let msg = err(bad);
            assert!(msg.contains("r1"), "error names the read: {msg}");
            assert!(msg.contains("quality below '!'"), "got: {msg}");
        }
        // Control characters (tab = 0x09) are also below the floor.
        assert!(err("@r2\nAC\n+\nI\x09\n").contains("quality below '!'"));

        // Length mismatches in both directions report the counts.
        let short = err("@r3\nACGT\n+\nII\n");
        assert!(
            short.contains("4 bases but 2 quality values"),
            "got: {short}"
        );
        let long = err("@r4\nAC\n+\nIIII\n");
        assert!(long.contains("2 bases but 4 quality values"), "got: {long}");

        // A record truncated before its quality line names the read.
        assert!(err("@r5\nACGT\n+\n").contains("missing quality line"));

        // '!' itself (Phred 0) is the boundary and must be accepted.
        let reads = parse_fastq("@ok\nAC\n+\n!!\n").unwrap();
        assert_eq!(reads[0].quality, vec![0, 0]);
    }

    #[test]
    fn blank_lines_between_records_are_tolerated() {
        let text = "@a\nAC\n+\nII\n\n@b\nGT\n+\nII\n";
        assert_eq!(parse_fastq(text).unwrap().len(), 2);
    }
}
