//! DNA ↔ protein bridging: reverse complement, the standard genetic
//! code, and six-frame translation.
//!
//! The paper's research challenge #3: "The queries we consider need to
//! support both DNA and protein sequence data." Translation lets DNA
//! reads (e.g. the metagenomics scenario) be searched against a protein
//! cluster, blastx-style.

use crate::alphabet::{Alphabet, DNA_N, PROTEIN_X};
use crate::error::SeqError;

/// Complement of one DNA residue code (`A↔T`, `C↔G`, `N→N`).
#[inline]
pub fn complement(code: u8) -> u8 {
    match code {
        0 => 3, // A -> T
        1 => 2, // C -> G
        2 => 1, // G -> C
        3 => 0, // T -> A
        _ => DNA_N,
    }
}

/// Reverse complement of an encoded DNA sequence.
pub fn reverse_complement(dna: &[u8]) -> Vec<u8> {
    dna.iter().rev().map(|&c| complement(c)).collect()
}

/// The standard genetic code over *encoded* bases (A=0 C=1 G=2 T=3),
/// indexed `b0*16 + b1*4 + b2`, yielding ASCII amino-acid letters
/// (`*` = stop).
const CODON_TABLE: [u8; 64] = {
    // Rows: first base A,C,G,T; within a row: second base A,C,G,T; then
    // third base A,C,G,T. Layout follows the standard code table.
    *b"KNKN\
       TTTT\
       RSRS\
       IIMI\
       QHQH\
       PPPP\
       RRRR\
       LLLL\
       EDED\
       AAAA\
       GGGG\
       VVVV\
       *Y*Y\
       SSSS\
       *CWC\
       LFLF"
};

/// Translate one codon of encoded bases to an encoded amino acid.
/// Any ambiguous base yields `X`.
#[inline]
pub fn translate_codon(b0: u8, b1: u8, b2: u8) -> u8 {
    if b0 > 3 || b1 > 3 || b2 > 3 {
        return PROTEIN_X;
    }
    let ascii = CODON_TABLE[(b0 as usize) * 16 + (b1 as usize) * 4 + b2 as usize];
    // The table holds only canonical amino-acid letters, so the fallback
    // never fires; it keeps the function total without a panic path.
    Alphabet::Protein.encode(ascii).unwrap_or(PROTEIN_X)
}

/// Translation body once the frame is known to be in `0..=2`.
fn translate_frame(dna: &[u8], frame: usize) -> Vec<u8> {
    dna.get(frame..)
        .unwrap_or(&[])
        .chunks_exact(3)
        .map(|c| translate_codon(c[0], c[1], c[2]))
        .collect()
}

/// Translate an encoded DNA sequence in reading frame `frame` (0, 1, 2).
/// Trailing partial codons are dropped; stops appear as `*`.
pub fn translate(dna: &[u8], frame: usize) -> Result<Vec<u8>, SeqError> {
    if frame > 2 {
        return Err(SeqError::Config(format!("frame {frame} not in 0..=2")));
    }
    Ok(translate_frame(dna, frame))
}

/// All six reading frames: `[+0, +1, +2, -0, -1, -2]` (the minus frames
/// translate the reverse complement).
pub fn six_frames(dna: &[u8]) -> [Vec<u8>; 6] {
    let rc = reverse_complement(dna);
    [
        translate_frame(dna, 0),
        translate_frame(dna, 1),
        translate_frame(dna, 2),
        translate_frame(&rc, 0),
        translate_frame(&rc, 1),
        translate_frame(&rc, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode_seq(s).unwrap()
    }

    fn prot(codes: &[u8]) -> String {
        Alphabet::Protein.decode_seq(codes)
    }

    #[test]
    fn canonical_codons() {
        // Spot-check well-known codons across the table's rows.
        let check = |codon: &[u8], aa: u8| {
            let c = dna(codon);
            assert_eq!(
                Alphabet::Protein.decode(translate_codon(c[0], c[1], c[2])),
                aa,
                "codon {}",
                std::str::from_utf8(codon).unwrap()
            );
        };
        check(b"ATG", b'M');
        check(b"TGG", b'W');
        check(b"TTT", b'F');
        check(b"TTA", b'L');
        check(b"TAA", b'*');
        check(b"TAG", b'*');
        check(b"TGA", b'*');
        check(b"GGG", b'G');
        check(b"AAA", b'K');
        check(b"GAT", b'D');
        check(b"CAT", b'H');
        check(b"TGC", b'C');
        check(b"CGA", b'R');
        check(b"AGC", b'S');
        check(b"CCC", b'P');
        check(b"ACG", b'T');
        check(b"GTA", b'V');
        check(b"ATA", b'I');
        check(b"CAA", b'Q');
        check(b"AAC", b'N');
        check(b"GAA", b'E');
        check(b"TAC", b'Y');
        check(b"GCT", b'A');
    }

    #[test]
    fn every_codon_translates_to_a_valid_residue() {
        for b0 in 0..4u8 {
            for b1 in 0..4u8 {
                for b2 in 0..4u8 {
                    let aa = translate_codon(b0, b1, b2);
                    assert!((aa as usize) < Alphabet::Protein.size());
                }
            }
        }
    }

    #[test]
    fn codon_usage_is_consistent_with_degeneracy() {
        // The standard code has exactly 3 stop codons and 61 sense codons,
        // with Leu/Ser/Arg six-fold degenerate and Met/Trp unique.
        let mut counts = [0usize; 24];
        for i in 0..64u8 {
            counts[translate_codon(i / 16, (i / 4) % 4, i % 4) as usize] += 1;
        }
        let count_of = |aa: u8| counts[Alphabet::Protein.encode(aa).unwrap() as usize];
        assert_eq!(count_of(b'*'), 3);
        assert_eq!(count_of(b'M'), 1);
        assert_eq!(count_of(b'W'), 1);
        assert_eq!(count_of(b'L'), 6);
        assert_eq!(count_of(b'S'), 6);
        assert_eq!(count_of(b'R'), 6);
        assert_eq!(count_of(b'I'), 3);
        assert_eq!(counts.iter().sum::<usize>(), 64);
    }

    #[test]
    fn ambiguous_bases_become_x() {
        let c = dna(b"ANG");
        assert_eq!(
            Alphabet::Protein.decode(translate_codon(c[0], c[1], c[2])),
            b'X'
        );
    }

    #[test]
    fn reverse_complement_involution() {
        let d = dna(b"ACGTNACG");
        assert_eq!(reverse_complement(&reverse_complement(&d)), d);
        assert_eq!(
            Alphabet::Dna.decode_seq(&reverse_complement(&dna(b"ACGT"))),
            "ACGT"
        );
        assert_eq!(
            Alphabet::Dna.decode_seq(&reverse_complement(&dna(b"AACG"))),
            "CGTT"
        );
    }

    #[test]
    fn frames_beyond_the_sequence_yield_nothing() {
        // Regression: frame offsets past the end must not panic.
        assert!(translate(&[], 1).unwrap().is_empty());
        assert!(translate(&[0], 2).unwrap().is_empty());
        assert!(six_frames(&[]).iter().all(Vec::is_empty));
    }

    #[test]
    fn translate_frames_and_partial_codons() {
        // ATGGCT = Met-Ala; frame 1 drops the leading A: TGG CT -> W.
        let d = dna(b"ATGGCT");
        assert_eq!(prot(&translate(&d, 0).unwrap()), "MA");
        assert_eq!(prot(&translate(&d, 1).unwrap()), "W");
        assert_eq!(prot(&translate(&d, 2).unwrap()), "G");
        assert!(translate(&d, 3).is_err());
    }

    #[test]
    fn six_frames_shape() {
        let d = dna(b"ATGGCTTGGTAA"); // MAW*
        let frames = six_frames(&d);
        assert_eq!(prot(&frames[0]), "MAW*");
        assert_eq!(frames[0].len(), 4);
        assert_eq!(frames[1].len(), 3);
        assert_eq!(frames[3].len(), 4);
        // The reverse strand of a stop-terminated ORF starts with the
        // reverse complement of TAA = TTA = L.
        assert_eq!(prot(&frames[3]).as_bytes()[0], b'L');
    }

    #[test]
    fn six_frames_match_hand_computed_translations() {
        // Full table-driven check: every frame of each input verified
        // against a translation worked out by hand from the codon table.
        //
        // ATGAAACCCGGGTTT reverse-complements to AAACCCGGGTTTCAT; the
        // shorter CANTGGA exercises ambiguous bases and odd length (its
        // reverse complement is TCCANTG).
        let cases: &[(&[u8], [&str; 6])] = &[
            (
                b"ATGAAACCCGGGTTT",
                ["MKPGF", "*NPG", "ETRV", "KPGFH", "NPGF", "TRVS"],
            ),
            (b"CANTGGA", ["XW", "XG", "X", "SX", "PX", "X"]),
        ];
        for (input, expected) in cases {
            let frames = six_frames(&dna(input));
            for (i, want) in expected.iter().enumerate() {
                assert_eq!(
                    prot(&frames[i]),
                    *want,
                    "frame {i} of {}",
                    std::str::from_utf8(input).unwrap()
                );
            }
        }
    }

    #[test]
    fn orf_roundtrip_through_protein_search_shapes() {
        // Translating a random ORF and searching its protein should make
        // sense dimensionally: len/3 residues.
        use crate::gen::random_sequence;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let d = random_sequence(Alphabet::Dna, 300, &mut rng);
        let p = translate(&d, 0).unwrap();
        assert_eq!(p.len(), 100);
    }
}
