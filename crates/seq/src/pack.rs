//! Bit-packed DNA storage (2 bits/base, UCSC `.2bit`-style).
//!
//! A *storage* framework for sequencing data should not spend a byte per
//! base: canonical DNA fits in 2 bits, with the rare ambiguous bases
//! (`N` and friends) kept in an exception list — exactly the layout of
//! the venerable `.2bit` format. A 4 Gbp genome shrinks from 4 GiB to
//! 1 GiB plus a few kilobytes of exceptions.

use serde::{Deserialize, Serialize};

/// A DNA sequence packed at 2 bits per base, ambiguity codes kept aside.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedDna {
    /// Base pairs, 4 per byte, first base in the low bits.
    data: Vec<u8>,
    /// Number of bases.
    len: usize,
    /// `(position, code)` for every non-canonical base, ascending.
    exceptions: Vec<(u32, u8)>,
}

impl PackedDna {
    /// Pack encoded DNA (codes 0–3 canonical, anything else goes to the
    /// exception list).
    pub fn pack(codes: &[u8]) -> Self {
        let mut data = vec![0u8; codes.len().div_ceil(4)];
        let mut exceptions = Vec::new();
        for (i, &c) in codes.iter().enumerate() {
            let two_bit = if c < 4 {
                c
            } else {
                exceptions.push((i as u32, c));
                0 // placeholder bits under an exception
            };
            data[i / 4] |= two_bit << ((i % 4) * 2);
        }
        PackedDna {
            data,
            len: codes.len(),
            exceptions,
        }
    }

    /// Unpack to residue codes.
    pub fn unpack(&self) -> Vec<u8> {
        let mut out: Vec<u8> = (0..self.len)
            .map(|i| (self.data[i / 4] >> ((i % 4) * 2)) & 0b11)
            .collect();
        for &(pos, code) in &self.exceptions {
            out[pos as usize] = code;
        }
        out
    }

    /// Random access to one base.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        if let Ok(e) = self
            .exceptions
            .binary_search_by_key(&(i as u32), |&(p, _)| p)
        {
            return self.exceptions[e].1;
        }
        (self.data[i / 4] >> ((i % 4) * 2)) & 0b11
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes this packing occupies (payload + exceptions), for storage
    /// accounting.
    pub fn packed_bytes(&self) -> usize {
        self.data.len() + self.exceptions.len() * 5
    }

    /// Number of ambiguous bases recorded.
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, DNA_N};

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode_seq(s).unwrap()
    }

    #[test]
    fn roundtrip_canonical() {
        let codes = enc(b"ACGTACGTTGCA");
        let p = PackedDna::pack(&codes);
        assert_eq!(p.unpack(), codes);
        assert_eq!(p.exception_count(), 0);
        assert_eq!(p.packed_bytes(), 3);
    }

    #[test]
    fn roundtrip_with_ambiguity() {
        let codes = enc(b"ACGNNTACN");
        let p = PackedDna::pack(&codes);
        assert_eq!(p.unpack(), codes);
        assert_eq!(p.exception_count(), 3);
    }

    #[test]
    fn random_access_matches_unpack() {
        let codes = enc(b"ACGTNAGCTNNA");
        let p = PackedDna::pack(&codes);
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(p.get(i), c, "base {i}");
        }
    }

    #[test]
    fn odd_lengths_and_empty() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 9] {
            let codes = vec![2u8; n];
            let p = PackedDna::pack(&codes);
            assert_eq!(p.len(), n);
            assert_eq!(p.unpack(), codes);
            assert_eq!(p.is_empty(), n == 0);
        }
    }

    #[test]
    fn compression_ratio_is_four_to_one() {
        let codes = vec![1u8; 4096];
        let p = PackedDna::pack(&codes);
        assert_eq!(p.packed_bytes(), 1024);
    }

    #[test]
    fn n_heavy_sequences_still_roundtrip() {
        let codes = vec![DNA_N; 100];
        let p = PackedDna::pack(&codes);
        assert_eq!(p.unpack(), codes);
        assert_eq!(p.exception_count(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        PackedDna::pack(&[0, 1]).get(2);
    }

    #[test]
    fn property_roundtrip_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for _ in 0..50 {
            let n = rng.random_range(0..200);
            let codes: Vec<u8> = (0..n)
                .map(|_| {
                    if rng.random_bool(0.05) {
                        DNA_N
                    } else {
                        rng.random_range(0..4)
                    }
                })
                .collect();
            let p = PackedDna::pack(&codes);
            assert_eq!(p.unpack(), codes);
        }
    }
}
