//! Arena-backed window views: zero-copy inverted-index blocks.
//!
//! A step-one sliding window over a sequence of length L produces L−k+1
//! overlapping k-windows; materializing each as its own `Vec<u8>` costs
//! ~k× the sequence's bytes and scatters leaf-scan reads across the heap.
//! Instead, every window of a sequence is a [`WindowView`] — a
//! `(backing, start, len)` triple over one shared, immutable buffer — and
//! each storage node keeps a [`SeqArena`] interning one backing buffer
//! per sequence it holds blocks of. The arena's byte counter charges each
//! sequence **once**, which is what the Fig. 5 load reports now measure
//! (see DESIGN.md §10).

use crate::dist::{BlockDistance, Metric};
use crate::seq::SeqId;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

/// A fixed window of residue codes borrowed from a shared backing buffer.
///
/// Dereferences to `&[u8]`, so it drops into every API that reads window
/// content. Equality is by *content* (two views over different backings
/// holding the same residues compare equal), matching the semantics of
/// the owned `Vec<u8>` windows it replaces.
#[derive(Debug, Clone)]
pub struct WindowView {
    bytes: Arc<[u8]>,
    start: u32,
    len: u32,
}

impl WindowView {
    /// A view of `bytes[start .. start + len]`.
    ///
    /// # Panics
    /// Panics when the range falls outside the backing buffer.
    pub fn new(bytes: Arc<[u8]>, start: usize, len: usize) -> Self {
        assert!(
            start + len <= bytes.len(),
            "window [{start}, {}) out of range for backing of {} bytes",
            start + len,
            bytes.len()
        );
        WindowView {
            bytes,
            start: start as u32,
            len: len as u32,
        }
    }

    /// A self-contained view owning exactly `window` (the wire-decode
    /// path, before a receiving node re-anchors the block in its arena).
    pub fn standalone(window: Vec<u8>) -> Self {
        let len = window.len();
        WindowView {
            bytes: Arc::from(window),
            start: 0,
            len: len as u32,
        }
    }

    /// The window content.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[self.start as usize..self.start as usize + self.len as usize]
    }

    /// The shared backing buffer.
    #[inline]
    pub fn backing(&self) -> &Arc<[u8]> {
        &self.bytes
    }

    /// Offset of the window within its backing buffer.
    #[inline]
    pub fn offset(&self) -> usize {
        self.start as usize
    }

    /// True when the view's offset within its backing equals `start` —
    /// i.e. the backing is addressed in sequence coordinates, so it can
    /// serve as (a prefix of) the sequence's arena buffer.
    #[inline]
    pub fn anchored_at(&self, start: u32) -> bool {
        self.start == start
    }
}

impl Deref for WindowView {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for WindowView {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for WindowView {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WindowView {}

impl From<Vec<u8>> for WindowView {
    fn from(window: Vec<u8>) -> Self {
        WindowView::standalone(window)
    }
}

/// Bridge slice metrics to view points, mirroring the `Vec<u8>` bridge.
impl<M: Metric<[u8]>> Metric<WindowView> for BlockDistance<M> {
    #[inline]
    fn dist(&self, a: &WindowView, b: &WindowView) -> f32 {
        self.inner.dist(a, b)
    }

    #[inline]
    fn dist_bounded(&self, a: &WindowView, b: &WindowView, bound: f32) -> Option<f32> {
        self.inner.dist_bounded(a, b, bound)
    }

    fn dist_bounded_many(
        &self,
        a: &WindowView,
        bs: &[&WindowView],
        bound: f32,
        out: &mut Vec<Option<f32>>,
    ) {
        let slices: Vec<&[u8]> = bs.iter().map(|b| b.as_ref()).collect();
        self.inner.dist_bounded_many(a, &slices, bound, out)
    }
}

/// A per-node sequence arena: one immutable backing buffer per sequence,
/// shared by every [`WindowView`] cut from it.
///
/// `bytes()` counts each interned sequence exactly once, however many
/// overlapping windows reference it — the compressive accounting the
/// load-balance experiments report.
#[derive(Debug, Clone, Default)]
pub struct SeqArena {
    seqs: HashMap<u32, Arc<[u8]>>,
    bytes: u64,
}

impl SeqArena {
    /// An empty arena.
    pub fn new() -> Self {
        SeqArena::default()
    }

    /// The backing buffer for `id`, if interned.
    #[inline]
    pub fn get(&self, id: SeqId) -> Option<&Arc<[u8]>> {
        self.seqs.get(&id.0)
    }

    /// Intern `residues` for `id`, copying once; returns the (possibly
    /// pre-existing) shared buffer. Re-interning an id is a no-op that
    /// returns the first buffer.
    pub fn intern(&mut self, id: SeqId, residues: &[u8]) -> Arc<[u8]> {
        if let Some(a) = self.seqs.get(&id.0) {
            return a.clone();
        }
        let a: Arc<[u8]> = Arc::from(residues);
        self.bytes += a.len() as u64;
        self.seqs.insert(id.0, a.clone());
        a
    }

    /// Intern an already-shared buffer for `id` without copying.
    pub fn intern_arc(&mut self, id: SeqId, buffer: Arc<[u8]>) -> Arc<[u8]> {
        if let Some(a) = self.seqs.get(&id.0) {
            return a.clone();
        }
        self.bytes += buffer.len() as u64;
        self.seqs.insert(id.0, buffer.clone());
        buffer
    }

    /// A window view over sequence `id`, if it is interned and the range
    /// fits.
    pub fn view(&self, id: SeqId, start: u32, len: usize) -> Option<WindowView> {
        let backing = self.seqs.get(&id.0)?;
        if start as usize + len > backing.len() {
            return None;
        }
        Some(WindowView::new(backing.clone(), start as usize, len))
    }

    /// Total interned bytes, each sequence counted once.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of interned sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when nothing is interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Accounting invariant: the byte counter equals the sum of interned
    /// buffer lengths.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: u64 = self.seqs.values().map(|a| a.len() as u64).sum();
        if sum != self.bytes {
            return Err(format!(
                "arena byte counter {} does not match interned total {sum}",
                self.bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_share_one_backing() {
        let mut arena = SeqArena::new();
        let residues: Vec<u8> = (0..40u8).collect();
        let backing = arena.intern(SeqId(3), &residues);
        let a = WindowView::new(backing.clone(), 0, 16);
        let b = WindowView::new(backing.clone(), 5, 16);
        assert_eq!(&a[..], &residues[0..16]);
        assert_eq!(&b[..], &residues[5..21]);
        assert!(Arc::ptr_eq(a.backing(), b.backing()));
        assert_eq!(arena.bytes(), 40);
    }

    #[test]
    fn interning_is_idempotent_and_counts_once() {
        let mut arena = SeqArena::new();
        let first = arena.intern(SeqId(1), &[1, 2, 3]);
        let second = arena.intern(SeqId(1), &[9, 9, 9]); // ignored: already interned
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(arena.bytes(), 3);
        assert_eq!(arena.len(), 1);
        arena.intern_arc(SeqId(2), first.clone());
        assert_eq!(arena.bytes(), 6);
        assert_eq!(arena.check_invariants(), Ok(()));
    }

    #[test]
    fn arena_view_bounds_are_checked() {
        let mut arena = SeqArena::new();
        arena.intern(SeqId(0), &[0; 10]);
        assert!(arena.view(SeqId(0), 0, 10).is_some());
        assert!(arena.view(SeqId(0), 5, 6).is_none());
        assert!(arena.view(SeqId(9), 0, 1).is_none());
    }

    #[test]
    fn standalone_views_compare_by_content() {
        let mut arena = SeqArena::new();
        let backing = arena.intern(SeqId(0), &[7, 8, 9, 10]);
        let anchored = WindowView::new(backing, 1, 2);
        let standalone = WindowView::standalone(vec![8, 9]);
        assert_eq!(anchored, standalone);
        assert!(anchored.anchored_at(1));
        assert!(!standalone.anchored_at(1));
        assert_eq!(standalone.to_vec(), vec![8, 9]); // via Deref
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_view_is_rejected() {
        let backing: Arc<[u8]> = Arc::from(vec![0u8; 4]);
        WindowView::new(backing, 2, 3);
    }
}
