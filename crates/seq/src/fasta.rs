//! FASTA parsing and writing.
//!
//! Supports multi-line records, `>name description` headers, CRLF input,
//! and `;` comment lines (an old but still-seen FASTA dialect).

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::seq::Sequence;
use serde::{Deserialize, Serialize};

/// One raw FASTA record: header split into name/description plus the
/// un-encoded residue text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastaRecord {
    /// First whitespace-delimited token of the header.
    pub name: String,
    /// Remainder of the header line (may be empty).
    pub description: String,
    /// Concatenated sequence bytes, whitespace removed, case preserved.
    pub residues: Vec<u8>,
}

impl FastaRecord {
    /// Encode this record into a [`Sequence`] under `alphabet`.
    pub fn into_sequence(self, alphabet: Alphabet) -> Result<Sequence, SeqError> {
        let mut s = Sequence::from_ascii(self.name, alphabet, &self.residues)?;
        s.description = self.description;
        Ok(s)
    }
}

/// Parse FASTA text into records.
///
/// Rules: records start at `>`; `;` lines are comments; blank lines are
/// skipped; sequence text before the first header is an error; a header
/// with no sequence lines yields an empty record error.
pub fn parse_fasta(text: &str) -> Result<Vec<FastaRecord>, SeqError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<FastaRecord> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                finish_record(rec, &mut records)?;
            }
            let header = header.trim();
            let (name, description) = match header.split_once(char::is_whitespace) {
                Some((n, d)) => (n.to_string(), d.trim().to_string()),
                None => (header.to_string(), String::new()),
            };
            if name.is_empty() {
                return Err(SeqError::Fasta(format!(
                    "empty header at line {}",
                    lineno + 1
                )));
            }
            current = Some(FastaRecord {
                name,
                description,
                residues: Vec::new(),
            });
        } else {
            match current.as_mut() {
                Some(rec) => rec
                    .residues
                    .extend(line.bytes().filter(|b| !b.is_ascii_whitespace())),
                None => {
                    return Err(SeqError::Fasta(format!(
                        "sequence data before first '>' header at line {}",
                        lineno + 1
                    )))
                }
            }
        }
    }
    if let Some(rec) = current.take() {
        finish_record(rec, &mut records)?;
    }
    Ok(records)
}

fn finish_record(rec: FastaRecord, out: &mut Vec<FastaRecord>) -> Result<(), SeqError> {
    if rec.residues.is_empty() {
        return Err(SeqError::Fasta(format!(
            "record {:?} has no sequence data",
            rec.name
        )));
    }
    out.push(rec);
    Ok(())
}

/// Parse FASTA text and encode every record under `alphabet`.
pub fn parse_fasta_sequences(text: &str, alphabet: Alphabet) -> Result<Vec<Sequence>, SeqError> {
    parse_fasta(text)?
        .into_iter()
        .map(|r| r.into_sequence(alphabet))
        .collect()
}

/// Serialize sequences to FASTA text, wrapping residue lines at `width`.
pub fn write_fasta<'a>(seqs: impl IntoIterator<Item = &'a Sequence>, width: usize) -> String {
    let width = width.max(1);
    let mut out = String::new();
    for s in seqs {
        out.push('>');
        out.push_str(&s.name);
        if !s.description.is_empty() {
            out.push(' ');
            out.push_str(&s.description);
        }
        out.push('\n');
        let ascii = s.to_ascii();
        let bytes = ascii.as_bytes();
        for chunk in bytes.chunks(width) {
            out.push_str(&String::from_utf8_lossy(chunk));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = ">p1 human hemoglobin\nMARND\nWWY\n\n>p2\nACDEF\n";

    #[test]
    fn parses_multiline_records() {
        let recs = parse_fasta(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "p1");
        assert_eq!(recs[0].description, "human hemoglobin");
        assert_eq!(recs[0].residues, b"MARNDWWY");
        assert_eq!(recs[1].name, "p2");
        assert_eq!(recs[1].description, "");
        assert_eq!(recs[1].residues, b"ACDEF");
    }

    #[test]
    fn handles_crlf_and_comments() {
        let text = "; legacy comment\r\n>x\r\nMAR\r\nND\r\n";
        let recs = parse_fasta(text).unwrap();
        assert_eq!(recs[0].residues, b"MARND");
    }

    #[test]
    fn rejects_leading_sequence_data() {
        let err = parse_fasta("MARND\n>x\nM\n").unwrap_err();
        assert!(matches!(err, SeqError::Fasta(_)));
    }

    #[test]
    fn rejects_empty_record() {
        assert!(parse_fasta(">only_header\n").is_err());
        assert!(parse_fasta(">a\nMA\n>empty\n>b\nMR\n").is_err());
    }

    #[test]
    fn rejects_empty_header() {
        assert!(parse_fasta(">\nMA\n").is_err());
    }

    #[test]
    fn encode_and_roundtrip() {
        let seqs = parse_fasta_sequences(SAMPLE, Alphabet::Protein).unwrap();
        assert_eq!(seqs[0].to_ascii(), "MARNDWWY");
        let text = write_fasta(seqs.iter(), 4);
        let re = parse_fasta_sequences(&text, Alphabet::Protein).unwrap();
        assert_eq!(re.len(), 2);
        assert_eq!(re[0].to_ascii(), "MARNDWWY");
        assert_eq!(re[0].description, "human hemoglobin");
        // 8 residues at width 4 → exactly two full lines
        assert!(text.contains("MARN\nDWWY\n"), "{text}");
    }

    #[test]
    fn encoding_error_propagates_from_record() {
        let err = parse_fasta_sequences(">bad\nM1R\n", Alphabet::Protein).unwrap_err();
        assert!(matches!(err, SeqError::InvalidResidue { byte: b'1', .. }));
    }

    #[test]
    fn write_fasta_minimum_width_is_one() {
        let s = Sequence::from_ascii("t", Alphabet::Dna, b"ACG").unwrap();
        let text = write_fasta([&s], 0);
        assert_eq!(text, ">t\nA\nC\nG\n");
    }
}
