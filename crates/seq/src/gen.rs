//! Deterministic synthetic dataset generators.
//!
//! The paper evaluates against NCBI's non-redundant protein database
//! (`nr`, 73 M sequences) and two whole-genome query sets (`s_aureus`,
//! `e_coli`). None of those ship with this repository, so this module
//! generates faithful stand-ins (see DESIGN.md §3):
//!
//! * [`random_sequence`] — background-frequency residue sampling
//!   (Swiss-Prot composition for proteins, uniform for DNA),
//! * [`MutationModel`] / [`mutate_to_identity`] — controlled divergence
//!   with substitutions and indels,
//! * [`NrLikeSpec`] — an `nr`-like database with planted homologous
//!   families (so sensitivity has a ground truth),
//! * [`QuerySetSpec`] — genome-like query sets sampled from a database
//!   with known provenance.
//!
//! All generation is driven by a caller-seeded [`rand::Rng`], so every
//! experiment is reproducible bit-for-bit.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::seq::{SeqId, SeqStore, Sequence};
use crate::stats::background_frequencies;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Weighted sampler over an alphabet's canonical residues.
#[derive(Debug, Clone)]
pub struct ResidueSampler {
    alphabet: Alphabet,
    cumulative: Vec<f64>,
}

impl ResidueSampler {
    /// Sampler using the alphabet's background frequencies.
    pub fn background(alphabet: Alphabet) -> Self {
        Self::with_frequencies(alphabet, &background_frequencies(alphabet))
            .expect("background frequencies are valid") // audit:allow(expect): embedded background tables are positive and match the alphabet size
    }

    /// Sampler with caller-supplied canonical-residue frequencies.
    pub fn with_frequencies(alphabet: Alphabet, freqs: &[f64]) -> Result<Self, SeqError> {
        if freqs.len() != alphabet.canonical_size() {
            return Err(SeqError::Config(format!(
                "expected {} frequencies, got {}",
                alphabet.canonical_size(),
                freqs.len()
            )));
        }
        if freqs.iter().any(|&f| f < 0.0) {
            return Err(SeqError::Config("negative frequency".into()));
        }
        let total: f64 = freqs.iter().sum();
        if total <= 0.0 {
            return Err(SeqError::Config("frequencies sum to zero".into()));
        }
        let mut acc = 0.0;
        let cumulative = freqs
            .iter()
            .map(|&f| {
                acc += f / total;
                acc
            })
            .collect();
        Ok(ResidueSampler {
            alphabet,
            cumulative,
        })
    }

    /// Draw one residue code.
    pub fn sample(&self, rng: &mut impl Rng) -> u8 {
        let x: f64 = rng.random();
        // Last bucket absorbs floating-point shortfall.
        self.cumulative
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cumulative.len() - 1) as u8
    }

    /// Draw one residue code different from `not`.
    pub fn sample_excluding(&self, not: u8, rng: &mut impl Rng) -> u8 {
        debug_assert!(self.alphabet.canonical_size() > 1);
        loop {
            let c = self.sample(rng);
            if c != not {
                return c;
            }
        }
    }
}

/// Generate a random sequence of `len` residues from background frequencies.
pub fn random_sequence(alphabet: Alphabet, len: usize, rng: &mut impl Rng) -> Vec<u8> {
    let sampler = ResidueSampler::background(alphabet);
    (0..len).map(|_| sampler.sample(rng)).collect()
}

/// A mutation model applied per residue position: substitutions, insertions,
/// and deletions, each with an independent per-position probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationModel {
    /// Per-position substitution probability.
    pub substitution: f64,
    /// Per-position insertion probability (insert before the position).
    pub insertion: f64,
    /// Per-position deletion probability.
    pub deletion: f64,
}

impl MutationModel {
    /// Substitutions only (the model of the paper's Fig 6d experiment).
    pub fn substitutions(rate: f64) -> Self {
        MutationModel {
            substitution: rate,
            insertion: 0.0,
            deletion: 0.0,
        }
    }

    /// Substitutions plus symmetric indels (sequencer-like noise).
    pub fn with_indels(substitution: f64, indel: f64) -> Self {
        MutationModel {
            substitution,
            insertion: indel / 2.0,
            deletion: indel / 2.0,
        }
    }

    /// Validate that every rate lies in `[0, 1]`.
    pub fn validate(&self) -> Result<(), SeqError> {
        for (name, r) in [
            ("substitution", self.substitution),
            ("insertion", self.insertion),
            ("deletion", self.deletion),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(SeqError::Config(format!("{name} rate {r} outside [0,1]")));
            }
        }
        Ok(())
    }

    /// Apply the model to an encoded sequence, returning the mutant.
    pub fn mutate(&self, alphabet: Alphabet, seq: &[u8], rng: &mut impl Rng) -> Vec<u8> {
        let sampler = ResidueSampler::background(alphabet);
        let mut out = Vec::with_capacity(seq.len() + 8);
        for &res in seq {
            if rng.random::<f64>() < self.insertion {
                out.push(sampler.sample(rng));
            }
            if rng.random::<f64>() < self.deletion {
                continue;
            }
            if rng.random::<f64>() < self.substitution {
                out.push(sampler.sample_excluding(res, rng));
            } else {
                out.push(res);
            }
        }
        out
    }
}

/// Mutate a sequence to an *exact* target identity by substituting a fixed
/// count of distinct random positions (no indels). This is the procedure of
/// the paper's sensitivity experiment (§VI-E): "groups of sequences are
/// generated by randomly mutating residues from the original sequence
/// corresponding to the desired similarity level."
pub fn mutate_to_identity(
    alphabet: Alphabet,
    seq: &[u8],
    identity: f64,
    rng: &mut impl Rng,
) -> Result<Vec<u8>, SeqError> {
    if seq.is_empty() {
        return Err(SeqError::EmptySequence);
    }
    if !(0.0..=1.0).contains(&identity) {
        return Err(SeqError::Config(format!(
            "identity {identity} outside [0,1]"
        )));
    }
    let n_mut = ((1.0 - identity) * seq.len() as f64).round() as usize;
    let sampler = ResidueSampler::background(alphabet);
    let mut positions: Vec<usize> = (0..seq.len()).collect();
    positions.shuffle(rng);
    let mut out = seq.to_vec();
    for &p in positions.iter().take(n_mut) {
        out[p] = sampler.sample_excluding(out[p], rng);
    }
    Ok(out)
}

/// Specification of an `nr`-like synthetic reference database.
///
/// The database is built from `families` independent ancestor sequences;
/// each family contributes `members_per_family` descendants mutated by
/// `family_divergence`. Planted families give sensitivity experiments a
/// ground truth. Lengths are drawn uniformly from `length_range`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NrLikeSpec {
    /// Residue alphabet of the database.
    pub alphabet: Alphabet,
    /// Number of independent families (ancestors).
    pub families: usize,
    /// Descendants generated per family, including the ancestor itself.
    pub members_per_family: usize,
    /// Inclusive sequence-length range, sampled uniformly.
    pub length_range: (usize, usize),
    /// Mutation model applied to derive each non-ancestor member.
    pub family_divergence: MutationModel,
    /// RNG seed; same spec + same seed ⇒ identical database.
    pub seed: u64,
}

impl Default for NrLikeSpec {
    fn default() -> Self {
        NrLikeSpec {
            alphabet: Alphabet::Protein,
            families: 64,
            members_per_family: 4,
            length_range: (200, 600),
            family_divergence: MutationModel::with_indels(0.10, 0.01),
            seed: 0x4d454e44, // "MEND"
        }
    }
}

impl NrLikeSpec {
    /// Total sequences the spec will generate.
    pub fn total_sequences(&self) -> usize {
        self.families * self.members_per_family
    }

    /// Generate the database. Sequence names are `fam{F}_m{M}`; member 0 of
    /// each family is the unmutated ancestor.
    pub fn generate(&self) -> Result<SeqStore, SeqError> {
        if self.families == 0 || self.members_per_family == 0 {
            return Err(SeqError::Config(
                "families and members must be positive".into(),
            ));
        }
        if self.length_range.0 == 0 || self.length_range.0 > self.length_range.1 {
            return Err(SeqError::Config(format!(
                "bad length range {:?}",
                self.length_range
            )));
        }
        self.family_divergence.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut store = SeqStore::new();
        for f in 0..self.families {
            let len = rng.random_range(self.length_range.0..=self.length_range.1);
            let ancestor = random_sequence(self.alphabet, len, &mut rng);
            for m in 0..self.members_per_family {
                let codes = if m == 0 {
                    ancestor.clone()
                } else {
                    self.family_divergence
                        .mutate(self.alphabet, &ancestor, &mut rng)
                };
                let mut s = Sequence::from_codes(format!("fam{f}_m{m}"), self.alphabet, codes);
                s.description = format!("family {f} member {m}");
                store.insert(s);
            }
        }
        Ok(store)
    }
}

/// One generated query with its ground-truth provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The query sequence itself.
    pub query: Sequence,
    /// Database sequence the query was sampled from.
    pub source: SeqId,
    /// Start offset of the sampled window within the source.
    pub source_start: usize,
    /// Identity level the mutation model was asked for (1.0 = exact copy).
    pub target_identity: f64,
}

/// Specification of a genome-like query set sampled from a database —
/// the stand-in for the paper's `s_aureus` / `e_coli` query sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuerySetSpec {
    /// Number of queries to draw.
    pub count: usize,
    /// Length of each query window.
    pub length: usize,
    /// Identity of each query to its source window (mutations are uniform
    /// random substitutions; see [`mutate_to_identity`]).
    pub identity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuerySetSpec {
    fn default() -> Self {
        QuerySetSpec {
            count: 16,
            length: 1000,
            identity: 0.9,
            seed: 0x51534554,
        } // "QSET"
    }
}

impl QuerySetSpec {
    /// Sample the query set from `db`. Sources are drawn uniformly among
    /// database sequences long enough to hold a window of `self.length`.
    pub fn generate(&self, db: &SeqStore) -> Result<Vec<QueryRecord>, SeqError> {
        if self.count == 0 || self.length == 0 {
            return Err(SeqError::Config("count and length must be positive".into()));
        }
        let eligible: Vec<&Sequence> = db.iter().filter(|s| s.len() >= self.length).collect();
        if eligible.is_empty() {
            return Err(SeqError::Config(format!(
                "no database sequence is >= {} residues",
                self.length
            )));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.count);
        for q in 0..self.count {
            let src = eligible[rng.random_range(0..eligible.len())];
            let start = rng.random_range(0..=src.len() - self.length);
            let window = &src.residues[start..start + self.length];
            let codes = mutate_to_identity(src.alphabet, window, self.identity, &mut rng)?;
            let mut query = Sequence::from_codes(format!("q{q}"), src.alphabet, codes);
            query.description = format!("from {} @{}", src.name, start);
            out.push(QueryRecord {
                query,
                source: src.id,
                source_start: start,
                target_identity: self.identity,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Hamming;
    use crate::stats::Composition;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn sampler_respects_frequencies() {
        let mut r = rng(1);
        let s = ResidueSampler::with_frequencies(Alphabet::Dna, &[1.0, 0.0, 0.0, 0.0]).unwrap();
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r), 0);
        }
    }

    #[test]
    fn sampler_rejects_bad_frequencies() {
        assert!(ResidueSampler::with_frequencies(Alphabet::Dna, &[1.0; 3]).is_err());
        assert!(ResidueSampler::with_frequencies(Alphabet::Dna, &[0.0; 4]).is_err());
        assert!(ResidueSampler::with_frequencies(Alphabet::Dna, &[-1.0, 1.0, 0.5, 0.5]).is_err());
    }

    #[test]
    fn sample_excluding_never_returns_excluded() {
        let mut r = rng(2);
        let s = ResidueSampler::background(Alphabet::Dna);
        for _ in 0..200 {
            assert_ne!(s.sample_excluding(2, &mut r), 2);
        }
    }

    #[test]
    fn protein_background_matches_swissprot_roughly() {
        let mut r = rng(3);
        let seq = random_sequence(Alphabet::Protein, 50_000, &mut r);
        let comp = Composition::of(Alphabet::Protein, &seq);
        let freqs = comp.frequencies();
        let leu = freqs[10];
        let trp = freqs[17];
        assert!(leu > 0.08 && leu < 0.11, "Leu freq {leu}");
        assert!(trp < 0.02, "Trp freq {trp}");
    }

    #[test]
    fn mutate_to_identity_hits_exact_substitution_count() {
        let mut r = rng(4);
        let seq = random_sequence(Alphabet::Protein, 1000, &mut r);
        for identity in [1.0, 0.9, 0.5, 0.0] {
            let m = mutate_to_identity(Alphabet::Protein, &seq, identity, &mut r).unwrap();
            let diff = Hamming::count(&seq, &m);
            let expect = ((1.0 - identity) * 1000.0).round() as usize;
            assert_eq!(diff, expect, "identity {identity}");
        }
    }

    #[test]
    fn mutate_to_identity_validates_inputs() {
        let mut r = rng(5);
        assert!(mutate_to_identity(Alphabet::Dna, &[], 0.5, &mut r).is_err());
        assert!(mutate_to_identity(Alphabet::Dna, &[0], 1.5, &mut r).is_err());
    }

    #[test]
    fn mutation_model_substitution_only_preserves_length() {
        let mut r = rng(6);
        let seq = random_sequence(Alphabet::Dna, 500, &mut r);
        let m = MutationModel::substitutions(0.2).mutate(Alphabet::Dna, &seq, &mut r);
        assert_eq!(m.len(), seq.len());
        let diff = Hamming::count(&seq, &m);
        assert!((50..150).contains(&diff), "observed {diff} substitutions");
    }

    #[test]
    fn mutation_model_indels_change_length() {
        let mut r = rng(7);
        let seq = random_sequence(Alphabet::Dna, 2000, &mut r);
        let m = MutationModel::with_indels(0.0, 0.2).mutate(Alphabet::Dna, &seq, &mut r);
        assert_ne!(m.len(), seq.len(), "indels at 20% should move the length");
    }

    #[test]
    fn mutation_model_zero_rates_is_identity() {
        let mut r = rng(8);
        let seq = random_sequence(Alphabet::Protein, 100, &mut r);
        let m = MutationModel::substitutions(0.0).mutate(Alphabet::Protein, &seq, &mut r);
        assert_eq!(m, seq);
    }

    #[test]
    fn mutation_model_validation() {
        assert!(MutationModel::substitutions(1.5).validate().is_err());
        assert!(MutationModel {
            substitution: 0.1,
            insertion: -0.1,
            deletion: 0.0
        }
        .validate()
        .is_err());
        assert!(MutationModel::with_indels(0.5, 0.5).validate().is_ok());
    }

    #[test]
    fn nr_like_generation_is_deterministic() {
        let spec = NrLikeSpec {
            families: 4,
            members_per_family: 3,
            ..Default::default()
        };
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn nr_like_families_are_similar_but_not_identical() {
        let spec = NrLikeSpec {
            families: 2,
            members_per_family: 2,
            length_range: (300, 300),
            family_divergence: MutationModel::substitutions(0.1),
            ..Default::default()
        };
        let db = spec.generate().unwrap();
        let anc = db.get_by_name("fam0_m0").unwrap();
        let desc = db.get_by_name("fam0_m1").unwrap();
        let diff = Hamming::count(&anc.residues, &desc.residues);
        assert!(diff > 0, "descendant must differ");
        assert!(diff < 100, "descendant must stay close (got {diff}/300)");
    }

    #[test]
    fn nr_like_rejects_bad_specs() {
        assert!(NrLikeSpec {
            families: 0,
            ..Default::default()
        }
        .generate()
        .is_err());
        assert!(NrLikeSpec {
            length_range: (10, 5),
            ..Default::default()
        }
        .generate()
        .is_err());
        assert!(NrLikeSpec {
            length_range: (0, 5),
            ..Default::default()
        }
        .generate()
        .is_err());
    }

    #[test]
    fn query_set_has_correct_provenance() {
        let db = NrLikeSpec {
            families: 4,
            members_per_family: 2,
            length_range: (400, 500),
            ..Default::default()
        }
        .generate()
        .unwrap();
        let qs = QuerySetSpec {
            count: 8,
            length: 200,
            identity: 1.0,
            seed: 9,
        }
        .generate(&db)
        .unwrap();
        assert_eq!(qs.len(), 8);
        for q in &qs {
            let src = db.get(q.source).unwrap();
            let window = src.window(q.source_start, 200).unwrap();
            assert_eq!(
                q.query.residues, window,
                "identity-1.0 query must copy source"
            );
        }
    }

    #[test]
    fn query_set_identity_level_is_respected() {
        let db = NrLikeSpec {
            families: 2,
            members_per_family: 1,
            length_range: (500, 500),
            ..Default::default()
        }
        .generate()
        .unwrap();
        let qs = QuerySetSpec {
            count: 4,
            length: 300,
            identity: 0.8,
            seed: 10,
        }
        .generate(&db)
        .unwrap();
        for q in &qs {
            let src = db.get(q.source).unwrap();
            let window = src.window(q.source_start, 300).unwrap();
            let diff = Hamming::count(&q.query.residues, window);
            assert_eq!(diff, 60, "20% of 300 positions must differ");
        }
    }

    #[test]
    fn query_set_rejects_oversized_windows() {
        let db = NrLikeSpec {
            families: 1,
            members_per_family: 1,
            length_range: (100, 100),
            ..Default::default()
        }
        .generate()
        .unwrap();
        assert!(QuerySetSpec {
            length: 500,
            ..Default::default()
        }
        .generate(&db)
        .is_err());
    }
}
