//! Error types for the sequence substrate.

use std::fmt;

/// Errors produced while parsing, encoding, or generating sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A byte that is not a member of the target alphabet.
    InvalidResidue {
        /// The offending byte.
        byte: u8,
        /// Zero-based position within the input.
        position: usize,
    },
    /// Malformed FASTA input.
    Fasta(String),
    /// Malformed scoring-matrix text.
    Matrix(String),
    /// An operation was given an empty sequence where one or more residues
    /// are required.
    EmptySequence,
    /// Two inputs that must have equal lengths did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A generator or store was configured inconsistently.
    Config(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidResidue { byte, position } => write!(
                f,
                "invalid residue byte 0x{byte:02x} ({}) at position {position}",
                char::from(*byte)
            ),
            SeqError::Fasta(msg) => write!(f, "FASTA parse error: {msg}"),
            SeqError::Matrix(msg) => write!(f, "scoring-matrix parse error: {msg}"),
            SeqError::EmptySequence => write!(f, "operation requires a non-empty sequence"),
            SeqError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            SeqError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_residue_shows_byte_and_position() {
        let e = SeqError::InvalidResidue {
            byte: b'!',
            position: 7,
        };
        let s = e.to_string();
        assert!(s.contains("0x21"), "{s}");
        assert!(s.contains("position 7"), "{s}");
    }

    #[test]
    fn display_length_mismatch() {
        let e = SeqError::LengthMismatch { left: 3, right: 9 };
        assert_eq!(e.to_string(), "length mismatch: 3 vs 9");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SeqError::EmptySequence);
        assert!(e.to_string().contains("non-empty"));
    }
}
