//! Alignment scoring matrices.
//!
//! BLOSUM62 — the default scoring matrix of BLAST and of the paper — is
//! embedded in NCBI text format and parsed at construction (the parser also
//! accepts any user-supplied NCBI-format matrix, satisfying the paper's
//! "the matrix used to score the alignments is a user defined parameter").
//! DNA matrices are generated from match/mismatch scores.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use serde::{Deserialize, Serialize};

/// Canonical BLOSUM62 in NCBI format (row/column order
/// `ARNDCQEGHILKMFPSTWYVBZX*`).
pub const BLOSUM62_TEXT: &str = "\
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
";

/// A square substitution-score matrix indexed by residue *codes*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoringMatrix {
    /// Human-readable name (`"BLOSUM62"`, `"DNA(+5/-4)"`, ...).
    pub name: String,
    /// Alphabet whose codes index this matrix.
    pub alphabet: Alphabet,
    n: usize,
    scores: Vec<i32>,
}

impl ScoringMatrix {
    /// The BLOSUM62 matrix (the paper's and BLAST's default for proteins).
    pub fn blosum62() -> Self {
        Self::from_ncbi_text("BLOSUM62", Alphabet::Protein, BLOSUM62_TEXT)
            .expect("embedded BLOSUM62 must parse") // audit:allow(expect): embedded constant text; failing to parse it is a build defect worth a panic
    }

    /// A DNA matrix with the given match reward and mismatch penalty.
    /// `N` scores `mismatch` against everything including itself (unknown
    /// bases never help an alignment).
    pub fn dna(match_score: i32, mismatch: i32) -> Self {
        assert!(match_score > 0, "match reward must be positive");
        assert!(mismatch < 0, "mismatch penalty must be negative");
        let n = Alphabet::Dna.size();
        let mut scores = vec![mismatch; n * n];
        for i in 0..4 {
            scores[i * n + i] = match_score;
        }
        ScoringMatrix {
            name: format!("DNA({match_score:+}/{mismatch})"),
            alphabet: Alphabet::Dna,
            n,
            scores,
        }
    }

    /// BLAST's default nucleotide scoring (+2/−3).
    pub fn dna_default() -> Self {
        Self::dna(2, -3)
    }

    /// Parse a matrix in NCBI text format: a header line of symbols, then
    /// one row per symbol, each row led by its symbol. Lines starting with
    /// `#` are comments.
    pub fn from_ncbi_text(
        name: impl Into<String>,
        alphabet: Alphabet,
        text: &str,
    ) -> Result<Self, SeqError> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));

        let header = lines
            .next()
            .ok_or_else(|| SeqError::Matrix("empty matrix text".into()))?;
        let cols: Vec<u8> = header
            .split_ascii_whitespace()
            .map(|tok| {
                let b = tok.as_bytes();
                if b.len() != 1 {
                    return Err(SeqError::Matrix(format!("bad header symbol {tok:?}")));
                }
                alphabet.encode(b[0]).ok_or_else(|| {
                    SeqError::Matrix(format!("header symbol {tok:?} not in alphabet"))
                })
            })
            .collect::<Result<_, _>>()?;

        let n = alphabet.size();
        // i32::MIN marks "not provided"; every (canonical) pair must be filled.
        let mut scores = vec![i32::MIN; n * n];
        let mut rows_seen = 0usize;
        for line in lines {
            let mut toks = line.split_ascii_whitespace();
            let row_sym = toks
                .next()
                .ok_or_else(|| SeqError::Matrix("blank matrix row".into()))?;
            let rb = row_sym.as_bytes();
            if rb.len() != 1 {
                return Err(SeqError::Matrix(format!("bad row symbol {row_sym:?}")));
            }
            let row = alphabet.encode(rb[0]).ok_or_else(|| {
                SeqError::Matrix(format!("row symbol {row_sym:?} not in alphabet"))
            })? as usize;
            let vals: Vec<i32> = toks
                .map(|t| {
                    t.parse::<i32>()
                        .map_err(|_| SeqError::Matrix(format!("bad score token {t:?}")))
                })
                .collect::<Result<_, _>>()?;
            if vals.len() != cols.len() {
                return Err(SeqError::Matrix(format!(
                    "row {row_sym} has {} scores, header has {} symbols",
                    vals.len(),
                    cols.len()
                )));
            }
            for (col, val) in cols.iter().zip(vals) {
                scores[row * n + *col as usize] = val;
            }
            rows_seen += 1;
        }
        if rows_seen != cols.len() {
            return Err(SeqError::Matrix(format!(
                "matrix has {rows_seen} rows but {} header symbols",
                cols.len()
            )));
        }
        for i in 0..cols.len() {
            for j in 0..cols.len() {
                let (a, b) = (cols[i] as usize, cols[j] as usize);
                if scores[a * n + b] == i32::MIN {
                    return Err(SeqError::Matrix(format!(
                        "missing score for pair ({i},{j})"
                    )));
                }
            }
        }
        Ok(ScoringMatrix {
            name: name.into(),
            alphabet,
            n,
            scores,
        })
    }

    /// Score of substituting residue code `a` with residue code `b`.
    ///
    /// # Panics
    /// Panics (in debug builds) if a code is out of range for the alphabet.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        debug_assert!((a as usize) < self.n && (b as usize) < self.n);
        self.scores[a as usize * self.n + b as usize]
    }

    /// Matrix dimension (number of residue codes).
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Largest score on the diagonal (the best possible per-residue score).
    pub fn max_self_score(&self) -> i32 {
        (0..self.alphabet.canonical_size() as u8)
            .map(|c| self.score(c, c))
            .max()
            .unwrap_or(0)
    }

    /// Score an ungapped pairing of two equal-length encoded windows.
    pub fn score_window(&self, a: &[u8], b: &[u8]) -> Result<i32, SeqError> {
        if a.len() != b.len() {
            return Err(SeqError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        Ok(a.iter().zip(b).map(|(&x, &y)| self.score(x, y)).sum())
    }

    /// True when the matrix is symmetric over canonical residues (every
    /// standard substitution matrix is).
    pub fn is_symmetric(&self) -> bool {
        let k = self.alphabet.canonical_size() as u8;
        (0..k).all(|i| (0..k).all(|j| self.score(i, j) == self.score(j, i)))
    }
}

/// Accumulator of aligned residue-pair observations — the raw input of
/// the BLOSUM construction (Henikoff & Henikoff 1992): tally pairs from
/// trusted (high-identity) alignment columns, then turn the tallies into
/// a log-odds matrix with [`ScoringMatrix::log_odds`].
#[derive(Debug, Clone, PartialEq)]
pub struct PairCounts {
    /// Alphabet whose canonical codes index the table.
    pub alphabet: Alphabet,
    k: usize,
    counts: Vec<f64>,
}

impl PairCounts {
    /// Empty tally for an alphabet's canonical residues.
    pub fn new(alphabet: Alphabet) -> Self {
        let k = alphabet.canonical_size();
        PairCounts {
            alphabet,
            k,
            counts: vec![0.0; k * k],
        }
    }

    /// Record one aligned pair (order-insensitive; both cells get half).
    /// Non-canonical codes are ignored.
    pub fn add_pair(&mut self, a: u8, b: u8) {
        if (a as usize) < self.k && (b as usize) < self.k {
            self.counts[a as usize * self.k + b as usize] += 0.5;
            self.counts[b as usize * self.k + a as usize] += 0.5;
        }
    }

    /// Record every column of an ungapped aligned window pair.
    pub fn add_window(&mut self, a: &[u8], b: &[u8]) -> Result<(), SeqError> {
        if a.len() != b.len() {
            return Err(SeqError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        for (&x, &y) in a.iter().zip(b) {
            self.add_pair(x, y);
        }
        Ok(())
    }

    /// Total pairs recorded.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Marginal residue frequencies implied by the tally.
    pub fn marginals(&self) -> Vec<f64> {
        let total = self.total().max(f64::MIN_POSITIVE);
        (0..self.k)
            .map(|i| {
                (0..self.k)
                    .map(|j| self.counts[i * self.k + j])
                    .sum::<f64>()
                    / total
            })
            .collect()
    }
}

impl ScoringMatrix {
    /// Build a log-odds substitution matrix from observed pair counts —
    /// the BLOSUM procedure: `s(i,j) = round(scale · log2(q_ij / e_ij))`
    /// where `q` are observed pair frequencies (with a pseudocount),
    /// `e_ij = p_i·p_j` the expectation under the tally's marginals, and
    /// `scale` = 2 gives BLOSUM's half-bit units. Ambiguity codes score
    /// the matrix minimum; `X` rows get −1.
    pub fn log_odds(
        name: impl Into<String>,
        pairs: &PairCounts,
        scale: f64,
    ) -> Result<Self, SeqError> {
        if pairs.total() <= 0.0 {
            return Err(SeqError::Config("no pairs tallied".into()));
        }
        if scale <= 0.0 {
            return Err(SeqError::Config("scale must be positive".into()));
        }
        let k = pairs.k;
        let n = pairs.alphabet.size();
        let total = pairs.total();
        let p = pairs.marginals();
        // Jeffreys-style pseudocount keeps unseen pairs finite.
        let pseudo = 0.5;
        let mut scores = vec![0i32; n * n];
        let mut minimum = i32::MAX;
        for i in 0..k {
            for j in 0..k {
                let q = (pairs.counts[i * k + j] + pseudo) / (total + pseudo * (k * k) as f64);
                let e = (p[i] * p[j]).max(f64::MIN_POSITIVE);
                let s = (scale * (q / e).log2()).round() as i32;
                scores[i * n + j] = s;
                minimum = minimum.min(s);
            }
        }
        // Ambiguity codes: pessimistic defaults à la NCBI (X ≈ -1,
        // everything else the matrix minimum).
        let x = pairs.alphabet.wildcard() as usize;
        for i in 0..n {
            for j in 0..n {
                if i >= k || j >= k {
                    scores[i * n + j] = if i == x || j == x { -1 } else { minimum };
                }
            }
        }
        Ok(ScoringMatrix {
            name: name.into(),
            alphabet: pairs.alphabet,
            n,
            scores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(c: u8) -> u8 {
        Alphabet::Protein.encode(c).unwrap()
    }

    #[test]
    fn blosum62_spot_values() {
        let m = ScoringMatrix::blosum62();
        assert_eq!(m.score(enc(b'W'), enc(b'W')), 11);
        assert_eq!(m.score(enc(b'L'), enc(b'L')), 4);
        assert_eq!(m.score(enc(b'A'), enc(b'A')), 4);
        assert_eq!(m.score(enc(b'C'), enc(b'C')), 9);
        assert_eq!(m.score(enc(b'A'), enc(b'R')), -1);
        assert_eq!(m.score(enc(b'W'), enc(b'V')), -3);
        assert_eq!(m.score(enc(b'E'), enc(b'Z')), 4);
        assert_eq!(m.score(enc(b'*'), enc(b'*')), 1);
    }

    #[test]
    fn blosum62_is_symmetric() {
        assert!(ScoringMatrix::blosum62().is_symmetric());
    }

    #[test]
    fn blosum62_max_self_score_is_tryptophan() {
        assert_eq!(ScoringMatrix::blosum62().max_self_score(), 11);
    }

    #[test]
    fn dna_matrix_scores() {
        let m = ScoringMatrix::dna(5, -4);
        let e = |c| Alphabet::Dna.encode(c).unwrap();
        assert_eq!(m.score(e(b'A'), e(b'A')), 5);
        assert_eq!(m.score(e(b'A'), e(b'G')), -4);
        assert_eq!(m.score(e(b'N'), e(b'N')), -4, "N never rewards");
        assert!(m.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "match reward")]
    fn dna_matrix_rejects_nonpositive_match() {
        ScoringMatrix::dna(0, -1);
    }

    #[test]
    fn score_window_sums_pairs() {
        let m = ScoringMatrix::blosum62();
        let a = Alphabet::Protein.encode_seq(b"WW").unwrap();
        let b = Alphabet::Protein.encode_seq(b"WV").unwrap();
        assert_eq!(m.score_window(&a, &b).unwrap(), 11 - 3);
        assert!(m.score_window(&a, &[0]).is_err());
    }

    #[test]
    fn parser_rejects_truncated_matrix() {
        let bad = "   A  R\nA  4 -1\n"; // missing R row
        let err = ScoringMatrix::from_ncbi_text("bad", Alphabet::Protein, bad).unwrap_err();
        assert!(matches!(err, SeqError::Matrix(_)));
    }

    #[test]
    fn parser_rejects_ragged_row() {
        let bad = "   A  R\nA  4\nR -1  5\n";
        assert!(ScoringMatrix::from_ncbi_text("bad", Alphabet::Protein, bad).is_err());
    }

    #[test]
    fn parser_rejects_unknown_symbol() {
        let bad = "   A  ?\nA  4 -1\n?  1  1\n";
        assert!(ScoringMatrix::from_ncbi_text("bad", Alphabet::Protein, bad).is_err());
    }

    #[test]
    fn parser_accepts_comments_and_partial_alphabets() {
        let txt = "# toy DNA matrix\n   A  C\nA  1 -1\nC -1  1\n";
        let m = ScoringMatrix::from_ncbi_text("toy", Alphabet::Dna, txt).unwrap();
        assert_eq!(m.score(0, 0), 1);
        assert_eq!(m.score(0, 1), -1);
    }

    #[test]
    fn pair_counts_tally_symmetrically() {
        let mut pc = PairCounts::new(Alphabet::Protein);
        pc.add_pair(enc(b'L'), enc(b'I'));
        pc.add_pair(enc(b'L'), enc(b'L'));
        assert_eq!(pc.total(), 2.0);
        let m = pc.marginals();
        assert!((m[enc(b'L') as usize] - 0.75).abs() < 1e-12);
        assert!((m[enc(b'I') as usize] - 0.25).abs() < 1e-12);
        // Windows and wildcards.
        let mut pc2 = PairCounts::new(Alphabet::Protein);
        pc2.add_window(&[0, 1, crate::alphabet::PROTEIN_X], &[0, 2, 0])
            .unwrap();
        assert_eq!(pc2.total(), 2.0, "wildcard column is skipped");
        assert!(pc2.add_window(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn log_odds_matrix_from_family_alignments_is_blosum_like() {
        // Tally pairs from synthetic 80%-identity alignments and check the
        // resulting matrix has the structural properties the BLOSUM
        // construction guarantees: symmetry, positive diagonal, negative
        // expected score under the background (valid Karlin system).
        use crate::gen::{mutate_to_identity, random_sequence};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut pc = PairCounts::new(Alphabet::Protein);
        for _ in 0..50 {
            let a = random_sequence(Alphabet::Protein, 200, &mut rng);
            let b = mutate_to_identity(Alphabet::Protein, &a, 0.8, &mut rng).unwrap();
            pc.add_window(&a, &b).unwrap();
        }
        let m = ScoringMatrix::log_odds("SYN80", &pc, 2.0).unwrap();
        assert!(m.is_symmetric());
        for i in 0..20u8 {
            assert!(m.score(i, i) > 0, "diagonal {i} = {}", m.score(i, i));
        }
        // Expected score under the tally's background must be negative.
        let p = pc.marginals();
        let mean: f64 = (0..20)
            .flat_map(|i| (0..20).map(move |j| (i, j)))
            .map(|(i, j)| p[i] * p[j] * m.score(i as u8, j as u8) as f64)
            .sum();
        assert!(mean < 0.0, "mean background score {mean} must be negative");
        // Wildcard behaviour.
        let x = Alphabet::Protein.wildcard();
        assert_eq!(m.score(x, 0), -1);
    }

    #[test]
    fn log_odds_rejects_degenerate_inputs() {
        let pc = PairCounts::new(Alphabet::Protein);
        assert!(ScoringMatrix::log_odds("empty", &pc, 2.0).is_err());
        let mut pc = PairCounts::new(Alphabet::Protein);
        pc.add_pair(0, 0);
        assert!(ScoringMatrix::log_odds("bad-scale", &pc, 0.0).is_err());
    }

    #[test]
    fn user_defined_matrix_roundtrip() {
        // The paper: "The matrix used to score the alignments is a user
        // defined parameter."  Re-parse the embedded text under a new name.
        let m = ScoringMatrix::from_ncbi_text("custom", Alphabet::Protein, BLOSUM62_TEXT).unwrap();
        assert_eq!(
            m,
            ScoringMatrix {
                name: "custom".into(),
                ..ScoringMatrix::blosum62()
            }
        );
    }
}
