//! Residue composition statistics.
//!
//! The paper motivates its protein distance function with the September
//! 2015 UniProtKB/Swiss-Prot composition statistics ("Leucine appears
//! almost nine times more frequently than Tryptophan"); this module embeds
//! those background frequencies and provides composition counting used by
//! the Karlin–Altschul statistics in `mendel-align` and by the synthetic
//! generators in [`crate::gen`].

use crate::alphabet::Alphabet;

/// Swiss-Prot (release 2015_09) amino-acid background frequencies, in the
/// protein code order `ARNDCQEGHILKMFPSTWYV` (canonical 20 only). Sums to 1.
pub const SWISSPROT_FREQS: [f64; 20] = [
    0.0826, // A
    0.0553, // R
    0.0406, // N
    0.0546, // D
    0.0137, // C
    0.0393, // Q
    0.0674, // E
    0.0708, // G
    0.0227, // H
    0.0593, // I
    0.0965, // L
    0.0582, // K
    0.0241, // M
    0.0386, // F
    0.0472, // P
    0.0660, // S
    0.0535, // T
    0.0110, // W
    0.0292, // Y
    0.0686, // V
];

/// Uniform DNA base frequencies (`A`, `C`, `G`, `T`).
pub const DNA_UNIFORM_FREQS: [f64; 4] = [0.25; 4];

/// Background residue frequencies for an alphabet's canonical residues,
/// normalised to sum to exactly 1.
pub fn background_frequencies(alphabet: Alphabet) -> Vec<f64> {
    let raw: &[f64] = match alphabet {
        Alphabet::Dna => &DNA_UNIFORM_FREQS,
        Alphabet::Protein => &SWISSPROT_FREQS,
    };
    let total: f64 = raw.iter().sum();
    raw.iter().map(|f| f / total).collect()
}

/// Count canonical residue occurrences in an encoded sequence.
/// Wildcard/ambiguity codes are tallied separately in the returned
/// [`Composition::other`].
#[derive(Debug, Clone, PartialEq)]
pub struct Composition {
    /// Alphabet the counts are indexed under.
    pub alphabet: Alphabet,
    /// Per-canonical-residue counts, in code order.
    pub counts: Vec<u64>,
    /// Count of non-canonical codes (`N`, `X`, `B`, `Z`, `*`).
    pub other: u64,
}

impl Composition {
    /// Tally a single encoded sequence.
    pub fn of(alphabet: Alphabet, residues: &[u8]) -> Self {
        let mut c = Composition {
            alphabet,
            counts: vec![0; alphabet.canonical_size()],
            other: 0,
        };
        c.add(residues);
        c
    }

    /// Add another encoded sequence to the tally.
    pub fn add(&mut self, residues: &[u8]) {
        let k = self.counts.len();
        for &r in residues {
            if (r as usize) < k {
                self.counts[r as usize] += 1;
            } else {
                self.other += 1;
            }
        }
    }

    /// Total residues tallied (canonical + other).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.other
    }

    /// Observed canonical frequencies (each count over the canonical total).
    /// Returns all-zero if nothing canonical was tallied.
    pub fn frequencies(&self) -> Vec<f64> {
        let canon: u64 = self.counts.iter().sum();
        if canon == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / canon as f64)
            .collect()
    }

    /// Shannon entropy (bits per residue) of the canonical composition.
    pub fn entropy_bits(&self) -> f64 {
        self.frequencies()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swissprot_frequencies_sum_to_one() {
        let total: f64 = SWISSPROT_FREQS.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "sum = {total}");
        let norm = background_frequencies(Alphabet::Protein);
        let ntotal: f64 = norm.iter().sum();
        assert!((ntotal - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leucine_about_nine_times_tryptophan() {
        // The paper's §III-B motivation, verbatim check.
        let leu = SWISSPROT_FREQS[Alphabet::Protein.encode(b'L').unwrap() as usize];
        let trp = SWISSPROT_FREQS[Alphabet::Protein.encode(b'W').unwrap() as usize];
        let ratio = leu / trp;
        assert!((8.0..10.0).contains(&ratio), "Leu/Trp ratio = {ratio}");
    }

    #[test]
    fn composition_counts_and_other() {
        let seq = Alphabet::Protein.encode_seq(b"AALX*").unwrap();
        let c = Composition::of(Alphabet::Protein, &seq);
        assert_eq!(c.counts[0], 2); // A
        assert_eq!(c.counts[10], 1); // L
        assert_eq!(c.other, 2); // X and *
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn frequencies_ignore_non_canonical() {
        let seq = Alphabet::Dna.encode_seq(b"AANN").unwrap();
        let c = Composition::of(Alphabet::Dna, &seq);
        assert_eq!(c.frequencies()[0], 1.0);
    }

    #[test]
    fn entropy_of_uniform_dna_is_two_bits() {
        let seq = Alphabet::Dna.encode_seq(b"ACGT").unwrap();
        let c = Composition::of(Alphabet::Dna, &seq);
        assert!((c.entropy_bits() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_monotone_sequence_is_zero() {
        let seq = Alphabet::Dna.encode_seq(b"AAAA").unwrap();
        let c = Composition::of(Alphabet::Dna, &seq);
        assert_eq!(c.entropy_bits(), 0.0);
    }

    #[test]
    fn empty_composition_is_safe() {
        let c = Composition::of(Alphabet::Protein, &[]);
        assert_eq!(c.total(), 0);
        assert!(c.frequencies().iter().all(|&f| f == 0.0));
        assert_eq!(c.entropy_bits(), 0.0);
    }

    #[test]
    fn add_accumulates_across_sequences() {
        let mut c = Composition::of(Alphabet::Dna, &Alphabet::Dna.encode_seq(b"AC").unwrap());
        c.add(&Alphabet::Dna.encode_seq(b"AC").unwrap());
        assert_eq!(c.counts, vec![2, 2, 0, 0]);
    }
}
