//! Property tests for the sequence substrate.

use mendel_seq::dist::percent_identity;
use mendel_seq::gen::{mutate_to_identity, MutationModel, ResidueSampler};
use mendel_seq::stats::Composition;
use mendel_seq::{
    parse_fasta_sequences, write_fasta, Alphabet, Hamming, MatrixDistance, Metric, ScoringMatrix,
    Sequence,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn protein_codes(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..20, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encoding then decoding is the identity on valid sequences.
    #[test]
    fn encode_decode_roundtrip(codes in protein_codes(1..100)) {
        let ascii = Alphabet::Protein.decode_seq(&codes);
        let back = Alphabet::Protein.encode_seq(ascii.as_bytes()).unwrap();
        prop_assert_eq!(back, codes);
    }

    /// FASTA write → parse is the identity for any valid sequence set.
    #[test]
    fn fasta_roundtrip(
        seqs in proptest::collection::vec(protein_codes(1..60), 1..6),
        width in 1usize..100,
    ) {
        let originals: Vec<Sequence> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, codes)| Sequence::from_codes(format!("s{i}"), Alphabet::Protein, codes))
            .collect();
        let text = write_fasta(originals.iter(), width);
        let parsed = parse_fasta_sequences(&text, Alphabet::Protein).unwrap();
        prop_assert_eq!(parsed.len(), originals.len());
        for (p, o) in parsed.iter().zip(&originals) {
            prop_assert_eq!(&p.residues, &o.residues);
            prop_assert_eq!(&p.name, &o.name);
        }
    }

    /// Hamming distance is a metric on equal-length windows.
    #[test]
    fn hamming_metric_axioms(
        a in protein_codes(8..9),
        b in protein_codes(8..9),
        c in protein_codes(8..9),
    ) {
        let d = |x: &[u8], y: &[u8]| Hamming.dist(x, y);
        prop_assert_eq!(d(&a, &a), 0.0);
        prop_assert_eq!(d(&a, &b), d(&b, &a));
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c), "triangle inequality");
        prop_assert_eq!(d(&a, &b) == 0.0, a == b);
    }

    /// The *repaired* Mendel matrix satisfies the triangle inequality on
    /// windows (L1 composition preserves it).
    #[test]
    fn repaired_matrix_window_triangle(
        a in protein_codes(6..7),
        b in protein_codes(6..7),
        c in protein_codes(6..7),
    ) {
        let m = MatrixDistance::mendel(&ScoringMatrix::blosum62()).repair_metric();
        let ab = m.dist(&a[..], &b[..]);
        let bc = m.dist(&b[..], &c[..]);
        let ac = m.dist(&a[..], &c[..]);
        prop_assert!(ac <= ab + bc + 1e-4, "ac={ac} ab={ab} bc={bc}");
    }

    /// mutate_to_identity produces exactly the requested divergence and
    /// percent_identity measures it back.
    #[test]
    fn mutation_and_identity_are_inverse(
        codes in protein_codes(40..200),
        identity in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = mutate_to_identity(Alphabet::Protein, &codes, identity, &mut rng).unwrap();
        prop_assert_eq!(m.len(), codes.len());
        let measured = percent_identity(&codes, &m).unwrap() as f64;
        let expected = 1.0 - ((1.0 - identity) * codes.len() as f64).round() / codes.len() as f64;
        prop_assert!((measured - expected).abs() < 1e-6, "measured {measured} expected {expected}");
    }

    /// Substitution-only mutation preserves length; indel rates move it.
    #[test]
    fn mutation_model_length_behaviour(
        codes in protein_codes(50..150),
        sub in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = MutationModel::substitutions(sub).mutate(Alphabet::Protein, &codes, &mut rng);
        prop_assert_eq!(m.len(), codes.len());
    }

    /// Sampled residues are always canonical.
    #[test]
    fn sampler_stays_canonical(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let s = ResidueSampler::background(Alphabet::Protein);
        for _ in 0..64 {
            prop_assert!((s.sample(&mut rng) as usize) < 20);
        }
    }

    /// Composition counts always sum to the sequence length.
    #[test]
    fn composition_total_matches_length(codes in proptest::collection::vec(0u8..24, 0..200)) {
        let c = Composition::of(Alphabet::Protein, &codes);
        prop_assert_eq!(c.total() as usize, codes.len());
        let freq_sum: f64 = c.frequencies().iter().sum();
        prop_assert!(freq_sum == 0.0 || (freq_sum - 1.0).abs() < 1e-9);
    }

    /// Window scoring is symmetric for symmetric matrices.
    #[test]
    fn score_window_symmetry(a in protein_codes(10..11), b in protein_codes(10..11)) {
        let m = ScoringMatrix::blosum62();
        prop_assert_eq!(m.score_window(&a, &b).unwrap(), m.score_window(&b, &a).unwrap());
    }

    /// Reverse complement is an involution and preserves length for any
    /// DNA (including ambiguous bases).
    #[test]
    fn reverse_complement_involution(dna in proptest::collection::vec(0u8..5, 0..150)) {
        use mendel_seq::reverse_complement;
        let rc = reverse_complement(&dna);
        prop_assert_eq!(rc.len(), dna.len());
        prop_assert_eq!(reverse_complement(&rc), dna);
    }

    /// Translation frame arithmetic: frame f yields ⌊(L−f)/3⌋ residues,
    /// all valid protein codes; the three forward frames tile the input.
    #[test]
    fn translation_frame_lengths(dna in proptest::collection::vec(0u8..5, 0..120)) {
        use mendel_seq::translate;
        for frame in 0..3usize {
            let p = translate(&dna, frame).unwrap();
            prop_assert_eq!(p.len(), dna.len().saturating_sub(frame) / 3);
            for &aa in &p {
                prop_assert!((aa as usize) < Alphabet::Protein.size());
            }
        }
    }

    /// Packed DNA round-trips exactly and compresses canonical bases 4:1.
    #[test]
    fn packed_dna_roundtrip(dna in proptest::collection::vec(0u8..5, 0..300)) {
        use mendel_seq::PackedDna;
        let p = PackedDna::pack(&dna);
        prop_assert_eq!(p.unpack(), dna.clone());
        prop_assert_eq!(p.len(), dna.len());
        for (i, &c) in dna.iter().enumerate() {
            prop_assert_eq!(p.get(i), c);
        }
        let n_count = dna.iter().filter(|&&c| c >= 4).count();
        prop_assert_eq!(p.exception_count(), n_count);
    }

    /// FASTQ text generated from arbitrary reads parses back exactly.
    #[test]
    fn fastq_roundtrip(
        reads in proptest::collection::vec(
            ("[a-zA-Z0-9_]{1,10}", proptest::collection::vec(0u8..4, 1..60)),
            1..5,
        )
    ) {
        use mendel_seq::parse_fastq;
        let mut text = String::new();
        for (name, codes) in &reads {
            let bases = Alphabet::Dna.decode_seq(codes);
            let qual: String = std::iter::repeat('I').take(codes.len()).collect();
            text.push_str(&format!("@{name}\n{bases}\n+\n{qual}\n"));
        }
        let parsed = parse_fastq(&text).unwrap();
        prop_assert_eq!(parsed.len(), reads.len());
        for (rec, (name, codes)) in parsed.iter().zip(&reads) {
            prop_assert_eq!(&rec.name, name);
            let expect = Alphabet::Dna.decode_seq(codes);
            prop_assert_eq!(&rec.bases, expect.as_bytes());
            prop_assert!(rec.quality.iter().all(|&q| q == 40));
        }
    }
}
