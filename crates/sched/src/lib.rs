//! # mendel-sched — work-stealing query scheduler with admission control
//!
//! The throughput layer's execution substrate (DESIGN.md §15.3). A
//! [`Scheduler`] owns a small pool of worker threads, each with its own
//! deque of jobs:
//!
//! * **Submission** round-robins jobs across the per-worker deques and
//!   rings a wake channel.
//! * **Workers** pop their own deque LIFO (freshly pushed work is
//!   cache-hot) and, when empty, *steal* from other deques FIFO (the
//!   oldest job has waited longest and is least likely to be contended).
//!   Exactly one deque lock is ever held at a time, so the lock-order
//!   graph over the pool is trivially acyclic (see the audit fixture
//!   corpus's `worksteal` pattern).
//! * **Admission control** bounds the number of in-flight *queries*: a
//!   caller takes an [`AdmissionPermit`] per query and is shed with
//!   [`SchedError::Shed`] — never blocked or queued — once
//!   `max_in_flight` permits are out. Shedding at the door keeps tail
//!   latency bounded under overload instead of letting the queue grow
//!   without limit.
//!
//! Observability counters live under `mendel.sched.*` in the
//! [`mendel_obs::Registry`] the scheduler is built against: `submitted`,
//! `completed`, `steals`, `shed`, `job_panics` counters and
//! `queue_depth` / `in_flight` gauges.

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use mendel_obs::{Counter, Gauge, Registry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of work: boxed closure run once on a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Scheduler sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Worker threads (and deques). Clamped to at least 1.
    pub workers: usize,
    /// Admission bound: maximum simultaneously outstanding
    /// [`AdmissionPermit`]s before [`Scheduler::admit`] sheds.
    pub max_in_flight: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(2, 8);
        SchedConfig {
            workers,
            max_in_flight: 256,
        }
    }
}

/// Scheduler refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedError {
    /// The admission bound was hit: the query is shed, not queued. The
    /// caller should surface an overload error upstream.
    Shed {
        /// Permits outstanding when the request arrived.
        in_flight: usize,
        /// The configured bound.
        limit: usize,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Shed { in_flight, limit } => write!(
                f,
                "query shed by admission control: {in_flight} in flight ≥ limit {limit}"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// RAII admission slot: holding one means a query is in flight; dropping
/// it releases the slot.
pub struct AdmissionPermit {
    inner: Arc<Inner>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        // audit:ordering(Relaxed): pure admission counter; the bound is enforced by the RMW itself and no other memory rides on it
        self.inner.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.inner.counters.in_flight.add(-1);
    }
}

/// Handle to one submitted job's result. `wait` blocks until the job ran
/// (or returns `None` if it panicked and was contained by the worker).
pub struct JobHandle<R> {
    rx: Receiver<R>,
}

impl<R> JobHandle<R> {
    /// Block until the job completes and take its result.
    pub fn wait(self) -> Option<R> {
        self.rx.recv().ok()
    }
}

struct SchedCounters {
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    steals: Arc<Counter>,
    shed: Arc<Counter>,
    job_panics: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
}

impl SchedCounters {
    fn registered(registry: &Registry) -> Self {
        let scope = registry.scoped("mendel.sched");
        SchedCounters {
            submitted: scope.counter("submitted"),
            completed: scope.counter("completed"),
            steals: scope.counter("steals"),
            shed: scope.counter("shed"),
            job_panics: scope.counter("job_panics"),
            queue_depth: scope.gauge("queue_depth"),
            in_flight: scope.gauge("in_flight"),
        }
    }
}

struct Inner {
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// Outstanding admission permits.
    in_flight: AtomicUsize,
    max_in_flight: usize,
    shutdown: AtomicBool,
    wake_tx: Sender<()>,
    wake_rx: Receiver<()>,
    counters: SchedCounters,
}

impl Inner {
    /// LIFO pop from the worker's own deque (freshest job is cache-hot).
    /// Exactly one lock held, and the guard dies before the job runs.
    fn pop_local(&self, me: usize) -> Option<Job> {
        self.deques[me].lock().pop_back()
    }

    /// FIFO steal sweep over the other deques (oldest job has waited
    /// longest), starting just past the thief so victims rotate. One
    /// lock at a time — no nesting.
    fn steal(&self, me: usize) -> Option<Job> {
        let n = self.deques.len();
        for k in 1..n {
            let victim = (me + k) % n;
            let job = self.deques[victim].lock().pop_front();
            if let Some(job) = job {
                self.counters.steals.inc();
                return Some(job);
            }
        }
        None
    }
}

/// Work-stealing job scheduler. Dropping it drains nothing: shutdown is
/// immediate, but every already-popped job finishes and `wait`ing
/// callers of unfinished jobs observe a disconnect (`None`), never a
/// hang.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    config: SchedConfig,
}

impl Scheduler {
    /// Build a scheduler, registering its `mendel.sched.*` metrics in
    /// `registry`.
    pub fn new(config: SchedConfig, registry: &Registry) -> Self {
        let workers = config.workers.max(1);
        let (wake_tx, wake_rx) = channel::unbounded();
        let inner = Arc::new(Inner {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            max_in_flight: config.max_in_flight,
            shutdown: AtomicBool::new(false),
            wake_tx,
            wake_rx,
            counters: SchedCounters::registered(registry),
        });
        let handles = (0..workers)
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mendel-sched-{me}"))
                    .spawn(move || worker_loop(inner, me))
                    .unwrap_or_else(|e| {
                        // audit:allow(panic): a scheduler that cannot spawn its workers cannot run jobs at all; failing loudly at construction beats hanging every query later
                        panic!("failed to spawn scheduler worker {me}: {e}")
                    })
            })
            .collect();
        Scheduler {
            inner,
            workers: handles,
            config: SchedConfig { workers, ..config },
        }
    }

    /// Convenience constructor with a throwaway metrics registry.
    pub fn detached(config: SchedConfig) -> Self {
        Self::new(config, &Registry::new())
    }

    /// The configuration the pool was built with (workers clamped).
    pub fn config(&self) -> SchedConfig {
        self.config
    }

    /// Take an admission slot for one query, or shed. Never blocks.
    pub fn admit(&self) -> Result<AdmissionPermit, SchedError> {
        // audit:ordering(Relaxed): the RMW itself is atomic, which is all the bound needs; no memory is published via this counter
        let prev = self.inner.in_flight.fetch_add(1, Ordering::Relaxed);
        if prev >= self.inner.max_in_flight {
            // audit:ordering(Relaxed): undo of the optimistic increment.
            self.inner.in_flight.fetch_sub(1, Ordering::Relaxed);
            self.inner.counters.shed.inc();
            return Err(SchedError::Shed {
                in_flight: prev,
                limit: self.inner.max_in_flight,
            });
        }
        self.inner.counters.in_flight.add(1);
        Ok(AdmissionPermit {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Enqueue a fire-and-forget job on the next deque (round-robin) and
    /// wake a worker. Jobs are not admission-bounded — bound *queries*
    /// with [`Self::admit`]; their fan-out tasks always run.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        // audit:ordering(Relaxed): round-robin cursor; any interleaving of placements is correct (stealing rebalances anyway)
        let slot = self.inner.next.fetch_add(1, Ordering::Relaxed) % self.inner.deques.len();
        self.inner.deques[slot].lock().push_back(Box::new(job));
        self.inner.counters.submitted.inc();
        self.inner.counters.queue_depth.add(1);
        let _ = self.inner.wake_tx.send(());
    }

    /// Enqueue a job and hand back a handle to its result.
    pub fn run<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> JobHandle<R> {
        let (tx, rx) = channel::unbounded();
        self.submit(move || {
            let _ = tx.send(f());
        });
        JobHandle { rx }
    }

    /// Current queue depth across all deques (gauge-backed, approximate
    /// under concurrency).
    pub fn queue_depth(&self) -> i64 {
        self.inner.counters.queue_depth.get()
    }

    /// Outstanding admission permits.
    pub fn in_flight(&self) -> usize {
        // audit:ordering(Relaxed): monitoring read of an independent counter; staleness is acceptable
        self.inner.in_flight.load(Ordering::Relaxed)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // audit:ordering(Release): pairs with the Acquire load in worker_loop so workers that observe the flag also observe every write made before shutdown was requested
        self.inner.shutdown.store(true, Ordering::Release);
        for _ in &self.workers {
            let _ = self.inner.wake_tx.send(());
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>, me: usize) {
    loop {
        // audit:ordering(Acquire): pairs with the Release store in `Scheduler::drop`; seeing shutdown implies seeing everything the dropping thread wrote first
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let job = inner.pop_local(me).or_else(|| inner.steal(me));
        match job {
            Some(job) => {
                inner.counters.queue_depth.add(-1);
                // Contain job panics: a poisoned query must not take the
                // worker (and every queued job behind it) down with it.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                if outcome.is_err() {
                    inner.counters.job_panics.inc();
                }
                inner.counters.completed.inc();
            }
            None => match inner.wake_rx.recv_timeout(Duration::from_millis(10)) {
                Ok(()) | Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn jobs_run_and_results_arrive() {
        let sched = Scheduler::detached(SchedConfig {
            workers: 2,
            max_in_flight: 8,
        });
        let handles: Vec<_> = (0..16u64).map(|i| sched.run(move || i * i)).collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, Some((i * i) as u64));
        }
    }

    #[test]
    fn admission_sheds_past_bound_and_recovers() {
        let reg = Registry::new();
        let sched = Scheduler::new(
            SchedConfig {
                workers: 1,
                max_in_flight: 2,
            },
            &reg,
        );
        let p1 = sched.admit().unwrap();
        let p2 = sched.admit().unwrap();
        let shed = sched.admit();
        assert_eq!(
            shed.err(),
            Some(SchedError::Shed {
                in_flight: 2,
                limit: 2
            })
        );
        assert_eq!(sched.in_flight(), 2);
        drop(p1);
        let p3 = sched.admit().expect("slot freed by dropped permit");
        drop(p2);
        drop(p3);
        assert_eq!(sched.in_flight(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mendel.sched.shed"), 1);
        assert_eq!(snap.gauge("mendel.sched.in_flight"), 0);
    }

    #[test]
    fn blocked_worker_gets_its_queue_stolen() {
        let reg = Registry::new();
        let sched = Scheduler::new(
            SchedConfig {
                workers: 2,
                max_in_flight: 64,
            },
            &reg,
        );
        // Gate both workers so subsequent submissions pile up in the
        // deques deterministically. Each gate job announces entry before
        // blocking, so the test only proceeds once both workers really
        // are inside a gate.
        let (entered_tx, entered_rx) = channel::unbounded::<()>();
        let (gate_a_tx, gate_a_rx) = channel::unbounded::<()>();
        let (gate_b_tx, gate_b_rx) = channel::unbounded::<()>();
        let entered_a = entered_tx.clone();
        let ga = sched.run(move || {
            let _ = entered_a.send(());
            let _ = gate_a_rx.recv();
        });
        let gb = sched.run(move || {
            let _ = entered_tx.send(());
            let _ = gate_b_rx.recv();
        });
        entered_rx.recv().unwrap();
        entered_rx.recv().unwrap();
        // Both workers are now blocked inside a gate job; the 8 jobs
        // below land 4-and-4 on the two deques.
        let done = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let done = Arc::clone(&done);
                sched.run(move || {
                    // audit:ordering(Relaxed): test tally.
                    done.fetch_add(1, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        // Free exactly one worker: it must drain its own deque *and*
        // steal the blocked worker's jobs for all 8 to complete.
        gate_a_tx.send(()).unwrap();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), Some(i as u64));
        }
        // audit:ordering(Relaxed): test tally.
        assert_eq!(done.load(Ordering::Relaxed), 8);
        let steals = reg.snapshot().counter("mendel.sched.steals");
        assert!(steals >= 1, "free worker must have stolen (saw {steals})");
        gate_b_tx.send(()).unwrap();
        ga.wait();
        gb.wait();
        drop(sched);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mendel.sched.completed"), 10);
        assert_eq!(snap.gauge("mendel.sched.queue_depth"), 0);
    }

    #[test]
    fn panicking_job_is_contained() {
        let reg = Registry::new();
        let sched = Scheduler::new(
            SchedConfig {
                workers: 1,
                max_in_flight: 4,
            },
            &reg,
        );
        let bad = sched.run(|| {
            // audit:allow(panic): deliberately hostile job for the
            // containment test.
            panic!("poisoned query");
        });
        assert_eq!(bad.wait(), None);
        // The worker survives and keeps serving.
        assert_eq!(sched.run(|| 7).wait(), Some(7));
        assert_eq!(reg.snapshot().counter("mendel.sched.job_panics"), 1);
    }

    #[test]
    fn drop_never_hangs_with_queued_jobs() {
        let sched = Scheduler::detached(SchedConfig {
            workers: 1,
            max_in_flight: 4,
        });
        let (gate_tx, gate_rx) = channel::unbounded::<()>();
        let _g = sched.run(move || {
            let _ = gate_rx.recv();
        });
        for _ in 0..4 {
            sched.submit(|| {});
        }
        gate_tx.send(()).unwrap();
        drop(sched); // must join, not deadlock
    }
}
