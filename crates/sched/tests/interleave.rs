//! Deterministic two-thread interleaving stress for the scheduler's
//! work-stealing deques (the pattern `ci.sh` step 6 runs for
//! `mendel-obs`, extended here to `mendel-sched`).
//!
//! Two phases, mirroring the obs interleave suite:
//!
//! 1. **Lockstep**: an owner thread and a thief thread alternate
//!    strictly over a live scheduler's public surface (submit on even
//!    steps, result-draining on odd steps), so every pair of racing
//!    deque operations is driven through both orders — exactly what
//!    ThreadSanitizer and Miri want to see.
//! 2. **Free-running**: submitters race the pool with no coordination
//!    and only schedule-independent invariants are asserted: every job
//!    runs exactly once, counters balance, gauges return to zero.

use crossbeam::channel;
use mendel_obs::Registry;
use mendel_sched::{SchedConfig, Scheduler};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Run `op(step)` for `steps` steps on two threads in strict
/// alternation: thread 0 performs even steps, thread 1 odd steps, and
/// step `n + 1` never starts before step `n` finished.
fn lockstep(steps: usize, op: impl Fn(usize) + Send + Sync) {
    let turn = AtomicUsize::new(0);
    let op = &op;
    let turn = &turn;
    std::thread::scope(|scope| {
        for who in 0..2usize {
            scope.spawn(move || loop {
                // audit:ordering(Acquire): pairs with the Release store
                // below; seeing turn n implies seeing step n-1's writes.
                let now = turn.load(Ordering::Acquire);
                if now >= steps {
                    break;
                }
                if now % 2 != who {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                    continue;
                }
                op(now);
                // audit:ordering(Release): publishes this step's effects
                // to the Acquire load above.
                turn.store(now + 1, Ordering::Release);
            });
        }
    });
}

#[test]
fn lockstep_submit_and_drain() {
    let reg = Registry::new();
    let sched = Scheduler::new(
        SchedConfig {
            workers: 2,
            max_in_flight: 64,
        },
        &reg,
    );
    const STEPS: usize = 64;
    let hits = Arc::new(AtomicU64::new(0));
    let (tx, rx) = channel::unbounded::<u64>();
    {
        let sched = &sched;
        let hits2 = Arc::clone(&hits);
        lockstep(STEPS, move |step| {
            if step % 2 == 0 {
                // Even steps: the "owner" side pushes work into the pool.
                let hits = Arc::clone(&hits2);
                let tx = tx.clone();
                sched.submit(move || {
                    // audit:ordering(Relaxed): test tally.
                    hits.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(step as u64);
                });
            } else {
                // Odd steps: the "thief" side races the workers for
                // results (and forces both orders of submit vs. pop).
                let _ = rx.try_recv();
            }
        });
    }
    // Drain whatever the odd steps didn't take; every submitted job must
    // have run exactly once.
    let submitted = (STEPS + 1) / 2;
    while hits.load(Ordering::Relaxed) < submitted as u64 {
        // audit:ordering(Relaxed): test tally (the loop load above).
        std::thread::yield_now();
    }
    drop(sched);
    assert_eq!(hits.load(Ordering::Relaxed), submitted as u64);
    let snap = reg.snapshot();
    assert_eq!(snap.counter("mendel.sched.submitted"), submitted as u64);
    assert_eq!(snap.counter("mendel.sched.completed"), submitted as u64);
    assert_eq!(snap.gauge("mendel.sched.queue_depth"), 0);
}

#[test]
fn free_running_submitters_lose_no_jobs() {
    let reg = Registry::new();
    let sched = Scheduler::new(
        SchedConfig {
            workers: 3,
            max_in_flight: 1024,
        },
        &reg,
    );
    const PER_THREAD: usize = 200;
    let sum = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let sched = &sched;
            let sum = Arc::clone(&sum);
            scope.spawn(move || {
                for i in 0..PER_THREAD as u64 {
                    let sum = Arc::clone(&sum);
                    sched.submit(move || {
                        // audit:ordering(Relaxed): test tally.
                        sum.fetch_add(t * 1000 + i, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    let expect: u64 = (0..2u64)
        .flat_map(|t| (0..PER_THREAD as u64).map(move |i| t * 1000 + i))
        .sum();
    while sum.load(Ordering::Relaxed) != expect {
        // audit:ordering(Relaxed): test tally (the loop load above).
        std::thread::yield_now();
    }
    drop(sched);
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("mendel.sched.completed"),
        2 * PER_THREAD as u64
    );
    assert_eq!(snap.gauge("mendel.sched.queue_depth"), 0);
    assert_eq!(sum.load(Ordering::Relaxed), expect);
}

#[test]
fn free_running_admission_is_exact_under_races() {
    let sched = Scheduler::detached(SchedConfig {
        workers: 2,
        max_in_flight: 8,
    });
    // Two threads race admit/drop; the bound must never be exceeded and
    // every permit must be returned.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let sched = &sched;
            scope.spawn(move || {
                let mut held = Vec::new();
                for round in 0..100usize {
                    match sched.admit() {
                        Ok(p) => held.push(p),
                        Err(_) => {
                            held.clear();
                        }
                    }
                    assert!(sched.in_flight() <= 8 + 1, "bound breached at {round}");
                    if round % 3 == 0 {
                        held.pop();
                    }
                }
            });
        }
    });
    assert_eq!(sched.in_flight(), 0);
}
