//! Karlin–Altschul statistics for local alignment scores.
//!
//! The paper ranks gapped alignments by an expectation value `E` (its
//! Table I parameter). For an ungapped scoring system with residue
//! background frequencies `p_i`, Karlin & Altschul (PNAS 1990) showed
//! that the number of segment pairs scoring ≥ `S` between random
//! sequences of lengths `m`, `n` is Poisson with mean
//!
//! ```text
//! E = K · m · n · e^(−λS)
//! ```
//!
//! where `λ` is the unique positive solution of `Σ p(s)·e^(λs) = 1` over
//! the score distribution `p(s) = Σ_{i,j : s_ij = s} p_i p_j`, and `K` is
//! computable from the partial-sum series (their eq. (4); NCBI's
//! `BlastKarlinLHtoK` implements the same series). This module solves both
//! numerically for *any* scoring matrix and background composition, and
//! ships the published gapped constants for BLOSUM62 (gapped statistics
//! have no analytic form; BLAST also uses precomputed tables).

use mendel_seq::stats::background_frequencies;
use mendel_seq::ScoringMatrix;
use serde::{Deserialize, Serialize};

/// The (λ, K, H) triple describing a scoring system's extreme-value
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KarlinParams {
    /// Scale of the score distribution (nats per score unit).
    pub lambda: f64,
    /// Search-space scaling constant.
    pub k: f64,
    /// Relative entropy of the aligned-pair distribution (nats per pair).
    pub h: f64,
}

impl KarlinParams {
    /// Published ungapped BLOSUM62 constants (Robinson–Robinson
    /// composition; BLAST's `ungappedParams` for blastp).
    pub const BLOSUM62_UNGAPPED: KarlinParams = KarlinParams {
        lambda: 0.3176,
        k: 0.134,
        h: 0.4012,
    };

    /// Published gapped BLOSUM62 constants for gap open 11 / extend 1
    /// (BLAST's default blastp configuration).
    pub const BLOSUM62_GAPPED_11_1: KarlinParams = KarlinParams {
        lambda: 0.267,
        k: 0.041,
        h: 0.14,
    };

    /// Bit score of a raw score under these parameters.
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// Expectation value for a raw score against a search space of
    /// `m × n` residues.
    pub fn evalue(&self, raw: i32, m: usize, n: usize) -> f64 {
        self.k * m as f64 * n as f64 * (-self.lambda * raw as f64).exp()
    }
}

/// Convenience: E-value under explicit parameters.
pub fn evalue(params: &KarlinParams, raw: i32, m: usize, n: usize) -> f64 {
    params.evalue(raw, m, n)
}

/// Convenience: bit score under explicit parameters.
pub fn bit_score(params: &KarlinParams, raw: i32) -> f64 {
    params.bit_score(raw)
}

/// Errors from the numeric solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KarlinError {
    /// The expected score is non-negative; local alignment statistics
    /// require a negative drift.
    NonNegativeDrift,
    /// No positive score exists; nothing can ever align.
    NoPositiveScore,
    /// The λ iteration failed to converge.
    NoConvergence,
}

impl std::fmt::Display for KarlinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KarlinError::NonNegativeDrift => {
                write!(
                    f,
                    "expected score is non-negative; scoring system is invalid"
                )
            }
            KarlinError::NoPositiveScore => write!(f, "no positive score in the matrix"),
            KarlinError::NoConvergence => write!(f, "lambda iteration failed to converge"),
        }
    }
}

impl std::error::Error for KarlinError {}

/// The integer score distribution induced by a matrix and a composition.
#[derive(Debug, Clone)]
struct ScoreDist {
    /// Lowest score with positive probability.
    low: i32,
    /// `probs[k]` = P(score = low + k).
    probs: Vec<f64>,
}

impl ScoreDist {
    fn from_matrix(matrix: &ScoringMatrix, freqs: &[f64]) -> Self {
        let k = matrix.alphabet.canonical_size();
        assert_eq!(freqs.len(), k, "composition must cover canonical residues");
        let mut low = i32::MAX;
        let mut high = i32::MIN;
        for i in 0..k as u8 {
            for j in 0..k as u8 {
                let s = matrix.score(i, j);
                low = low.min(s);
                high = high.max(s);
            }
        }
        let mut probs = vec![0.0; (high - low + 1) as usize];
        for i in 0..k {
            for j in 0..k {
                let s = matrix.score(i as u8, j as u8);
                probs[(s - low) as usize] += freqs[i] * freqs[j];
            }
        }
        ScoreDist { low, probs }
    }

    fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(k, &p)| (self.low + k as i32) as f64 * p)
            .sum()
    }

    fn high(&self) -> i32 {
        self.low + self.probs.len() as i32 - 1
    }

    /// `Σ p(s)·e^(λs)`.
    fn mgf(&self, lambda: f64) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(k, &p)| p * (lambda * (self.low + k as i32) as f64).exp())
            .sum()
    }

    /// Lattice span: gcd of all scores in the support.
    fn span(&self) -> i32 {
        let mut d = 0i64;
        for (k, &p) in self.probs.iter().enumerate() {
            if p > 0.0 {
                let s = (self.low + k as i32).unsigned_abs() as i64;
                if s != 0 {
                    d = gcd(d, s);
                }
            }
        }
        d.max(1) as i32
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Solve (λ, K, H) for an ungapped scoring system defined by `matrix` and
/// canonical-residue background frequencies `freqs` (pass
/// [`background_frequencies`] output, or any measured composition).
pub fn solve_ungapped(matrix: &ScoringMatrix, freqs: &[f64]) -> Result<KarlinParams, KarlinError> {
    let dist = ScoreDist::from_matrix(matrix, freqs);
    if dist.mean() >= 0.0 {
        return Err(KarlinError::NonNegativeDrift);
    }
    if dist.high() <= 0 {
        return Err(KarlinError::NoPositiveScore);
    }
    let lambda = solve_lambda(&dist)?;
    let h = lambda
        * dist
            .probs
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                let s = (dist.low + k as i32) as f64;
                p * s * (lambda * s).exp()
            })
            .sum::<f64>();
    let k = solve_k(&dist, lambda, h);
    Ok(KarlinParams { lambda, k, h })
}

/// Solve (λ, K, H) using the alphabet's background composition.
pub fn solve_ungapped_background(matrix: &ScoringMatrix) -> Result<KarlinParams, KarlinError> {
    solve_ungapped(matrix, &background_frequencies(matrix.alphabet))
}

/// Bisection on `mgf(λ) − 1`: the function is 0 at λ=0, dips negative
/// (negative drift), and grows to +∞, so the positive root brackets
/// cleanly once we find an upper bound.
fn solve_lambda(dist: &ScoreDist) -> Result<f64, KarlinError> {
    let mut hi = 0.5f64;
    let mut guard = 0;
    while dist.mgf(hi) < 1.0 {
        hi *= 2.0;
        guard += 1;
        if guard > 64 {
            return Err(KarlinError::NoConvergence);
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if dist.mgf(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    if lambda <= 0.0 || !lambda.is_finite() {
        return Err(KarlinError::NoConvergence);
    }
    Ok(lambda)
}

/// K via the partial-sum series of Karlin & Altschul (1990), eq. (4):
///
/// ```text
/// σ = Σ_{k≥1} (1/k) · [ P(S_k ≥ 0) + E(e^(λ·S_k); S_k < 0) ]
/// K = δ · λ · e^(−2σ) / ( H · (1 − e^(−λδ)) )
/// ```
///
/// where `S_k` is the k-step random walk of scores and `δ` the lattice
/// span. Both bracketed terms decay exponentially (the first under the
/// original measure, the second under the λ-tilted measure), so the
/// series converges in a few dozen terms.
fn solve_k(dist: &ScoreDist, lambda: f64, h: f64) -> f64 {
    let step = &dist.probs;
    let low = dist.low as i64;
    // walk[k] = P(S_j = walk_low + k) for the current j.
    let mut walk: Vec<f64> = step.clone();
    let mut walk_low = low;
    let mut sigma = 0.0f64;
    const MAX_ITER: usize = 128;
    const EPS: f64 = 1e-12;
    for j in 1..=MAX_ITER {
        let mut term = 0.0f64;
        for (k, &p) in walk.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let s = walk_low + k as i64;
            if s >= 0 {
                term += p;
            } else {
                term += p * (lambda * s as f64).exp();
            }
        }
        sigma += term / j as f64;
        if term < EPS {
            break;
        }
        if j < MAX_ITER {
            // Convolve the walk with one more step.
            let mut next = vec![0.0f64; walk.len() + step.len() - 1];
            for (a, &pa) in walk.iter().enumerate() {
                if pa == 0.0 {
                    continue;
                }
                for (b, &pb) in step.iter().enumerate() {
                    next[a + b] += pa * pb;
                }
            }
            walk = next;
            walk_low += low;
        }
    }
    let delta = dist.span() as f64;
    delta * lambda * (-2.0 * sigma).exp() / (h * (1.0 - (-lambda * delta).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::Alphabet;

    #[test]
    fn blosum62_lambda_matches_published_value() {
        let p = solve_ungapped_background(&ScoringMatrix::blosum62()).unwrap();
        // Published 0.3176 uses Robinson–Robinson composition; Swiss-Prot
        // composition lands within a couple of percent.
        assert!((p.lambda - 0.3176).abs() < 0.01, "lambda = {}", p.lambda);
    }

    #[test]
    fn blosum62_k_and_h_match_published_values() {
        let p = solve_ungapped_background(&ScoringMatrix::blosum62()).unwrap();
        assert!((p.k - 0.134).abs() < 0.03, "K = {}", p.k);
        assert!((p.h - 0.4012).abs() < 0.05, "H = {}", p.h);
    }

    #[test]
    fn plus_one_minus_one_dna_has_lambda_ln3() {
        // Match probability 1/4 ⇒ 0.25·e^λ + 0.75·e^(−λ) = 1 ⇒ e^λ = 3.
        let m = ScoringMatrix::dna(1, -1);
        let p = solve_ungapped_background(&m).unwrap();
        assert!(
            (p.lambda - 3.0f64.ln()).abs() < 1e-6,
            "lambda = {}",
            p.lambda
        );
    }

    #[test]
    fn lattice_span_scales_lambda_inversely() {
        // Doubling all scores must halve lambda exactly.
        let a = solve_ungapped_background(&ScoringMatrix::dna(1, -1)).unwrap();
        let b = solve_ungapped_background(&ScoringMatrix::dna(2, -2)).unwrap();
        assert!((b.lambda - a.lambda / 2.0).abs() < 1e-9);
        // ...and K and H are invariant under the rescaling.
        assert!((b.k - a.k).abs() < 1e-6, "K {} vs {}", b.k, a.k);
        assert!((b.h - a.h).abs() < 1e-9, "H {} vs {}", b.h, a.h);
    }

    #[test]
    fn positive_drift_is_rejected() {
        // match 5 / mismatch -1 at uniform DNA: mean = 0.25·5 − 0.75 > 0.
        let m = ScoringMatrix::dna(5, -1);
        assert_eq!(
            solve_ungapped_background(&m).unwrap_err(),
            KarlinError::NonNegativeDrift
        );
    }

    #[test]
    fn evalue_decreases_exponentially_in_score() {
        let p = KarlinParams::BLOSUM62_UNGAPPED;
        let e50 = p.evalue(50, 1000, 1_000_000);
        let e60 = p.evalue(60, 1000, 1_000_000);
        assert!(e60 < e50);
        let ratio = e50 / e60;
        assert!((ratio - (10.0 * p.lambda).exp()).abs() / ratio < 1e-9);
    }

    #[test]
    fn evalue_scales_linearly_with_search_space() {
        let p = KarlinParams::BLOSUM62_GAPPED_11_1;
        let e1 = p.evalue(80, 500, 1_000);
        let e2 = p.evalue(80, 500, 2_000);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bit_score_roundtrip() {
        // E = m·n·2^(−bits) must agree with the raw formula.
        let p = KarlinParams::BLOSUM62_UNGAPPED;
        let (m, n, s) = (700usize, 9_000usize, 64);
        let bits = p.bit_score(s);
        let via_bits = m as f64 * n as f64 * 2f64.powf(-bits);
        let direct = p.evalue(s, m, n);
        assert!((via_bits - direct).abs() / direct < 1e-9);
    }

    #[test]
    fn helper_functions_delegate() {
        let p = KarlinParams::BLOSUM62_UNGAPPED;
        assert_eq!(evalue(&p, 42, 10, 10), p.evalue(42, 10, 10));
        assert_eq!(bit_score(&p, 42), p.bit_score(42));
    }

    #[test]
    fn score_dist_sums_to_one() {
        let d = ScoreDist::from_matrix(
            &ScoringMatrix::blosum62(),
            &background_frequencies(Alphabet::Protein),
        );
        let total: f64 = d.probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(d.low, -4);
        assert_eq!(d.high(), 11);
        assert_eq!(d.span(), 1);
    }

    #[test]
    fn span_of_even_scores_is_two() {
        let d = ScoreDist::from_matrix(
            &ScoringMatrix::dna(2, -2),
            &background_frequencies(Alphabet::Dna),
        );
        assert_eq!(d.span(), 2);
    }
}
