//! Alignment representation: operations, gap penalties, and summaries.

use mendel_seq::Alphabet;
use serde::{Deserialize, Serialize};

/// Affine gap penalties. A gap of length `g` costs `open + extend * g`
/// (both values are positive; they are *subtracted* from scores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapPenalties {
    /// One-time cost for opening a gap.
    pub open: i32,
    /// Per-residue cost for extending a gap.
    pub extend: i32,
}

impl GapPenalties {
    /// BLAST's protein default: 11/1.
    pub const BLASTP_DEFAULT: GapPenalties = GapPenalties {
        open: 11,
        extend: 1,
    };
    /// BLAST's nucleotide default: 5/2.
    pub const BLASTN_DEFAULT: GapPenalties = GapPenalties { open: 5, extend: 2 };

    /// Cost of a gap of `len` residues.
    #[inline]
    pub fn cost(&self, len: usize) -> i32 {
        debug_assert!(len > 0);
        self.open + self.extend * len as i32
    }
}

/// One aligned column (or run of columns) in an alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignOp {
    /// `count` columns pairing query and subject residues (match or
    /// substitution — distinguished by looking at the sequences).
    Diagonal(u32),
    /// `count` residues present in the query but not the subject
    /// (insertion relative to the subject).
    Insert(u32),
    /// `count` residues present in the subject but not the query
    /// (deletion relative to the subject).
    Delete(u32),
}

/// A scored pairwise alignment between a query range and a subject range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alignment {
    /// Start of the aligned region in the query (0-based, inclusive).
    pub query_start: usize,
    /// End of the aligned region in the query (exclusive).
    pub query_end: usize,
    /// Start of the aligned region in the subject (0-based, inclusive).
    pub subject_start: usize,
    /// End of the aligned region in the subject (exclusive).
    pub subject_end: usize,
    /// Raw alignment score under the scoring matrix and gap penalties used.
    pub score: i32,
    /// Alignment operations from start to end, run-length encoded.
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// Number of alignment columns (diagonal + gap columns).
    pub fn columns(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                AlignOp::Diagonal(c) | AlignOp::Insert(c) | AlignOp::Delete(c) => *c as usize,
            })
            .sum()
    }

    /// Fraction of *diagonal* columns whose residues are identical.
    /// Returns 0 for an empty alignment.
    pub fn identity(&self, query: &[u8], subject: &[u8]) -> f64 {
        let (mut qi, mut si) = (self.query_start, self.subject_start);
        let mut diag_cols = 0usize;
        let mut matches = 0usize;
        for op in &self.ops {
            match *op {
                AlignOp::Diagonal(c) => {
                    for k in 0..c as usize {
                        if query[qi + k] == subject[si + k] {
                            matches += 1;
                        }
                    }
                    diag_cols += c as usize;
                    qi += c as usize;
                    si += c as usize;
                }
                AlignOp::Insert(c) => qi += c as usize,
                AlignOp::Delete(c) => si += c as usize,
            }
        }
        if diag_cols == 0 {
            0.0
        } else {
            matches as f64 / diag_cols as f64
        }
    }

    /// Compact CIGAR-like string, e.g. `"12M2D7M"` (M = diagonal,
    /// I = insert, D = delete).
    pub fn cigar(&self) -> String {
        let mut s = String::new();
        for op in &self.ops {
            match op {
                AlignOp::Diagonal(c) => s.push_str(&format!("{c}M")),
                AlignOp::Insert(c) => s.push_str(&format!("{c}I")),
                AlignOp::Delete(c) => s.push_str(&format!("{c}D")),
            }
        }
        s
    }

    /// Render a three-line human-readable alignment
    /// (query / midline / subject) for the given alphabet.
    pub fn pretty(&self, alphabet: Alphabet, query: &[u8], subject: &[u8]) -> String {
        let (mut qi, mut si) = (self.query_start, self.subject_start);
        let (mut top, mut mid, mut bot) = (String::new(), String::new(), String::new());
        for op in &self.ops {
            match *op {
                AlignOp::Diagonal(c) => {
                    for k in 0..c as usize {
                        let (q, s) = (query[qi + k], subject[si + k]);
                        top.push(char::from(alphabet.decode(q)));
                        mid.push(if q == s { '|' } else { ' ' });
                        bot.push(char::from(alphabet.decode(s)));
                    }
                    qi += c as usize;
                    si += c as usize;
                }
                AlignOp::Insert(c) => {
                    for k in 0..c as usize {
                        top.push(char::from(alphabet.decode(query[qi + k])));
                        mid.push(' ');
                        bot.push('-');
                    }
                    qi += c as usize;
                }
                AlignOp::Delete(c) => {
                    for k in 0..c as usize {
                        top.push('-');
                        mid.push(' ');
                        bot.push(char::from(alphabet.decode(subject[si + k])));
                    }
                    si += c as usize;
                }
            }
        }
        format!("{top}\n{mid}\n{bot}")
    }

    /// Validate internal consistency: op counts must add up to the query
    /// and subject spans.
    pub fn is_consistent(&self) -> bool {
        let mut qspan = 0usize;
        let mut sspan = 0usize;
        for op in &self.ops {
            match *op {
                AlignOp::Diagonal(c) => {
                    qspan += c as usize;
                    sspan += c as usize;
                }
                AlignOp::Insert(c) => qspan += c as usize,
                AlignOp::Delete(c) => sspan += c as usize,
            }
        }
        self.query_start + qspan == self.query_end && self.subject_start + sspan == self.subject_end
    }
}

/// Push an op onto a run-length-encoded op list, merging adjacent runs of
/// the same kind.
pub(crate) fn push_op(ops: &mut Vec<AlignOp>, op: AlignOp) {
    match (ops.last_mut(), op) {
        (Some(AlignOp::Diagonal(a)), AlignOp::Diagonal(b)) => *a += b,
        (Some(AlignOp::Insert(a)), AlignOp::Insert(b)) => *a += b,
        (Some(AlignOp::Delete(a)), AlignOp::Delete(b)) => *a += b,
        _ => ops.push(op),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(c: u32) -> AlignOp {
        AlignOp::Diagonal(c)
    }

    #[test]
    fn gap_cost_is_affine() {
        let g = GapPenalties::BLASTP_DEFAULT;
        assert_eq!(g.cost(1), 12);
        assert_eq!(g.cost(5), 16);
    }

    #[test]
    fn columns_and_cigar() {
        let a = Alignment {
            query_start: 0,
            query_end: 5,
            subject_start: 0,
            subject_end: 7,
            score: 10,
            ops: vec![diag(3), AlignOp::Delete(2), diag(2)],
        };
        assert_eq!(a.columns(), 7);
        assert_eq!(a.cigar(), "3M2D2M");
        assert!(a.is_consistent());
    }

    #[test]
    fn inconsistent_alignment_detected() {
        let a = Alignment {
            query_start: 0,
            query_end: 4,
            subject_start: 0,
            subject_end: 3,
            score: 0,
            ops: vec![diag(3)],
        };
        assert!(!a.is_consistent());
    }

    #[test]
    fn identity_over_diagonal_only() {
        // query ACG-T vs subject ACGAT: 4 diagonal columns, all matching.
        let q = Alphabet::Dna.encode_seq(b"ACGT").unwrap();
        let s = Alphabet::Dna.encode_seq(b"ACGAT").unwrap();
        let a = Alignment {
            query_start: 0,
            query_end: 4,
            subject_start: 0,
            subject_end: 5,
            score: 0,
            ops: vec![diag(3), AlignOp::Delete(1), diag(1)],
        };
        assert!(a.is_consistent());
        assert_eq!(a.identity(&q, &s), 1.0);
    }

    #[test]
    fn pretty_renders_gaps() {
        let q = Alphabet::Dna.encode_seq(b"ACGT").unwrap();
        let s = Alphabet::Dna.encode_seq(b"ACGAT").unwrap();
        let a = Alignment {
            query_start: 0,
            query_end: 4,
            subject_start: 0,
            subject_end: 5,
            score: 0,
            ops: vec![diag(3), AlignOp::Delete(1), diag(1)],
        };
        assert_eq!(a.pretty(Alphabet::Dna, &q, &s), "ACG-T\n||| |\nACGAT");
    }

    #[test]
    fn push_op_merges_runs() {
        let mut ops = vec![];
        push_op(&mut ops, diag(2));
        push_op(&mut ops, diag(3));
        push_op(&mut ops, AlignOp::Insert(1));
        push_op(&mut ops, AlignOp::Insert(1));
        push_op(&mut ops, diag(1));
        assert_eq!(ops, vec![diag(5), AlignOp::Insert(2), diag(1)]);
    }

    #[test]
    fn empty_alignment_identity_zero() {
        let a = Alignment {
            query_start: 0,
            query_end: 0,
            subject_start: 0,
            subject_end: 0,
            score: 0,
            ops: vec![],
        };
        assert_eq!(a.identity(&[], &[]), 0.0);
        assert!(a.is_consistent());
    }
}
