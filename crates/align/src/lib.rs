//! # mendel-align — alignment substrate
//!
//! Dynamic-programming alignment and alignment statistics shared by the
//! Mendel query pipeline and the BLAST baseline:
//!
//! * [`local`] — Smith–Waterman local alignment with affine gaps (Gotoh),
//! * [`global`] — Needleman–Wunsch global alignment with affine gaps,
//! * [`extend`] — seed extensions: ungapped X-drop (BLAST's first stage)
//!   and banded gapped X-drop (Gapped BLAST's second stage; the band width
//!   is the paper's `l` query parameter),
//! * [`hsp`] — high-scoring segment pairs, diagonals, overlap merging,
//! * [`karlin`] — Karlin–Altschul statistics: exact λ and H for any
//!   ungapped scoring system, K via the partial-sum series of
//!   Karlin & Altschul (1990), E-values and bit scores.

pub mod alignment;
pub mod extend;
pub mod global;
pub mod hsp;
pub mod karlin;
pub mod local;

pub use alignment::{AlignOp, Alignment, GapPenalties};
pub use extend::{extend_gapped_banded, extend_ungapped, GappedExtension, UngappedExtension};
pub use global::needleman_wunsch;
pub use hsp::Hsp;
pub use karlin::{bit_score, evalue, KarlinParams};
pub use local::smith_waterman;
