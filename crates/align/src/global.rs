//! Needleman–Wunsch global alignment with affine gaps.
//!
//! Mendel itself only needs local alignments, but the test oracles and the
//! sensitivity experiments use global alignment to verify mutation levels
//! (two sequences at known identity must globally align with exactly that
//! identity), so the substrate ships it.

use crate::alignment::{push_op, AlignOp, Alignment, GapPenalties};
use mendel_seq::ScoringMatrix;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tb {
    Diag,
    Up,
    Left,
    None,
}

/// Globally align `query` against `subject` end-to-end, returning the
/// optimal alignment (always exists; empty inputs produce pure-gap
/// alignments).
pub fn needleman_wunsch(
    query: &[u8],
    subject: &[u8],
    matrix: &ScoringMatrix,
    gaps: GapPenalties,
) -> Alignment {
    let (m, n) = (query.len(), subject.len());
    let w = n + 1;
    const NEG: i32 = i32::MIN / 4;

    let mut h = vec![NEG; (m + 1) * w];
    let mut e = vec![NEG; (m + 1) * w]; // gap in query (Left)
    let mut f = vec![NEG; (m + 1) * w]; // gap in subject (Up)
    let mut tb = vec![Tb::None; (m + 1) * w];

    h[0] = 0;
    for j in 1..=n {
        e[j] = -gaps.cost(j);
        h[j] = e[j];
        tb[j] = Tb::Left;
    }
    for i in 1..=m {
        f[i * w] = -gaps.cost(i);
        h[i * w] = f[i * w];
        tb[i * w] = Tb::Up;
    }

    for i in 1..=m {
        for j in 1..=n {
            let idx = i * w + j;
            e[idx] = (e[idx - 1] - gaps.extend).max(h[idx - 1] - gaps.cost(1));
            f[idx] = (f[idx - w] - gaps.extend).max(h[idx - w] - gaps.cost(1));
            let diag = h[idx - w - 1] + matrix.score(query[i - 1], subject[j - 1]);
            let (v, t) = if diag >= e[idx] && diag >= f[idx] {
                (diag, Tb::Diag)
            } else if e[idx] >= f[idx] {
                (e[idx], Tb::Left)
            } else {
                (f[idx], Tb::Up)
            };
            h[idx] = v;
            tb[idx] = t;
        }
    }

    let (mut i, mut j) = (m, n);
    let mut ops_rev: Vec<AlignOp> = Vec::new();
    while i > 0 || j > 0 {
        match tb[i * w + j] {
            Tb::Diag => {
                ops_rev.push(AlignOp::Diagonal(1));
                i -= 1;
                j -= 1;
            }
            Tb::Left => {
                ops_rev.push(AlignOp::Delete(1));
                j -= 1;
            }
            Tb::Up => {
                ops_rev.push(AlignOp::Insert(1));
                i -= 1;
            }
            Tb::None => unreachable!("traceback escaped the DP table"),
        }
    }
    let mut ops = Vec::new();
    for op in ops_rev.into_iter().rev() {
        push_op(&mut ops, op);
    }
    let aln = Alignment {
        query_start: 0,
        query_end: m,
        subject_start: 0,
        subject_end: n,
        score: h[m * w + n],
        ops,
    };
    debug_assert!(aln.is_consistent());
    aln
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::Alphabet;

    fn dna(s: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode_seq(s).unwrap()
    }

    fn m() -> ScoringMatrix {
        ScoringMatrix::dna(1, -1)
    }

    const GAPS: GapPenalties = GapPenalties { open: 2, extend: 1 };

    #[test]
    fn identical_sequences() {
        let q = dna(b"ACGT");
        let a = needleman_wunsch(&q, &q, &m(), GAPS);
        assert_eq!(a.score, 4);
        assert_eq!(a.cigar(), "4M");
    }

    #[test]
    fn global_covers_whole_sequences() {
        let q = dna(b"ACGT");
        let s = dna(b"AACGTT");
        let a = needleman_wunsch(&q, &s, &m(), GAPS);
        assert_eq!(a.query_end, 4);
        assert_eq!(a.subject_end, 6);
        assert!(a.is_consistent());
    }

    #[test]
    fn prefers_single_long_gap_over_two_short() {
        // Affine penalties: one 2-gap (2+2=4) beats two 1-gaps (3+3=6).
        let q = dna(b"ACGTACGT");
        let s = dna(b"ACGCGT"); // drop 2
        let a = needleman_wunsch(&q, &s, &m(), GAPS);
        let inserts: Vec<u32> = a
            .ops
            .iter()
            .filter_map(|op| match op {
                AlignOp::Insert(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(
            inserts,
            vec![2],
            "expected one insert run of 2, got {}",
            a.cigar()
        );
    }

    #[test]
    fn empty_query_is_all_deletes() {
        let s = dna(b"ACG");
        let a = needleman_wunsch(&[], &s, &m(), GAPS);
        assert_eq!(a.cigar(), "3D");
        assert_eq!(a.score, -GAPS.cost(3));
    }

    #[test]
    fn empty_subject_is_all_inserts() {
        let q = dna(b"ACG");
        let a = needleman_wunsch(&q, &[], &m(), GAPS);
        assert_eq!(a.cigar(), "3I");
    }

    #[test]
    fn both_empty() {
        let a = needleman_wunsch(&[], &[], &m(), GAPS);
        assert_eq!(a.score, 0);
        assert!(a.ops.is_empty());
    }

    #[test]
    fn global_identity_recovers_mutation_level() {
        use mendel_seq::gen::{mutate_to_identity, random_sequence};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let q = random_sequence(Alphabet::Dna, 400, &mut rng);
        let s = mutate_to_identity(Alphabet::Dna, &q, 0.85, &mut rng).unwrap();
        let a = needleman_wunsch(&q, &s, &m(), GAPS);
        let id = a.identity(&q, &s);
        assert!((id - 0.85).abs() < 0.02, "identity {id}");
    }
}
