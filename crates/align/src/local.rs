//! Smith–Waterman local alignment with affine gaps (Gotoh's algorithm).

use crate::alignment::{push_op, AlignOp, Alignment, GapPenalties};
use mendel_seq::ScoringMatrix;

/// Which DP matrix a traceback cell came from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Stop,
    Diag,
    Up,   // gap in subject (query residue consumed) — Insert
    Left, // gap in query (subject residue consumed) — Delete
}

/// Locally align `query` against `subject` (both encoded), returning the
/// best-scoring local alignment, or `None` when no pairing scores above
/// zero (e.g. two completely unrelated single residues).
///
/// Memory is `O(m·n)` for the traceback; use
/// [`smith_waterman_score`] when only the score is needed.
pub fn smith_waterman(
    query: &[u8],
    subject: &[u8],
    matrix: &ScoringMatrix,
    gaps: GapPenalties,
) -> Option<Alignment> {
    let (m, n) = (query.len(), subject.len());
    if m == 0 || n == 0 {
        return None;
    }
    let w = n + 1;
    const NEG: i32 = i32::MIN / 4;
    // h = best score ending at (i,j); e = best ending with gap in query
    // (Left); f = best ending with gap in subject (Up).
    let mut h = vec![0i32; (m + 1) * w];
    let mut e = vec![NEG; (m + 1) * w];
    let mut f = vec![NEG; (m + 1) * w];
    let mut from = vec![State::Stop; (m + 1) * w];

    let mut best = 0i32;
    let mut best_at = (0usize, 0usize);

    for i in 1..=m {
        for j in 1..=n {
            let idx = i * w + j;
            e[idx] = (e[idx - 1] - gaps.extend).max(h[idx - 1] - gaps.cost(1));
            f[idx] = (f[idx - w] - gaps.extend).max(h[idx - w] - gaps.cost(1));
            let diag = h[idx - w - 1] + matrix.score(query[i - 1], subject[j - 1]);
            let mut v = 0;
            let mut s = State::Stop;
            if diag > v {
                v = diag;
                s = State::Diag;
            }
            if e[idx] > v {
                v = e[idx];
                s = State::Left;
            }
            if f[idx] > v {
                v = f[idx];
                s = State::Up;
            }
            h[idx] = v;
            from[idx] = s;
            if v > best {
                best = v;
                best_at = (i, j);
            }
        }
    }

    if best <= 0 {
        return None;
    }

    // Traceback. When stepping into a gap state we walk the full gap run by
    // re-deriving how long the run must have been (standard Gotoh
    // traceback: follow E/F chains while extension was optimal).
    let (mut i, mut j) = best_at;
    let mut ops_rev: Vec<AlignOp> = Vec::new();
    loop {
        let idx = i * w + j;
        match from[idx] {
            State::Stop => break,
            State::Diag => {
                push_op_rev(&mut ops_rev, AlignOp::Diagonal(1));
                i -= 1;
                j -= 1;
            }
            State::Left => {
                // Gap in query: consume subject residues while the E-chain
                // says the gap was extended.
                let mut run = 1u32;
                let mut jj = j;
                while e[i * w + jj] == e[i * w + jj - 1] - gaps.extend
                    && e[i * w + jj] != h[i * w + jj - 1] - gaps.cost(1)
                {
                    run += 1;
                    jj -= 1;
                }
                push_op_rev(&mut ops_rev, AlignOp::Delete(run));
                j = jj - 1;
            }
            State::Up => {
                let mut run = 1u32;
                let mut ii = i;
                while f[ii * w + j] == f[(ii - 1) * w + j] - gaps.extend
                    && f[ii * w + j] != h[(ii - 1) * w + j] - gaps.cost(1)
                {
                    run += 1;
                    ii -= 1;
                }
                push_op_rev(&mut ops_rev, AlignOp::Insert(run));
                i = ii - 1;
            }
        }
    }

    let mut ops = Vec::with_capacity(ops_rev.len());
    for op in ops_rev.into_iter().rev() {
        push_op(&mut ops, op);
    }
    let aln = Alignment {
        query_start: i,
        query_end: best_at.0,
        subject_start: j,
        subject_end: best_at.1,
        score: best,
        ops,
    };
    debug_assert!(aln.is_consistent());
    Some(aln)
}

fn push_op_rev(ops: &mut Vec<AlignOp>, op: AlignOp) {
    // During reverse traceback we only need raw pushes; merging happens on
    // the forward pass.
    ops.push(op);
}

/// Score-only Smith–Waterman in `O(n)` memory — used by benchmarks and the
/// brute-force oracles in tests.
pub fn smith_waterman_score(
    query: &[u8],
    subject: &[u8],
    matrix: &ScoringMatrix,
    gaps: GapPenalties,
) -> i32 {
    let n = subject.len();
    if query.is_empty() || n == 0 {
        return 0;
    }
    const NEG: i32 = i32::MIN / 4;
    let mut h_prev = vec![0i32; n + 1];
    let mut f = vec![NEG; n + 1];
    let mut best = 0i32;
    for &q in query {
        let mut h_diag = h_prev[0]; // H[i-1][j-1]
        let mut h_cur = 0i32; // H[i][j-1] starts as column 0 = 0
        let mut e = NEG;
        for j in 1..=n {
            e = (e - gaps.extend).max(h_cur - gaps.cost(1));
            f[j] = (f[j] - gaps.extend).max(h_prev[j] - gaps.cost(1));
            let diag = h_diag + matrix.score(q, subject[j - 1]);
            let v = 0.max(diag).max(e).max(f[j]);
            h_diag = h_prev[j];
            h_prev[j - 1] = h_cur;
            h_cur = v;
            best = best.max(v);
        }
        h_prev[n] = h_cur;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::Alphabet;

    fn dna(s: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode_seq(s).unwrap()
    }

    fn prot(s: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode_seq(s).unwrap()
    }

    fn dna_matrix() -> ScoringMatrix {
        ScoringMatrix::dna(2, -3)
    }

    const GAPS: GapPenalties = GapPenalties { open: 5, extend: 2 };

    #[test]
    fn identical_sequences_align_fully() {
        let q = dna(b"ACGTACGT");
        let a = smith_waterman(&q, &q, &dna_matrix(), GAPS).unwrap();
        assert_eq!(a.score, 16);
        assert_eq!(a.query_start, 0);
        assert_eq!(a.query_end, 8);
        assert_eq!(a.cigar(), "8M");
        assert_eq!(a.identity(&q, &q), 1.0);
    }

    #[test]
    fn finds_embedded_local_match() {
        let q = dna(b"ACGTACGT");
        let s = dna(b"TTTTTACGTACGTTTTT");
        let a = smith_waterman(&q, &s, &dna_matrix(), GAPS).unwrap();
        assert_eq!(a.score, 16);
        assert_eq!(a.subject_start, 5);
        assert_eq!(a.subject_end, 13);
    }

    #[test]
    fn alignment_with_gap() {
        // subject is query with 2 bases deleted in the middle; a long match
        // either side makes bridging the gap worthwhile.
        let q = dna(b"ACGTACGTAAGGCCTT");
        let s = dna(b"ACGTACGTGGCCTT"); // "AA" removed
        let a = smith_waterman(&q, &s, &dna_matrix(), GAPS).unwrap();
        assert!(
            a.cigar().contains('I'),
            "expected insert op, got {}",
            a.cigar()
        );
        assert!(a.is_consistent());
        // 14 matched columns (28) minus one gap of length 2 (5+2*2=9)
        assert_eq!(a.score, 28 - 9);
    }

    #[test]
    fn no_alignment_for_unrelated_single_bases() {
        let a = smith_waterman(&dna(b"A"), &dna(b"C"), &dna_matrix(), GAPS);
        assert!(a.is_none());
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(smith_waterman(&[], &dna(b"ACGT"), &dna_matrix(), GAPS).is_none());
        assert!(smith_waterman(&dna(b"ACGT"), &[], &dna_matrix(), GAPS).is_none());
    }

    #[test]
    fn protein_alignment_uses_blosum() {
        let m = ScoringMatrix::blosum62();
        let q = prot(b"WWWW");
        let a = smith_waterman(&q, &q, &m, GapPenalties::BLASTP_DEFAULT).unwrap();
        assert_eq!(a.score, 44);
    }

    #[test]
    fn score_only_matches_traceback_score() {
        let q = dna(b"ACGTACGTAAGGCCTT");
        let s = dna(b"ACGGTACTGGCCTTAC");
        let full = smith_waterman(&q, &s, &dna_matrix(), GAPS)
            .map(|a| a.score)
            .unwrap_or(0);
        let fast = smith_waterman_score(&q, &s, &dna_matrix(), GAPS);
        assert_eq!(full, fast);
    }

    #[test]
    fn traceback_alignment_score_is_recomputable() {
        // Recompute the score from the ops and verify it matches.
        let m = dna_matrix();
        let q = dna(b"ACGTAACCGGTTACGT");
        let s = dna(b"ACGTACCGGTTTACGT");
        let a = smith_waterman(&q, &s, &m, GAPS).unwrap();
        let (mut qi, mut si) = (a.query_start, a.subject_start);
        let mut score = 0i32;
        for op in &a.ops {
            match *op {
                AlignOp::Diagonal(c) => {
                    for k in 0..c as usize {
                        score += m.score(q[qi + k], s[si + k]);
                    }
                    qi += c as usize;
                    si += c as usize;
                }
                AlignOp::Insert(c) => {
                    score -= GAPS.cost(c as usize);
                    qi += c as usize;
                }
                AlignOp::Delete(c) => {
                    score -= GAPS.cost(c as usize);
                    si += c as usize;
                }
            }
        }
        assert_eq!(score, a.score, "ops: {}", a.cigar());
    }
}
