//! Seed extensions: ungapped X-drop and banded gapped X-drop.
//!
//! Both Mendel (§V-B: anchors are "incrementally extended until the
//! extension deteriorates the score") and BLAST grow short seed matches
//! into longer high-scoring pairs. The ungapped extension walks the
//! diagonal in both directions, keeping the best prefix/suffix and
//! stopping once the running score drops more than `x_drop` below the
//! best seen. The gapped extension runs an affine-gap DP restricted to a
//! band of `band` diagonals either side of the anchor diagonal — the
//! paper's `l` query parameter ("gapped alignment band width").

use crate::alignment::GapPenalties;
use mendel_seq::ScoringMatrix;

/// Result of an ungapped diagonal extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UngappedExtension {
    /// Query range `[query_start, query_end)` of the extended segment.
    pub query_start: usize,
    /// Exclusive end in the query.
    pub query_end: usize,
    /// Subject range start (the diagonal offset is constant).
    pub subject_start: usize,
    /// Exclusive end in the subject.
    pub subject_end: usize,
    /// Ungapped segment score.
    pub score: i32,
}

impl UngappedExtension {
    /// The diagonal (subject_start − query_start) this segment lies on.
    #[inline]
    pub fn diagonal(&self) -> i64 {
        self.subject_start as i64 - self.query_start as i64
    }

    /// Segment length in residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.query_end - self.query_start
    }

    /// True when the extension is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Extend an exact or inexact seed `query[q..q+len)` / `subject[s..s+len)`
/// in both directions along the diagonal with X-drop termination.
///
/// # Panics
/// Panics if the seed ranges fall outside the sequences.
pub fn extend_ungapped(
    query: &[u8],
    subject: &[u8],
    q_start: usize,
    s_start: usize,
    seed_len: usize,
    matrix: &ScoringMatrix,
    x_drop: i32,
) -> UngappedExtension {
    assert!(q_start + seed_len <= query.len(), "seed exceeds query");
    assert!(s_start + seed_len <= subject.len(), "seed exceeds subject");
    assert!(seed_len > 0, "seed must be non-empty");
    assert!(x_drop >= 0, "x_drop must be non-negative");

    let seed_score: i32 = (0..seed_len)
        .map(|k| matrix.score(query[q_start + k], subject[s_start + k]))
        .sum();

    // Right extension.
    let mut best_right = 0i32;
    let mut right = 0usize; // residues beyond the seed
    let mut run = 0i32;
    let mut k = 0usize;
    while q_start + seed_len + k < query.len() && s_start + seed_len + k < subject.len() {
        run += matrix.score(
            query[q_start + seed_len + k],
            subject[s_start + seed_len + k],
        );
        k += 1;
        if run > best_right {
            best_right = run;
            right = k;
        } else if best_right - run > x_drop {
            break;
        }
    }

    // Left extension.
    let mut best_left = 0i32;
    let mut left = 0usize;
    run = 0;
    k = 0;
    while q_start > k && s_start > k {
        run += matrix.score(query[q_start - 1 - k], subject[s_start - 1 - k]);
        k += 1;
        if run > best_left {
            best_left = run;
            left = k;
        } else if best_left - run > x_drop {
            break;
        }
    }

    UngappedExtension {
        query_start: q_start - left,
        query_end: q_start + seed_len + right,
        subject_start: s_start - left,
        subject_end: s_start + seed_len + right,
        score: seed_score + best_left + best_right,
    }
}

/// Result of a banded gapped extension: endpoints and score only (the
/// full traceback is rarely needed at this stage; callers wanting ops run
/// [`crate::local::smith_waterman`] on the found ranges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GappedExtension {
    /// Query range of the gapped alignment.
    pub query_start: usize,
    /// Exclusive query end.
    pub query_end: usize,
    /// Subject range of the gapped alignment.
    pub subject_start: usize,
    /// Exclusive subject end.
    pub subject_end: usize,
    /// Gapped alignment score.
    pub score: i32,
}

/// Gapped extension from an anchor midpoint `(q_mid, s_mid)` in both
/// directions, restricted to `band` diagonals either side of the anchor
/// diagonal (the paper's `l`). Uses affine gaps and X-drop termination
/// per DP row.
pub fn extend_gapped_banded(
    query: &[u8],
    subject: &[u8],
    q_mid: usize,
    s_mid: usize,
    matrix: &ScoringMatrix,
    gaps: GapPenalties,
    band: usize,
    x_drop: i32,
) -> GappedExtension {
    assert!(
        q_mid <= query.len() && s_mid <= subject.len(),
        "anchor outside sequences"
    );
    // Forward half: align query[q_mid..] vs subject[s_mid..] anchored at
    // (0,0). Backward half: the same on reversed prefixes.
    let (fw_score, fw_q, fw_s) = banded_half(
        &query[q_mid..],
        &subject[s_mid..],
        matrix,
        gaps,
        band,
        x_drop,
    );
    let rq: Vec<u8> = query[..q_mid].iter().rev().copied().collect();
    let rs: Vec<u8> = subject[..s_mid].iter().rev().copied().collect();
    let (bw_score, bw_q, bw_s) = banded_half(&rq, &rs, matrix, gaps, band, x_drop);
    GappedExtension {
        query_start: q_mid - bw_q,
        query_end: q_mid + fw_q,
        subject_start: s_mid - bw_s,
        subject_end: s_mid + fw_s,
        score: fw_score + bw_score,
    }
}

/// One direction of the banded extension: global-anchored DP from (0,0)
/// over `a` × `b`, keeping cells within `band` of the main diagonal,
/// X-dropping rows, and returning the best (score, a-extent, b-extent).
fn banded_half(
    a: &[u8],
    b: &[u8],
    matrix: &ScoringMatrix,
    gaps: GapPenalties,
    band: usize,
    x_drop: i32,
) -> (i32, usize, usize) {
    const NEG: i32 = i32::MIN / 4;
    let n = b.len();
    if a.is_empty() || n == 0 {
        return (0, 0, 0);
    }
    // Row-major DP with columns clamped to [i-band, i+band].
    let mut h_prev: Vec<i32> = vec![NEG; n + 1];
    let mut f: Vec<i32> = vec![NEG; n + 1];
    h_prev[0] = 0;
    // Row 0: leading gap in `a` (delete run) within the band.
    for j in 1..=n.min(band) {
        h_prev[j] = -gaps.cost(j);
    }
    let mut best = 0i32;
    let mut best_at = (0usize, 0usize);

    for i in 1..=a.len() {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(n);
        if lo > hi {
            break;
        }
        let mut h_row: Vec<i32> = vec![NEG; n + 1];
        if lo == 1 {
            // Column 0 inside band: leading gap in `b` (insert run).
            h_row[0] = if i <= band { -gaps.cost(i) } else { NEG };
        }
        let mut e = NEG;
        let mut row_best = NEG;
        for j in lo..=hi {
            let open_from = if j >= 1 { h_row[j - 1] } else { NEG };
            e = (e - gaps.extend).max(saturating(open_from, -gaps.cost(1)));
            f[j] = (f[j] - gaps.extend).max(saturating(h_prev[j], -gaps.cost(1)));
            let diag = saturating(h_prev[j - 1], matrix.score(a[i - 1], b[j - 1]));
            let v = diag.max(e).max(f[j]);
            h_row[j] = v;
            row_best = row_best.max(v);
            if v > best {
                best = v;
                best_at = (i, j);
            }
        }
        if best - row_best > x_drop {
            break;
        }
        h_prev = h_row;
    }
    (
        best.max(0),
        if best > 0 { best_at.0 } else { 0 },
        if best > 0 { best_at.1 } else { 0 },
    )
}

#[inline]
fn saturating(base: i32, delta: i32) -> i32 {
    const NEG: i32 = i32::MIN / 4;
    if base <= NEG {
        NEG
    } else {
        base + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::Alphabet;

    fn dna(s: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode_seq(s).unwrap()
    }

    fn m() -> ScoringMatrix {
        ScoringMatrix::dna(2, -3)
    }

    const GAPS: GapPenalties = GapPenalties { open: 5, extend: 2 };

    #[test]
    fn ungapped_extends_both_directions() {
        let q = dna(b"AAAACGTACGTAAAA");
        let s = dna(b"AAAACGTACGTAAAA");
        // Seed at the middle 3 bases.
        let ext = extend_ungapped(&q, &s, 6, 6, 3, &m(), 10);
        assert_eq!(ext.query_start, 0);
        assert_eq!(ext.query_end, 15);
        assert_eq!(ext.score, 30);
        assert_eq!(ext.diagonal(), 0);
    }

    #[test]
    fn ungapped_stops_at_mismatch_wall() {
        // Identical core flanked by garbage on the subject side.
        let q = dna(b"CCCCCACGTACGTCCCCC");
        let s = dna(b"GGGGGACGTACGTGGGGG");
        let ext = extend_ungapped(&q, &s, 5, 5, 8, &m(), 4);
        assert_eq!(ext.query_start, 5, "left wall");
        assert_eq!(ext.query_end, 13, "right wall");
        assert_eq!(ext.score, 16);
    }

    #[test]
    fn ungapped_climbs_through_small_dips() {
        // One mismatch inside a long identical run: x_drop=10 bridges it.
        let q = dna(b"ACGTACGTACGTACGT");
        let mut s = q.clone();
        s[12] = (s[12] + 1) % 4;
        let ext = extend_ungapped(&q, &s, 0, 0, 4, &m(), 10);
        assert_eq!(ext.query_end, 16, "should extend past the dip");
        assert_eq!(ext.score, 15 * 2 - 3);
    }

    #[test]
    fn ungapped_respects_offsets() {
        let q = dna(b"ACGTACGT");
        let s = dna(b"TTACGTACGTTT");
        let ext = extend_ungapped(&q, &s, 0, 2, 4, &m(), 5);
        assert_eq!(ext.diagonal(), 2);
        assert_eq!(ext.query_end - ext.query_start, 8);
        assert_eq!(ext.score, 16);
    }

    #[test]
    #[should_panic(expected = "seed exceeds query")]
    fn ungapped_panics_on_bad_seed() {
        let q = dna(b"ACG");
        extend_ungapped(&q, &q, 2, 0, 5, &m(), 5);
    }

    #[test]
    fn gapped_bridges_an_indel() {
        // Subject = query with 2 bases missing in the middle; the ungapped
        // extension cannot cross, the banded gapped one can.
        let q = dna(b"ACGTACGTAAGGCCTTACGT");
        let s = dna(b"ACGTACGTGGCCTTACGT"); // "AA" removed at 8
        let anchored = extend_gapped_banded(&q, &s, 4, 4, &m(), GAPS, 4, 20);
        assert_eq!(anchored.query_start, 0);
        assert_eq!(anchored.query_end, 20);
        assert_eq!(anchored.subject_end, 18);
        // 18 matched columns * 2 - gap cost (5 + 2*2)
        assert_eq!(anchored.score, 36 - 9);
    }

    #[test]
    fn gapped_score_matches_smith_waterman_when_band_is_wide() {
        use crate::local::smith_waterman_score;
        let q = dna(b"ACGTAACCGGTTACGTACGT");
        let s = dna(b"ACGTACCGGTTTACGTAGT");
        let sw = smith_waterman_score(&q, &s, &m(), GAPS);
        // Anchor on the exact common prefix; a huge band makes the banded
        // extension equivalent to unrestricted gapped extension from (0,0).
        let ge = extend_gapped_banded(&q, &s, 0, 0, &m(), GAPS, 64, 1000);
        assert!(ge.score <= sw, "anchored extension cannot beat free SW");
        assert!(
            ge.score >= sw - 4,
            "wide band should be near SW ({} vs {sw})",
            ge.score
        );
    }

    #[test]
    fn gapped_empty_sides_are_safe() {
        let q = dna(b"ACGT");
        let ge = extend_gapped_banded(&q, &q, 0, 0, &m(), GAPS, 4, 10);
        assert_eq!(ge.query_start, 0);
        assert_eq!(ge.query_end, 4);
        assert_eq!(ge.score, 8);
        let ge_end = extend_gapped_banded(&q, &q, 4, 4, &m(), GAPS, 4, 10);
        assert_eq!(ge_end.score, 8, "backward half must cover the prefix");
        assert_eq!(ge_end.query_start, 0);
    }

    #[test]
    fn narrow_band_blocks_large_indels() {
        // 4-base indel: bridging costs 5+2·4=13 and buys 10 matches (+20),
        // so a band ≥ 4 takes the gap while a band of 2 cannot reach it.
        let q = dna(b"ACGTACGTAAAAGGCCTTACGT");
        let s = dna(b"ACGTACGTGGCCTTACGT"); // "AAAA" removed after position 8
        let narrow = extend_gapped_banded(&q, &s, 4, 4, &m(), GAPS, 2, 30);
        let wide = extend_gapped_banded(&q, &s, 4, 4, &m(), GAPS, 16, 30);
        assert_eq!(narrow.score, 16, "narrow band sees only the exact prefix");
        assert_eq!(
            wide.score,
            18 * 2 - GAPS.cost(4),
            "wide band bridges the indel"
        );
    }
}
