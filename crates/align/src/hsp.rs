//! High-scoring segment pairs: diagonals, binning, and overlap merging.
//!
//! Both BLAST and Mendel's aggregation stages (§V-B: "combine overlapping
//! anchors on the same diagonal") work with ungapped segment pairs keyed
//! by subject sequence and diagonal.

use serde::{Deserialize, Serialize};

/// An ungapped high-scoring segment pair between a query and one subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hsp {
    /// Index (or id) of the subject sequence.
    pub subject_id: u32,
    /// Query range `[query_start, query_end)`.
    pub query_start: usize,
    /// Exclusive query end.
    pub query_end: usize,
    /// Subject start; `subject_end` is implied by the equal lengths.
    pub subject_start: usize,
    /// Ungapped score of the segment.
    pub score: i32,
}

impl Hsp {
    /// Exclusive subject end (ungapped segments have equal spans).
    #[inline]
    pub fn subject_end(&self) -> usize {
        self.subject_start + self.len()
    }

    /// Segment length.
    #[inline]
    pub fn len(&self) -> usize {
        self.query_end - self.query_start
    }

    /// True for zero-length segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Diagonal = subject_start − query_start; constant along the segment.
    #[inline]
    pub fn diagonal(&self) -> i64 {
        self.subject_start as i64 - self.query_start as i64
    }

    /// True when `other` lies on the same subject and diagonal and the
    /// query ranges overlap or touch.
    pub fn overlaps_on_diagonal(&self, other: &Hsp) -> bool {
        self.subject_id == other.subject_id
            && self.diagonal() == other.diagonal()
            && self.query_start <= other.query_end
            && other.query_start <= self.query_end
    }

    /// Merge two overlapping same-diagonal segments into their union.
    /// Scores are combined conservatively: the max of the two (re-scoring
    /// the union is the caller's job if exactness matters).
    pub fn merged_with(&self, other: &Hsp) -> Hsp {
        debug_assert!(self.overlaps_on_diagonal(other));
        let query_start = self.query_start.min(other.query_start);
        let query_end = self.query_end.max(other.query_end);
        Hsp {
            subject_id: self.subject_id,
            query_start,
            query_end,
            subject_start: (query_start as i64 + self.diagonal()) as usize,
            score: self.score.max(other.score),
        }
    }
}

/// Combine overlapping same-diagonal HSPs. This is the aggregation
/// primitive run first at each group entry point and again at the system
/// entry point (§V-B). Output is sorted by (subject, diagonal, query start).
pub fn merge_overlapping(mut hsps: Vec<Hsp>) -> Vec<Hsp> {
    hsps.sort_by_key(|h| (h.subject_id, h.diagonal(), h.query_start, h.query_end));
    let mut out: Vec<Hsp> = Vec::with_capacity(hsps.len());
    for h in hsps {
        match out.last_mut() {
            Some(last) if last.overlaps_on_diagonal(&h) => *last = last.merged_with(&h),
            _ => out.push(h),
        }
    }
    out
}

/// Bin HSPs by subject id, preserving (diagonal, start) order within each
/// bin — the paper's "binning matches with other anchors from the same
/// sequence ... sorted by the anchor start position".
pub fn bin_by_subject(hsps: Vec<Hsp>) -> Vec<(u32, Vec<Hsp>)> {
    let mut sorted = hsps;
    sorted.sort_by_key(|h| (h.subject_id, h.query_start, h.diagonal()));
    let mut out: Vec<(u32, Vec<Hsp>)> = Vec::new();
    for h in sorted {
        match out.last_mut() {
            Some((id, bin)) if *id == h.subject_id => bin.push(h),
            _ => out.push((h.subject_id, vec![h])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hsp(subject_id: u32, qs: usize, qe: usize, ss: usize, score: i32) -> Hsp {
        Hsp {
            subject_id,
            query_start: qs,
            query_end: qe,
            subject_start: ss,
            score,
        }
    }

    #[test]
    fn diagonal_arithmetic() {
        assert_eq!(hsp(0, 5, 10, 8, 1).diagonal(), 3);
        assert_eq!(hsp(0, 8, 10, 5, 1).diagonal(), -3);
        assert_eq!(hsp(0, 5, 10, 8, 1).subject_end(), 13);
    }

    #[test]
    fn overlap_requires_same_subject_and_diagonal() {
        let a = hsp(0, 0, 10, 0, 5);
        assert!(a.overlaps_on_diagonal(&hsp(0, 5, 15, 5, 5)));
        assert!(
            !a.overlaps_on_diagonal(&hsp(1, 5, 15, 5, 5)),
            "different subject"
        );
        assert!(
            !a.overlaps_on_diagonal(&hsp(0, 5, 15, 6, 5)),
            "different diagonal"
        );
        assert!(
            !a.overlaps_on_diagonal(&hsp(0, 11, 15, 11, 5)),
            "disjoint ranges"
        );
    }

    #[test]
    fn touching_segments_merge() {
        let a = hsp(0, 0, 10, 0, 5);
        let b = hsp(0, 10, 20, 10, 7);
        assert!(a.overlaps_on_diagonal(&b));
        let m = a.merged_with(&b);
        assert_eq!((m.query_start, m.query_end), (0, 20));
        assert_eq!(m.subject_start, 0);
        assert_eq!(m.score, 7);
    }

    #[test]
    fn merge_overlapping_chains_runs() {
        let hsps = vec![
            hsp(0, 20, 30, 20, 3),
            hsp(0, 0, 12, 0, 5),
            hsp(0, 10, 22, 10, 4),
            hsp(1, 0, 5, 2, 9),
        ];
        let merged = merge_overlapping(hsps);
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].query_start, merged[0].query_end), (0, 30));
        assert_eq!(merged[1].subject_id, 1);
    }

    #[test]
    fn merge_keeps_distinct_diagonals_apart() {
        let hsps = vec![hsp(0, 0, 10, 0, 5), hsp(0, 0, 10, 3, 5)];
        assert_eq!(merge_overlapping(hsps).len(), 2);
    }

    #[test]
    fn bin_by_subject_groups_and_sorts() {
        let hsps = vec![
            hsp(2, 50, 60, 50, 1),
            hsp(1, 0, 10, 0, 1),
            hsp(2, 10, 20, 12, 1),
            hsp(1, 30, 40, 31, 1),
        ];
        let bins = bin_by_subject(hsps);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].0, 1);
        assert_eq!(bins[0].1.len(), 2);
        assert!(bins[0].1[0].query_start < bins[0].1[1].query_start);
        assert_eq!(bins[1].0, 2);
        assert_eq!(bins[1].1[0].query_start, 10);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_overlapping(vec![]).is_empty());
        assert!(bin_by_subject(vec![]).is_empty());
    }
}
