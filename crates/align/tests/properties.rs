//! Property tests for the alignment substrate.

use mendel_align::local::smith_waterman_score;
use mendel_align::{
    extend_gapped_banded, extend_ungapped, needleman_wunsch, smith_waterman, GapPenalties,
};
use mendel_seq::ScoringMatrix;
use proptest::prelude::*;

fn dna(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, n)
}

const GAPS: GapPenalties = GapPenalties { open: 5, extend: 2 };

fn m() -> ScoringMatrix {
    ScoringMatrix::dna(2, -3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The traceback alignment's ops recompute to its reported score, and
    /// the score matches the score-only kernel.
    #[test]
    fn sw_traceback_is_self_consistent(a in dna(1..60), b in dna(1..60)) {
        let matrix = m();
        let fast = smith_waterman_score(&a, &b, &matrix, GAPS);
        match smith_waterman(&a, &b, &matrix, GAPS) {
            None => prop_assert!(fast <= 0),
            Some(aln) => {
                prop_assert_eq!(aln.score, fast);
                prop_assert!(aln.is_consistent());
                // Recompute the score from the ops.
                let (mut qi, mut si, mut score) = (aln.query_start, aln.subject_start, 0i32);
                for op in &aln.ops {
                    match *op {
                        mendel_align::AlignOp::Diagonal(c) => {
                            for k in 0..c as usize {
                                score += matrix.score(a[qi + k], b[si + k]);
                            }
                            qi += c as usize;
                            si += c as usize;
                        }
                        mendel_align::AlignOp::Insert(c) => {
                            score -= GAPS.cost(c as usize);
                            qi += c as usize;
                        }
                        mendel_align::AlignOp::Delete(c) => {
                            score -= GAPS.cost(c as usize);
                            si += c as usize;
                        }
                    }
                }
                prop_assert_eq!(score, aln.score, "cigar {}", aln.cigar());
            }
        }
    }

    /// Local alignment score is symmetric and never negative-reported.
    #[test]
    fn sw_symmetry_and_positivity(a in dna(1..50), b in dna(1..50)) {
        let matrix = m();
        let ab = smith_waterman_score(&a, &b, &matrix, GAPS);
        let ba = smith_waterman_score(&b, &a, &matrix, GAPS);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab >= 0);
    }

    /// Appending context can never lower the best local score.
    #[test]
    fn sw_monotone_under_extension(a in dna(1..40), b in dna(1..40), extra in dna(0..20)) {
        let matrix = m();
        let base = smith_waterman_score(&a, &b, &matrix, GAPS);
        let mut b2 = b.clone();
        b2.extend(extra);
        prop_assert!(smith_waterman_score(&a, &b2, &matrix, GAPS) >= base);
    }

    /// Global alignment covers both sequences entirely, whatever they are.
    #[test]
    fn nw_is_global(a in dna(0..40), b in dna(0..40)) {
        let aln = needleman_wunsch(&a, &b, &m(), GAPS);
        prop_assert!(aln.is_consistent());
        prop_assert_eq!(aln.query_end, a.len());
        prop_assert_eq!(aln.subject_end, b.len());
    }

    /// Global score never exceeds the local score.
    #[test]
    fn global_score_bounded_by_local(a in dna(1..40), b in dna(1..40)) {
        let matrix = m();
        let local = smith_waterman_score(&a, &b, &matrix, GAPS);
        let global = needleman_wunsch(&a, &b, &matrix, GAPS).score;
        prop_assert!(global <= local);
    }

    /// Ungapped extension contains its seed, stays on one diagonal, and a
    /// larger X-drop never shrinks the score.
    #[test]
    fn ungapped_extension_invariants(
        a in dna(8..80),
        b in dna(8..80),
        seed_q in 0usize..4,
        seed_s in 0usize..4,
        x in 0i32..24,
    ) {
        let len = 4usize;
        prop_assume!(seed_q + len <= a.len() && seed_s + len <= b.len());
        let matrix = m();
        let e = extend_ungapped(&a, &b, seed_q, seed_s, len, &matrix, x);
        prop_assert!(e.query_start <= seed_q);
        prop_assert!(e.query_end >= seed_q + len);
        prop_assert_eq!(
            e.subject_start as i64 - e.query_start as i64,
            seed_s as i64 - seed_q as i64
        );
        let wider = extend_ungapped(&a, &b, seed_q, seed_s, len, &matrix, x + 8);
        prop_assert!(wider.score >= e.score);
    }

    /// Banded gapped extension never beats unrestricted Smith–Waterman,
    /// and a wider band never scores less.
    #[test]
    fn banded_extension_bounded_by_sw(a in dna(4..50), b in dna(4..50), band in 1usize..8) {
        let matrix = m();
        let sw = smith_waterman_score(&a, &b, &matrix, GAPS);
        let narrow = extend_gapped_banded(&a, &b, 0, 0, &matrix, GAPS, band, 100);
        let wide = extend_gapped_banded(&a, &b, 0, 0, &matrix, GAPS, band + 8, 100);
        prop_assert!(narrow.score <= sw, "banded {} > SW {sw}", narrow.score);
        prop_assert!(wide.score <= sw);
        prop_assert!(wide.score >= narrow.score, "wider band lost score");
    }
}
