//! Property tests for the vp-tree: the k-NN oracle equivalence is the
//! load-bearing invariant of the whole Mendel search path.

use mendel_seq::{BlockDistance, Hamming, Metric};
use mendel_vptree::{brute_force_knn, DynamicVpTree, VpPrefixTree, VpTree};
use proptest::prelude::*;

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..8, 6..7), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact k-NN equals brute force for arbitrary point sets — including
    /// duplicates and tiny sets.
    #[test]
    fn knn_equals_brute_force(
        pts in points(1..120),
        query in proptest::collection::vec(0u8..8, 6..7),
        k in 1usize..8,
        bucket in 1usize..12,
    ) {
        let metric = BlockDistance::new(Hamming);
        let tree = VpTree::build(pts.clone(), metric, bucket, 11);
        prop_assert_eq!(tree.check_invariants(), Ok(()));
        let got: Vec<f32> = tree.knn(&query, k).iter().map(|n| n.dist).collect();
        let metric = BlockDistance::new(Hamming);
        let want: Vec<f32> = brute_force_knn(&pts, &metric, &query, k).iter().map(|n| n.dist).collect();
        prop_assert_eq!(got, want);
    }

    /// Range search returns exactly the points within the radius.
    #[test]
    fn range_equals_filter(
        pts in points(1..100),
        query in proptest::collection::vec(0u8..8, 6..7),
        radius in 0.0f32..7.0,
        bucket in 1usize..10,
    ) {
        let metric = BlockDistance::new(Hamming);
        let tree = VpTree::build(pts.clone(), metric, bucket, 13);
        let mut got: Vec<u32> = tree.range(&query, radius).iter().map(|n| n.index).collect();
        got.sort_unstable();
        let metric = BlockDistance::new(Hamming);
        let mut want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| Metric::<[u8]>::dist(&metric.inner, &query[..], &p[..]) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// A dynamically-built tree answers identically to a bulk-built one.
    #[test]
    fn dynamic_equals_bulk(
        pts in points(1..80),
        query in proptest::collection::vec(0u8..8, 6..7),
        k in 1usize..5,
    ) {
        let bulk = VpTree::build(pts.clone(), BlockDistance::new(Hamming), 4, 17);
        let mut dynamic = DynamicVpTree::new(BlockDistance::new(Hamming), 4, 17);
        for p in pts {
            dynamic.insert(p);
        }
        prop_assert_eq!(dynamic.check_invariants(), Ok(()));
        let a: Vec<f32> = bulk.knn(&query, k).iter().map(|n| n.dist).collect();
        let b: Vec<f32> = dynamic.knn(&query, k).iter().map(|n| n.dist).collect();
        prop_assert_eq!(a, b);
        dynamic.compact();
        prop_assert_eq!(dynamic.check_invariants(), Ok(()));
    }

    /// Budgeted search distances never beat the exact ones and the full
    /// budget reproduces them.
    #[test]
    fn budget_monotonicity(
        pts in points(4..120),
        query in proptest::collection::vec(0u8..8, 6..7),
        budget in 1usize..64,
    ) {
        let tree = VpTree::build(pts, BlockDistance::new(Hamming), 4, 19);
        let exact: Vec<f32> = tree.knn(&query, 3).iter().map(|n| n.dist).collect();
        let full: Vec<f32> =
            tree.knn_with_budget(&query, 3, usize::MAX).iter().map(|n| n.dist).collect();
        prop_assert_eq!(&exact, &full);
        let capped = tree.knn_with_budget(&query, 3, budget);
        for (c, e) in capped.iter().zip(&exact) {
            prop_assert!(c.dist >= *e);
        }
    }

    /// Prefix hashing is total and stable, and tolerance only widens the
    /// reached set.
    #[test]
    fn prefix_hash_total_and_monotone(
        sample in points(8..64),
        query in proptest::collection::vec(0u8..8, 6..7),
        depth in 1usize..6,
        tau in 0.0f32..4.0,
    ) {
        let tree = VpPrefixTree::build(sample.clone(), BlockDistance::new(Hamming), depth, 23);
        prop_assert_eq!(tree.check_invariants(&sample), Ok(()));
        prop_assert_eq!(tree.check_invariants(std::slice::from_ref(&query)), Ok(()));
        let h = tree.hash(&query);
        prop_assert!(tree.bucket_index(h) < tree.num_buckets());
        prop_assert_eq!(h, tree.hash(&query));
        let tight = tree.hash_with_tolerance(&query, tau);
        let wide = tree.hash_with_tolerance(&query, tau + 1.0);
        prop_assert!(tight.contains(&h));
        for t in &tight {
            prop_assert!(wide.contains(t), "tolerance must be monotone");
        }
    }

    /// Stats invariants: every element is accounted for; depth bounds.
    #[test]
    fn stats_accounting(pts in points(1..200), bucket in 1usize..16) {
        let n = pts.len();
        let tree = VpTree::build(pts, BlockDistance::new(Hamming), bucket, 29);
        let s = tree.stats();
        prop_assert_eq!(s.points, n);
        // internal vantages + leaf bucket contents = all points.
        prop_assert_eq!(s.internal_nodes + (s.mean_bucket_fill * s.leaves as f64).round() as usize, n);
        prop_assert!(s.min_depth <= s.max_depth);
    }
}
