//! Search instrumentation for the vp-tree (`mendel.vptree.*`).
//!
//! Counting happens in two stages so the hot path stays cheap: the
//! traversal accumulates into a plain-integer [`SearchTally`] on the
//! stack, and each public search entry point flushes the tally into the
//! shared [`SearchMetrics`] atomics once — a handful of relaxed
//! `fetch_add`s per *query*, not per *distance call*. The overhead
//! budget (≤ 5% on `kernel_bench`) is verified by `obs_bench`.

use mendel_obs::{Counter, Registry};
use std::sync::Arc;

/// Shared counters for one tree (or one family of trees — handles may
/// be cloned across trees to aggregate, e.g. all trees on one storage
/// node). Default handles are *detached*: fully functional atomics that
/// simply belong to no registry.
#[derive(Debug, Clone, Default)]
pub struct SearchMetrics {
    /// Distance-kernel invocations (`dist` or `dist_bounded`), the
    /// paper's primary cost unit for similarity search.
    pub dist_calls: Arc<Counter>,
    /// `dist_bounded` early-abandons (`None` returns): calls whose
    /// running sum crossed the bound before finishing the window.
    pub early_abandons: Arc<Counter>,
    /// Tree vertices visited (internal + leaf).
    pub nodes_visited: Arc<Counter>,
    /// Leaf buckets scanned.
    pub leaf_scans: Arc<Counter>,
}

impl SearchMetrics {
    /// Detached counters (registered nowhere).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Counters registered under `mendel.vptree.*` in `registry`.
    pub fn registered(registry: &Registry) -> Self {
        let scope = registry.scoped("mendel.vptree");
        SearchMetrics {
            dist_calls: scope.counter("dist_calls"),
            early_abandons: scope.counter("early_abandons"),
            nodes_visited: scope.counter("nodes_visited"),
            leaf_scans: scope.counter("leaf_scans"),
        }
    }
}

/// Per-traversal accumulator: plain integers on the stack, flushed to
/// the shared atomics once per search.
#[derive(Debug, Default)]
pub(crate) struct SearchTally {
    pub dist_calls: u64,
    pub early_abandons: u64,
    pub nodes_visited: u64,
    pub leaf_scans: u64,
}

impl SearchTally {
    #[inline]
    pub fn flush(&self, metrics: &SearchMetrics) {
        if self.dist_calls > 0 {
            metrics.dist_calls.add(self.dist_calls);
        }
        if self.early_abandons > 0 {
            metrics.early_abandons.add(self.early_abandons);
        }
        if self.nodes_visited > 0 {
            metrics.nodes_visited.add(self.nodes_visited);
        }
        if self.leaf_scans > 0 {
            metrics.leaf_scans.add(self.leaf_scans);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_metrics_count_but_register_nothing() {
        let m = SearchMetrics::detached();
        m.dist_calls.add(3);
        assert_eq!(m.dist_calls.get(), 3);
    }

    #[test]
    fn registered_metrics_appear_in_snapshots() {
        let r = Registry::new();
        let m = SearchMetrics::registered(&r);
        m.early_abandons.inc();
        assert_eq!(r.snapshot().counter("mendel.vptree.early_abandons"), 1);
    }

    #[test]
    fn tally_flush_accumulates() {
        let m = SearchMetrics::detached();
        let tally = SearchTally {
            dist_calls: 10,
            early_abandons: 4,
            nodes_visited: 3,
            leaf_scans: 2,
        };
        tally.flush(&m);
        tally.flush(&m);
        assert_eq!(m.dist_calls.get(), 20);
        assert_eq!(m.early_abandons.get(), 8);
        assert_eq!(m.nodes_visited.get(), 6);
        assert_eq!(m.leaf_scans.get(), 4);
    }
}
