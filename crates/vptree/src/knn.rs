//! k-nearest-neighbour bookkeeping: result records and the bounded
//! max-heap that maintains the shrinking search radius τ (§III-C).

use mendel_seq::Metric;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One nearest-neighbour result: the point's index in its tree plus its
/// distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point in the owning tree's point arena.
    pub index: u32,
    /// Distance from the query to the point.
    pub dist: f32,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by distance; ties broken by index for determinism.
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded max-heap of the best `k` neighbours seen so far. The heap's
/// worst element defines τ: once full, only strictly closer points enter.
#[derive(Debug)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl KnnHeap {
    /// A heap retaining the best `k` neighbours (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KnnHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Current search radius τ: the distance of the worst retained
    /// neighbour, or `f32::INFINITY` while the heap is not yet full
    /// (the paper: "Initially τ encompasses all points in the tree").
    #[inline]
    pub fn tau(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// Offer a candidate; it is retained iff it improves the result set.
    pub fn offer(&mut self, index: u32, dist: f32) {
        if dist < self.tau() {
            self.heap.push(Neighbor { index, dist });
            if self.heap.len() > self.k {
                self.heap.pop();
            }
        }
    }

    /// Number of neighbours currently retained.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no neighbour has been retained yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain into a vector sorted by ascending distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

/// Brute-force k-NN over a point slice — the oracle the vp-tree is
/// property-tested against, and the fallback for tiny collections.
pub fn brute_force_knn<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    query: &P,
    k: usize,
) -> Vec<Neighbor> {
    let mut heap = KnnHeap::new(k);
    for (i, p) in points.iter().enumerate() {
        heap.offer(i as u32, metric.dist(query, p));
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::Hamming;

    #[test]
    fn tau_is_infinite_until_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.tau(), f32::INFINITY);
        h.offer(0, 5.0);
        assert_eq!(h.tau(), f32::INFINITY);
        h.offer(1, 3.0);
        assert_eq!(h.tau(), 5.0);
    }

    #[test]
    fn tau_shrinks_as_better_candidates_arrive() {
        let mut h = KnnHeap::new(2);
        h.offer(0, 5.0);
        h.offer(1, 3.0);
        h.offer(2, 1.0);
        assert_eq!(h.tau(), 3.0);
        let out = h.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            Neighbor {
                index: 2,
                dist: 1.0
            }
        );
        assert_eq!(
            out[1],
            Neighbor {
                index: 1,
                dist: 3.0
            }
        );
    }

    #[test]
    fn worse_candidates_are_rejected_when_full() {
        let mut h = KnnHeap::new(1);
        h.offer(0, 1.0);
        h.offer(1, 2.0);
        assert_eq!(
            h.into_sorted(),
            vec![Neighbor {
                index: 0,
                dist: 1.0
            }]
        );
    }

    #[test]
    fn equal_distance_does_not_replace_when_full() {
        let mut h = KnnHeap::new(1);
        h.offer(0, 1.0);
        h.offer(1, 1.0);
        let out = h.into_sorted();
        assert_eq!(out[0].index, 0, "first-seen wins on exact ties");
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        KnnHeap::new(0);
    }

    #[test]
    fn brute_force_oracle() {
        let points: Vec<Vec<u8>> = vec![vec![0, 0, 0], vec![0, 0, 1], vec![1, 1, 1], vec![2, 2, 2]];
        let metric = mendel_seq::BlockDistance::new(Hamming);
        let out = brute_force_knn(&points, &metric, &vec![0u8, 0, 0], 2);
        assert_eq!(
            out[0],
            Neighbor {
                index: 0,
                dist: 0.0
            }
        );
        assert_eq!(
            out[1],
            Neighbor {
                index: 1,
                dist: 1.0
            }
        );
    }

    #[test]
    fn brute_force_with_fewer_points_than_k() {
        let points: Vec<Vec<u8>> = vec![vec![0u8]];
        let metric = mendel_seq::BlockDistance::new(Hamming);
        let out = brute_force_knn(&points, &metric, &vec![1u8], 5);
        assert_eq!(out.len(), 1);
    }
}
