//! Multi-query batched kNN: scan each visited leaf once for many
//! concurrent queries (DESIGN.md §15.2).
//!
//! [`VpTree::knn_batch`] answers a whole batch of queries in one pass
//! with **per-query results bit-identical to [`VpTree::knn_with_budget`]**,
//! including all four `SearchMetrics` counters. The trick is to keep
//! every query's *traversal* private — an explicit stack that replays
//! the recursive descent decision-for-decision — while sharing the
//! expensive part, the leaf scans:
//!
//! 1. each query advances through internal nodes until it *parks* at a
//!    leaf (or finishes);
//! 2. parked queries are grouped by leaf; each leaf's candidate windows
//!    are materialized once per group and evaluated through the
//!    multi-candidate [`Metric::dist_bounded_many`] kernel (one SIMD/ILP
//!    lane per candidate);
//! 3. kernel verdicts are *replayed* in sequential bucket order against
//!    each query's live τ.
//!
//! The replay is exact, not approximate. A candidate chunk is evaluated
//! under the τ a query held when the chunk started (`τ_chunk`); τ only
//! shrinks, so at replay time the live bound `τ_live ≤ τ_chunk`. By the
//! `dist_bounded` contract (`Some(d)` ⟺ `d ≤ bound`):
//!
//! * kernel `None` ⟹ `d > τ_chunk ≥ τ_live` ⟹ the sequential scan would
//!   also see `None` — count an early abandon;
//! * kernel `Some(d)` with `d ≤ τ_live` ⟹ the sequential scan would see
//!   the bit-identical `Some(d)` — offer it to the heap;
//! * kernel `Some(d)` with `d > τ_live` ⟹ sequential `None` — early
//!   abandon.
//!
//! Budgets are re-checked before every replayed candidate, exactly where
//! the sequential loop checks them, so a budget-exhausted query stops on
//! the same candidate with the same counters.

use crate::knn::{KnnHeap, Neighbor};
use crate::metrics::SearchTally;
use crate::tree::{Node, VpTree, NIL};
use mendel_seq::Metric;
use std::collections::BTreeMap;

/// How many candidates are evaluated per kernel call during a batched
/// leaf scan. One chunk shares a single bound (the query's τ at chunk
/// start); smaller chunks track the shrinking τ more closely, larger
/// chunks feed the SIMD lanes better. 16 covers two AVX2 gather groups.
const LEAF_CHUNK: usize = 16;

/// A pending traversal step: visit `node` if the query ball still
/// intersects its distance band. `d` is the query↔vantage distance of
/// the parent that pushed the frame.
struct Frame {
    node: u32,
    d: f32,
    bounds: (f32, f32),
    /// The root frame skips the band test — `knn_with_budget` enters the
    /// root unconditionally.
    root: bool,
}

/// Per-query traversal state: explicit stack, result heap, remaining
/// budget, and a private counter tally (flushed once, like the
/// sequential path).
struct QueryState {
    stack: Vec<Frame>,
    heap: KnnHeap,
    budget: usize,
    tally: SearchTally,
    /// Leaf the query is parked at, or `NIL`.
    parked: u32,
    done: bool,
}

impl QueryState {
    fn exhaust(&mut self) {
        // Sequential budget exhaustion unwinds the recursion without
        // touching another counter; dropping the stack is equivalent.
        self.stack.clear();
        self.done = true;
    }
}

impl<P, M: Metric<P>> VpTree<P, M> {
    /// Batched k-nearest-neighbour search: one result vector per query,
    /// each bit-identical (results *and* observability counters) to
    /// `knn_with_budget(query, n, budget)`.
    pub fn knn_batch(&self, queries: &[P], n: usize, budget: usize) -> Vec<Vec<Neighbor>> {
        if self.root == NIL || n == 0 || budget == 0 {
            return queries.iter().map(|_| Vec::new()).collect();
        }
        let mut states: Vec<QueryState> = queries
            .iter()
            .map(|_| QueryState {
                stack: vec![Frame {
                    node: self.root,
                    d: 0.0,
                    bounds: (0.0, 0.0),
                    root: true,
                }],
                heap: KnnHeap::new(n),
                budget,
                tally: SearchTally::default(),
                parked: NIL,
                done: false,
            })
            .collect();

        for (st, query) in states.iter_mut().zip(queries) {
            self.advance(st, query);
        }
        let mut verdicts: Vec<Option<f32>> = Vec::with_capacity(LEAF_CHUNK);
        loop {
            // Group parked queries by leaf so each leaf's candidate refs
            // are materialized once per round (BTreeMap: deterministic
            // scan order).
            let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (qi, st) in states.iter().enumerate() {
                if !st.done && st.parked != NIL {
                    groups.entry(st.parked).or_default().push(qi);
                }
            }
            if groups.is_empty() {
                break;
            }
            for (leaf, members) in groups {
                let Node::Leaf { bucket } = &self.nodes[leaf as usize] else {
                    continue;
                };
                let cands: Vec<&P> = bucket.iter().map(|&i| &self.points[i as usize]).collect();
                for qi in members {
                    let st = &mut states[qi];
                    st.parked = NIL;
                    self.scan_leaf(st, &queries[qi], bucket, &cands, &mut verdicts);
                    if !st.done {
                        self.advance(st, &queries[qi]);
                    }
                }
            }
        }

        states
            .into_iter()
            .map(|st| {
                st.tally.flush(&self.obs);
                st.heap.into_sorted()
            })
            .collect()
    }

    /// Pop frames until the query parks at a leaf or finishes. Mirrors
    /// `search_rec` exactly: band tests use the live τ at pop time,
    /// which is when the recursion would evaluate them (the first child
    /// is popped immediately after its parent; the second only after the
    /// first subtree completed).
    fn advance(&self, st: &mut QueryState, query: &P) {
        while let Some(fr) = st.stack.pop() {
            if !fr.root {
                if fr.node == NIL {
                    continue;
                }
                if !Self::band_intersects(fr.d, st.heap.tau(), fr.bounds) {
                    continue;
                }
            }
            if st.budget == 0 {
                st.exhaust();
                return;
            }
            st.tally.nodes_visited += 1;
            match &self.nodes[fr.node as usize] {
                Node::Leaf { .. } => {
                    st.tally.leaf_scans += 1;
                    st.parked = fr.node;
                    return;
                }
                Node::Internal {
                    vantage,
                    radius,
                    left,
                    right,
                    left_bounds,
                    right_bounds,
                } => {
                    let tau = st.heap.tau();
                    let vantage_bound = if tau.is_infinite() {
                        f32::INFINITY
                    } else {
                        tau + left_bounds.1.max(right_bounds.1)
                    };
                    let bounded = self.metric.dist_bounded(
                        query,
                        &self.points[*vantage as usize],
                        vantage_bound,
                    );
                    st.budget -= 1;
                    st.tally.dist_calls += 1;
                    let Some(d) = bounded else {
                        st.tally.early_abandons += 1;
                        continue;
                    };
                    st.heap.offer(*vantage, d);
                    let (first, second, fb, sb) = if d <= *radius {
                        (*left, *right, *left_bounds, *right_bounds)
                    } else {
                        (*right, *left, *right_bounds, *left_bounds)
                    };
                    st.stack.push(Frame {
                        node: second,
                        d,
                        bounds: sb,
                        root: false,
                    });
                    st.stack.push(Frame {
                        node: first,
                        d,
                        bounds: fb,
                        root: false,
                    });
                }
            }
        }
        st.done = true;
    }

    /// τ-staged batched leaf scan (module docs): evaluate candidate
    /// chunks through the multi-candidate kernel under the chunk-start
    /// τ, then replay verdicts in bucket order against the live τ.
    fn scan_leaf(
        &self,
        st: &mut QueryState,
        query: &P,
        bucket: &[u32],
        cands: &[&P],
        verdicts: &mut Vec<Option<f32>>,
    ) {
        let mut i = 0;
        while i < bucket.len() {
            if st.budget == 0 {
                st.exhaust();
                return;
            }
            let hi = (i + LEAF_CHUNK).min(bucket.len());
            let chunk_tau = st.heap.tau();
            self.metric
                .dist_bounded_many(query, &cands[i..hi], chunk_tau, verdicts);
            for (j, verdict) in (i..hi).zip(verdicts.iter()) {
                if st.budget == 0 {
                    st.exhaust();
                    return;
                }
                st.budget -= 1;
                st.tally.dist_calls += 1;
                match verdict {
                    Some(d) if *d <= st.heap.tau() => st.heap.offer(bucket[j], *d),
                    _ => st.tally.early_abandons += 1,
                }
            }
            i = hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SearchMetrics;
    use mendel_obs::Registry;
    use mendel_seq::{Alphabet, BlockDistance, MatrixDistance, Unbounded};

    fn lcg_windows(count: usize, len: usize, alpha: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize % alpha) as u8
        };
        (0..count)
            .map(|_| (0..len).map(|_| next()).collect())
            .collect()
    }

    fn counters(reg: &Registry) -> [u64; 4] {
        let snap = reg.snapshot();
        [
            snap.counter("mendel.vptree.dist_calls"),
            snap.counter("mendel.vptree.early_abandons"),
            snap.counter("mendel.vptree.nodes_visited"),
            snap.counter("mendel.vptree.leaf_scans"),
        ]
    }

    /// Core bit-identity property: results and counter totals of the
    /// batched search equal the sequential search, across metrics, k,
    /// budgets, and batch shapes.
    #[test]
    fn knn_batch_is_bit_identical_to_sequential() {
        let matrix = MatrixDistance::mendel(&mendel_seq::ScoringMatrix::blosum62());
        for (alpha, tree_seed) in [(24usize, 7u64), (24, 99), (4, 13)] {
            let points = lcg_windows(300, 16, alpha, tree_seed);
            let queries = lcg_windows(33, 16, alpha, tree_seed ^ 0xFFFF);
            let metric = BlockDistance::new(matrix.clone());
            let seq_reg = Registry::new();
            let batch_reg = Registry::new();
            let mut seq_tree = VpTree::build(points.clone(), metric.clone(), 8, tree_seed);
            seq_tree.set_metrics(SearchMetrics::registered(&seq_reg));
            let mut batch_tree = VpTree::build(points, metric, 8, tree_seed);
            batch_tree.set_metrics(SearchMetrics::registered(&batch_reg));
            for (k, budget) in [(1usize, usize::MAX), (4, usize::MAX), (4, 37), (8, 120)] {
                let expected: Vec<Vec<Neighbor>> = queries
                    .iter()
                    .map(|q| seq_tree.knn_with_budget(q, k, budget))
                    .collect();
                let got = batch_tree.knn_batch(&queries, k, budget);
                for (qi, (e, g)) in expected.iter().zip(&got).enumerate() {
                    assert_eq!(e.len(), g.len(), "k {k} budget {budget} query {qi}");
                    for (en, gn) in e.iter().zip(g) {
                        assert_eq!(en.index, gn.index, "k {k} budget {budget} query {qi}");
                        assert_eq!(
                            en.dist.to_bits(),
                            gn.dist.to_bits(),
                            "k {k} budget {budget} query {qi}"
                        );
                    }
                }
                assert_eq!(
                    counters(&seq_reg),
                    counters(&batch_reg),
                    "counter totals diverged at k {k} budget {budget}"
                );
            }
        }
    }

    #[test]
    fn knn_batch_matches_sequential_under_unbounded_metric() {
        let points = lcg_windows(150, 12, 4, 21);
        let queries = lcg_windows(17, 12, 4, 22);
        let tree = VpTree::build(
            points,
            Unbounded(BlockDistance::new(MatrixDistance::unit(Alphabet::Dna))),
            6,
            21,
        );
        let got = tree.knn_batch(&queries, 5, usize::MAX);
        for (q, g) in queries.iter().zip(&got) {
            let e = tree.knn_with_budget(q, 5, usize::MAX);
            assert_eq!(e, *g);
        }
    }

    #[test]
    fn knn_batch_degenerate_inputs() {
        let points = lcg_windows(40, 8, 4, 3);
        let tree = VpTree::build(
            points,
            BlockDistance::new(MatrixDistance::unit(Alphabet::Dna)),
            4,
            3,
        );
        assert!(tree.knn_batch(&[], 4, usize::MAX).is_empty());
        let queries = lcg_windows(3, 8, 4, 5);
        assert_eq!(tree.knn_batch(&queries, 0, usize::MAX), vec![vec![]; 3]);
        assert_eq!(tree.knn_batch(&queries, 4, 0), vec![vec![]; 3]);
        // Budget 1 spends the single call on the root vantage.
        for (q, g) in queries.iter().zip(tree.knn_batch(&queries, 4, 1)) {
            assert_eq!(tree.knn_with_budget(q, 4, 1), g);
        }
    }
}
