//! Dynamic vp-tree insertion (§III-D).
//!
//! The original vp-tree is static: "the dataset in its entirety must be
//! present and inserted at the time of creation". Mendel needs ongoing
//! ingest, so this module implements the four dynamic-update cases of
//! Fu et al. (VLDB J. 2000) that the paper adopts:
//!
//! 1. leaf bucket not full → add to bucket;
//! 2. leaf full but sibling has room → redistribute under the parent;
//! 3. leaf and sibling full but an ancestor's subtree has room →
//!    redistribute under that ancestor;
//! 4. completely full tree → split the root (rebuild, growing a level).
//!
//! "Redistribute" is a balanced rebuild of the affected subtree, so every
//! case leaves the touched region median-balanced. The paper's preferred
//! *batch* path (`insert_batch`) rebuilds once per batch — "a middle
//! ground ... which maintains an acceptable performance while maintaining
//! an optimized, balanced vp-tree". Point arena indices are stable across
//! all rebuilds, so external references (Mendel's inverted-index block
//! ids) never dangle.

use crate::knn::Neighbor;
use crate::tree::{Node, VpTree, VpTreeStats, NIL};
use mendel_seq::Metric;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which of the four §III-D cases an insertion exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Case 1: the leaf bucket had room (also covers filling an empty slot).
    Appended,
    /// Case 2: leaf full, values redistributed under the immediate parent.
    RebuiltParent,
    /// Case 3: redistributed under an ancestor `levels` above the leaf
    /// (`levels ≥ 2`).
    RebuiltAncestor(usize),
    /// Case 4: the whole tree was full and was rebuilt one level deeper.
    RebuiltRoot,
}

/// A vp-tree supporting single-element and batched insertion.
#[derive(Debug)]
pub struct DynamicVpTree<P, M> {
    tree: VpTree<P, M>,
    rebuild_count: usize,
}

impl<P: Clone, M: Metric<P>> DynamicVpTree<P, M> {
    /// An empty dynamic tree.
    pub fn new(metric: M, bucket_capacity: usize, seed: u64) -> Self {
        DynamicVpTree {
            tree: VpTree::build(Vec::new(), metric, bucket_capacity, seed),
            rebuild_count: 0,
        }
    }

    /// Bulk-build from an initial collection (preferred when the data is
    /// known up front).
    pub fn build(points: Vec<P>, metric: M, bucket_capacity: usize, seed: u64) -> Self {
        DynamicVpTree {
            tree: VpTree::build(points, metric, bucket_capacity, seed),
            rebuild_count: 0,
        }
    }

    /// Insert one element, returning its stable arena index and the
    /// §III-D case taken.
    pub fn insert(&mut self, point: P) -> (u32, InsertOutcome) {
        let result = self.insert_inner(point);
        #[cfg(feature = "strict-invariants")]
        self.tree.assert_invariants("dynamic insert");
        result
    }

    fn insert_inner(&mut self, point: P) -> (u32, InsertOutcome) {
        let idx = self.tree.points.len() as u32;
        self.tree.points.push(point);

        if self.tree.root == NIL {
            self.tree.nodes.push(Node::Leaf { bucket: vec![idx] });
            self.tree.root = (self.tree.nodes.len() - 1) as u32;
            return (idx, InsertOutcome::Appended);
        }

        // Descend to the leaf, recording the path and expanding the child
        // bounds along the way so ancestor prunes stay sound for the new
        // element.
        let mut path: Vec<u32> = Vec::new();
        let mut node = self.tree.root;
        loop {
            path.push(node);
            match &mut self.tree.nodes[node as usize] {
                Node::Leaf { .. } => break,
                Node::Internal {
                    vantage,
                    radius,
                    left,
                    right,
                    left_bounds,
                    right_bounds,
                } => {
                    let d = self.tree.metric.dist(
                        &self.tree.points[idx as usize],
                        &self.tree.points[*vantage as usize],
                    );
                    let go_left = d <= *radius;
                    let (child, bounds) = if go_left {
                        (left, left_bounds)
                    } else {
                        (right, right_bounds)
                    };
                    bounds.0 = bounds.0.min(d);
                    bounds.1 = bounds.1.max(d);
                    if *child == NIL {
                        // Empty slot (possible after duplicate-heavy builds):
                        // create a fresh leaf in place.
                        self.tree.nodes.push(Node::Leaf { bucket: vec![idx] });
                        let new_leaf = (self.tree.nodes.len() - 1) as u32;
                        match &mut self.tree.nodes[node as usize] {
                            Node::Internal { left, right, .. } => {
                                if go_left {
                                    *left = new_leaf;
                                } else {
                                    *right = new_leaf;
                                }
                            }
                            Node::Leaf { .. } => unreachable!(),
                        }
                        return (idx, InsertOutcome::Appended);
                    }
                    node = *child;
                }
            }
        }

        // Case 1: room in the leaf bucket. The loop above only breaks on
        // a leaf, so `node` is its index.
        let leaf = node;
        if let Node::Leaf { bucket } = &mut self.tree.nodes[leaf as usize] {
            if bucket.len() < self.tree.bucket_capacity {
                bucket.push(idx);
                return (idx, InsertOutcome::Appended);
            }
        }

        // Cases 2–4: walk up until a subtree has spare capacity, then
        // redistribute (rebuild) it including the new element.
        for (levels_up, anc_pos) in (0..path.len() - 1).rev().enumerate() {
            let anc = path[anc_pos];
            let (count, height) = self.subtree_occupancy(anc);
            // "Has room" = a balanced rebuild can absorb the new element
            // without growing the subtree's height: a height-h vp-tree
            // holds at most 2^h full buckets plus 2^h − 1 vantage elements.
            let capacity =
                (1usize << height) * self.tree.bucket_capacity + ((1usize << height) - 1);
            if count + 1 <= capacity {
                self.rebuild_subtree(anc, path.get(anc_pos.wrapping_sub(1)).copied(), idx);
                let levels = levels_up + 1;
                return (
                    idx,
                    if levels == 1 {
                        InsertOutcome::RebuiltParent
                    } else {
                        InsertOutcome::RebuiltAncestor(levels)
                    },
                );
            }
        }

        // Case 4: the tree is completely full — split the root (rebuild;
        // the build routine grows the extra level it needs).
        self.rebuild_root();
        (idx, InsertOutcome::RebuiltRoot)
    }

    /// Batched insertion (§III-D's recommended "middle ground"). A batch
    /// that is large relative to the existing tree (≥ 25%) triggers one
    /// balanced rebuild over everything; smaller batches fall back to
    /// per-element insertion, whose §III-D cases only rebuild the
    /// affected subtrees. Returns the stable indices.
    pub fn insert_batch(&mut self, batch: impl IntoIterator<Item = P>) -> Vec<u32> {
        let batch: Vec<P> = batch.into_iter().collect();
        let start = self.tree.points.len() as u32;
        if batch.is_empty() {
            return Vec::new();
        }
        if batch.len() * 4 >= self.tree.points.len() {
            self.tree.points.extend(batch);
            self.rebuild_root();
            #[cfg(feature = "strict-invariants")]
            self.tree.assert_invariants("batch rebuild");
            (start..self.tree.points.len() as u32).collect()
        } else {
            batch.into_iter().map(|p| self.insert(p).0).collect()
        }
    }

    /// (elements, height) of the subtree rooted at `node`; a lone leaf has
    /// height 0.
    fn subtree_occupancy(&self, node: u32) -> (usize, usize) {
        match &self.tree.nodes[node as usize] {
            Node::Leaf { bucket } => (bucket.len(), 0),
            Node::Internal { left, right, .. } => {
                let (mut c, mut h) = (1usize, 0usize); // vantage counts as an element
                for child in [*left, *right] {
                    if child != NIL {
                        let (cc, ch) = self.subtree_occupancy(child);
                        c += cc;
                        h = h.max(ch + 1);
                    }
                }
                (c, h.max(1))
            }
        }
    }

    /// Collect every element index under `node`.
    fn collect_subtree(&self, node: u32, out: &mut Vec<u32>) {
        match &self.tree.nodes[node as usize] {
            Node::Leaf { bucket } => out.extend_from_slice(bucket),
            Node::Internal {
                vantage,
                left,
                right,
                ..
            } => {
                out.push(*vantage);
                if *left != NIL {
                    self.collect_subtree(*left, out);
                }
                if *right != NIL {
                    self.collect_subtree(*right, out);
                }
            }
        }
    }

    /// Rebuild the subtree at `node` with `extra` added, grafting the new
    /// subtree into `parent` (or the root slot). Old arena nodes become
    /// garbage; [`Self::compact`] reclaims them.
    fn rebuild_subtree(&mut self, node: u32, parent: Option<u32>, extra: u32) {
        let mut items = Vec::new();
        self.collect_subtree(node, &mut items);
        items.push(extra);
        self.rebuild_count += 1;
        let mut rng = ChaCha8Rng::seed_from_u64(self.tree.seed ^ (self.rebuild_count as u64) << 17);
        let new_node = self.tree.build_rec(&mut items, &mut rng);
        match parent {
            None => self.tree.root = new_node,
            Some(p) => match &mut self.tree.nodes[p as usize] {
                Node::Internal { left, right, .. } => {
                    if *left == node {
                        *left = new_node;
                    } else {
                        debug_assert_eq!(*right, node, "parent must reference the old subtree");
                        *right = new_node;
                    }
                }
                Node::Leaf { .. } => unreachable!("parent of a subtree is internal"),
            },
        }
    }

    /// Rebuild the whole tree from the point arena (case 4 and batch path).
    fn rebuild_root(&mut self) {
        self.rebuild_count += 1;
        self.tree.nodes.clear();
        let mut rng = ChaCha8Rng::seed_from_u64(self.tree.seed ^ (self.rebuild_count as u64) << 17);
        let mut items: Vec<u32> = (0..self.tree.points.len() as u32).collect();
        self.tree.root = self.tree.build_rec(&mut items, &mut rng);
    }

    /// Drop garbage arena nodes left behind by subtree rebuilds (a full
    /// rebuild, which also rebalances).
    pub fn compact(&mut self) {
        self.rebuild_root();
        #[cfg(feature = "strict-invariants")]
        self.tree.assert_invariants("compact");
    }

    /// Deep structural validation of the underlying tree — see
    /// [`VpTree::check_invariants`]. After subtree rebuilds the arena
    /// holds orphan nodes; the checker only audits what is reachable,
    /// so it holds at every point of a dynamic tree's life.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants()
    }

    /// How many subtree/root rebuilds have run so far.
    #[inline]
    pub fn rebuilds(&self) -> usize {
        self.rebuild_count
    }

    /// The `n` nearest neighbours of `query` (see [`VpTree::knn`]).
    pub fn knn(&self, query: &P, n: usize) -> Vec<Neighbor> {
        self.tree.knn(query, n)
    }

    /// Budgeted k-NN (see [`VpTree::knn_with_budget`]).
    pub fn knn_with_budget(&self, query: &P, n: usize, budget: usize) -> Vec<Neighbor> {
        self.tree.knn_with_budget(query, n, budget)
    }

    /// Batched multi-query search (see [`VpTree::knn_batch`]): per-query
    /// results and counters bit-identical to [`Self::knn_with_budget`].
    pub fn knn_batch(&self, queries: &[P], n: usize, budget: usize) -> Vec<Vec<Neighbor>> {
        self.tree.knn_batch(queries, n, budget)
    }

    /// All neighbours within `radius` (see [`VpTree::range`]).
    pub fn range(&self, query: &P, radius: f32) -> Vec<Neighbor> {
        self.tree.range(query, radius)
    }

    /// Number of indexed elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when nothing is indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The element at stable arena index `i`.
    #[inline]
    pub fn point(&self, i: u32) -> &P {
        self.tree.point(i)
    }

    /// Structural statistics of the underlying tree.
    pub fn stats(&self) -> VpTreeStats {
        self.tree.stats()
    }

    /// Borrow the underlying static tree.
    pub fn as_tree(&self) -> &VpTree<P, M> {
        &self.tree
    }

    /// Attach search counters to the underlying tree (preserved across
    /// rebuilds, which restructure the arena in place).
    pub fn set_metrics(&mut self, metrics: crate::metrics::SearchMetrics) {
        self.tree.set_metrics(metrics);
    }

    /// The underlying tree's search counters.
    pub fn search_metrics(&self) -> &crate::metrics::SearchMetrics {
        self.tree.search_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::brute_force_knn;
    use mendel_seq::{BlockDistance, Hamming};
    use rand::Rng;

    type Tree = DynamicVpTree<Vec<u8>, BlockDistance<Hamming>>;

    fn empty(bucket: usize) -> Tree {
        DynamicVpTree::new(BlockDistance::new(Hamming), bucket, 99)
    }

    fn random_points(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.random_range(0..20u8)).collect())
            .collect()
    }

    #[test]
    fn first_insert_creates_root_leaf() {
        let mut t = empty(4);
        let (idx, outcome) = t.insert(vec![1, 2, 3]);
        assert_eq!(idx, 0);
        assert_eq!(outcome, InsertOutcome::Appended);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn case1_fills_bucket_without_rebuild() {
        let mut t = empty(4);
        for p in random_points(4, 6, 1) {
            let (_, o) = t.insert(p);
            assert_eq!(o, InsertOutcome::Appended);
        }
        assert_eq!(t.rebuilds(), 0);
    }

    #[test]
    fn overflow_triggers_redistribution() {
        let mut t = empty(4);
        let mut seen_rebuild = false;
        for p in random_points(20, 6, 2) {
            let (_, o) = t.insert(p);
            if o != InsertOutcome::Appended {
                seen_rebuild = true;
            }
        }
        assert!(
            seen_rebuild,
            "20 inserts into bucket-4 tree must rebuild at least once"
        );
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn all_four_cases_are_reachable() {
        let mut t = empty(2);
        let mut outcomes = std::collections::HashSet::new();
        for p in random_points(300, 8, 3) {
            let (_, o) = t.insert(p);
            outcomes.insert(std::mem::discriminant(&o));
        }
        assert!(outcomes.contains(&std::mem::discriminant(&InsertOutcome::Appended)));
        assert!(
            outcomes.len() >= 3,
            "expected at least 3 distinct §III-D cases, saw {}",
            outcomes.len()
        );
    }

    #[test]
    fn incremental_tree_answers_knn_exactly() {
        let points = random_points(400, 8, 4);
        let metric = BlockDistance::new(Hamming);
        let mut t = empty(8);
        for p in points.clone() {
            t.insert(p);
        }
        for q in random_points(20, 8, 5) {
            let got: Vec<f32> = t.knn(&q, 4).iter().map(|n| n.dist).collect();
            let want: Vec<f32> = brute_force_knn(&points, &metric, &q, 4)
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn invariants_hold_through_insert_churn() {
        let mut t = empty(2); // tiny buckets force every §III-D case
        for (i, p) in random_points(300, 8, 50).into_iter().enumerate() {
            t.insert(p);
            if i % 37 == 0 {
                assert_eq!(t.check_invariants(), Ok(()), "after insert {i}");
            }
        }
        assert_eq!(t.check_invariants(), Ok(()));
        t.compact();
        assert_eq!(t.check_invariants(), Ok(()));
        t.insert_batch(random_points(200, 8, 51)); // large batch: root rebuild
        assert_eq!(t.check_invariants(), Ok(()));
        t.insert_batch(random_points(5, 8, 52)); // small batch: per-element
        assert_eq!(t.check_invariants(), Ok(()));
    }

    #[test]
    fn indices_are_stable_across_rebuilds() {
        let points = random_points(200, 8, 6);
        let mut t = empty(2); // tiny buckets force many rebuilds
        let mut indices = Vec::new();
        for p in points.clone() {
            indices.push(t.insert(p).0);
        }
        assert!(t.rebuilds() > 0);
        for (i, p) in indices.into_iter().zip(points.iter()) {
            assert_eq!(t.point(i), p, "index {i} must still address its point");
        }
    }

    #[test]
    fn batch_insert_is_balanced() {
        // §III-D: batches keep the tree "optimized, balanced".
        let mut t = empty(8);
        t.insert_batch(random_points(2048, 8, 7));
        let s = t.stats();
        assert_eq!(s.points, 2048);
        assert!(
            s.max_depth <= 13,
            "batched tree must stay balanced, depth {}",
            s.max_depth
        );
        assert_eq!(t.rebuilds(), 1, "one rebuild per batch");
    }

    #[test]
    fn batch_insert_returns_contiguous_indices() {
        let mut t = empty(4);
        t.insert(vec![0u8; 4]);
        let ids = t.insert_batch(vec![vec![1u8; 4], vec![2u8; 4]]);
        assert_eq!(ids, vec![1, 2]);
        let empty_ids = t.insert_batch(Vec::<Vec<u8>>::new());
        assert!(empty_ids.is_empty());
    }

    #[test]
    fn naive_inserts_are_less_balanced_than_batch() {
        // The §III-D motivation: one-at-a-time insertion degrades balance
        // relative to a batch rebuild over the same data.
        let points = random_points(1024, 8, 8);
        let mut naive = empty(8);
        for p in points.clone() {
            naive.insert(p);
        }
        let mut batched = empty(8);
        batched.insert_batch(points);
        assert!(
            naive.stats().max_depth >= batched.stats().max_depth,
            "naive {} vs batched {}",
            naive.stats().max_depth,
            batched.stats().max_depth
        );
    }

    #[test]
    fn compact_preserves_answers() {
        let mut t = empty(2);
        let points = random_points(100, 6, 9);
        for p in points {
            t.insert(p);
        }
        let q = vec![1u8; 6];
        let before: Vec<f32> = t.knn(&q, 5).iter().map(|n| n.dist).collect();
        t.compact();
        let after: Vec<f32> = t.knn(&q, 5).iter().map(|n| n.dist).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn dynamic_searches_route_through_the_bounded_kernel_bit_identically() {
        // The dynamic tree delegates knn / budgeted knn / range to the
        // inner VpTree's bounded-kernel search; incremental inserts must
        // not break the bit-identity contract against an `Unbounded`
        // twin grown through the same mutation sequence.
        use mendel_seq::{MatrixDistance, ScoringMatrix, Unbounded};
        let matrix = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        let mut bounded = DynamicVpTree::new(BlockDistance::new(matrix.clone()), 4, 7);
        let mut baseline = DynamicVpTree::new(BlockDistance::new(Unbounded(matrix)), 4, 7);
        for chunk in random_points(300, 12, 40).chunks(60) {
            bounded.insert_batch(chunk.to_vec());
            baseline.insert_batch(chunk.to_vec());
        }
        for q in random_points(12, 12, 41) {
            for (g, w) in [
                (bounded.knn(&q, 5), baseline.knn(&q, 5)),
                (
                    bounded.knn_with_budget(&q, 5, 64),
                    baseline.knn_with_budget(&q, 5, 64),
                ),
                (bounded.range(&q, 30.0), baseline.range(&q, 30.0)),
            ] {
                assert_eq!(g.len(), w.len());
                for (a, b) in g.iter().zip(&w) {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.dist.to_bits(), b.dist.to_bits());
                }
            }
        }
    }

    #[test]
    fn mixed_batch_and_single_inserts() {
        let metric = BlockDistance::new(Hamming);
        let a = random_points(64, 6, 10);
        let b = random_points(64, 6, 11);
        let mut t = empty(4);
        t.insert_batch(a.clone());
        for p in b.clone() {
            t.insert(p);
        }
        let mut all = a;
        all.extend(b);
        for q in random_points(10, 6, 12) {
            let got: Vec<f32> = t.knn(&q, 3).iter().map(|n| n.dist).collect();
            let want: Vec<f32> = brute_force_knn(&all, &metric, &q, 3)
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(got, want);
        }
    }
}
