//! The vantage-point *prefix* tree LSH (§III-E/F).
//!
//! A full vp-tree over a voluminous dataset cannot serve as a hash
//! function ("maintaining a vp-tree for the entire dataset at this scale
//! is non-trivial"), so the paper builds a *depth-limited* vp-tree over a
//! sample of the data and uses root-to-node binary path prefixes as the
//! hash value: the root's prefix is 1, a left step shifts in a 0, a right
//! step shifts in a 1. Traversal stops at a cutoff depth threshold — "the
//! depth of the threshold effectively determines the resolution of
//! similarity that each group maintains" (Fig. 2) — and similar inputs
//! collide into the same bucket, which the two-tier DHT maps onto a node
//! group.
//!
//! Queries carry a tolerance τ: when a query ball straddles a partition
//! boundary (`|d − μ| ≤ τ`) the traversal follows *both* children and the
//! query is replicated to every group reached (§V-B).

use mendel_seq::Metric;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One internal vertex of the prefix tree: a vantage point and its μ.
#[derive(Debug, Clone)]
struct PrefixNode<P> {
    vantage: P,
    radius: f32,
}

/// A depth-limited vp-tree used as a locality-sensitive hash function.
#[derive(Debug)]
pub struct VpPrefixTree<P, M> {
    metric: M,
    depth: usize,
    /// Complete binary tree in heap order: node `i` has children `2i+1`,
    /// `2i+2`; there are `2^depth − 1` internal vertices.
    nodes: Vec<PrefixNode<P>>,
}

impl<P: Clone, M: Metric<P>> VpPrefixTree<P, M> {
    /// Build the hash tree from a `sample` of the data. `depth` is the
    /// cutoff threshold; the tree hashes into `2^depth` buckets.
    ///
    /// # Panics
    /// Panics if the sample is empty or `depth == 0`.
    pub fn build(sample: Vec<P>, metric: M, depth: usize, seed: u64) -> Self {
        assert!(depth >= 1, "depth threshold must be at least 1");
        assert!(!sample.is_empty(), "prefix tree needs a non-empty sample");
        let n_nodes = (1usize << depth) - 1;
        let fallback = sample[0].clone();
        let mut nodes: Vec<Option<PrefixNode<P>>> = vec![None; n_nodes];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut tree = VpPrefixTree {
            metric,
            depth,
            nodes: Vec::new(),
        };
        tree.build_rec(0, sample, &fallback, &mut nodes, &mut rng);
        tree.nodes = nodes
            .into_iter()
            // `build_rec` fills every heap slot; should one ever be
            // missed, degrade to the total fallback router (everything
            // left) instead of aborting ingest.
            .map(|n| {
                n.unwrap_or_else(|| PrefixNode {
                    vantage: fallback.clone(),
                    radius: f32::INFINITY,
                })
            })
            .collect();
        #[cfg(feature = "strict-invariants")]
        tree.assert_invariants(std::slice::from_ref(&fallback), "build");
        tree
    }

    fn build_rec(
        &self,
        node: usize,
        mut items: Vec<P>,
        fallback: &P,
        out: &mut Vec<Option<PrefixNode<P>>>,
        rng: &mut ChaCha8Rng,
    ) {
        if node >= out.len() {
            return;
        }
        if items.is_empty() {
            // Starved branch (duplicate-heavy samples): route everything
            // left with an infinite radius so hashing stays total.
            out[node] = Some(PrefixNode {
                vantage: fallback.clone(),
                radius: f32::INFINITY,
            });
            self.build_rec(2 * node + 1, Vec::new(), fallback, out, rng);
            self.build_rec(2 * node + 2, Vec::new(), fallback, out, rng);
            return;
        }
        // Random vantage from the sample (the spread heuristic matters
        // little at the coarse resolutions used for group hashing).
        let v_idx = rng.random_range(0..items.len());
        let vantage = items.swap_remove(v_idx);
        let mut dists: Vec<(P, f32)> = items
            .into_iter()
            .map(|p| {
                let d = self.metric.dist(&vantage, &p);
                (p, d)
            })
            .collect();
        let radius = if dists.is_empty() {
            0.0
        } else {
            let mid = (dists.len() - 1) / 2;
            dists.select_nth_unstable_by(mid, |a, b| a.1.total_cmp(&b.1));
            dists[mid].1
        };
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (p, d) in dists {
            if d <= radius {
                left.push(p);
            } else {
                right.push(p);
            }
        }
        out[node] = Some(PrefixNode { vantage, radius });
        self.build_rec(2 * node + 1, left, fallback, out, rng);
        self.build_rec(2 * node + 2, right, fallback, out, rng);
    }

    /// Cutoff depth threshold.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of hash buckets (`2^depth`).
    #[inline]
    pub fn num_buckets(&self) -> usize {
        1 << self.depth
    }

    /// Hash a point to its path prefix. The prefix always has the top bit
    /// at position `depth` (root's 1), so distinct depths never collide.
    pub fn hash(&self, point: &P) -> u64 {
        let mut prefix = 1u64;
        let mut node = 0usize;
        for _ in 0..self.depth {
            let pn = &self.nodes[node];
            let d = self.metric.dist(point, &pn.vantage);
            if d <= pn.radius {
                prefix <<= 1;
                node = 2 * node + 1;
            } else {
                prefix = (prefix << 1) | 1;
                node = 2 * node + 2;
            }
        }
        prefix
    }

    /// Hash with tolerance: whenever the query ball of radius `tau`
    /// straddles a vertex's boundary (`|d − μ| ≤ τ`) both children are
    /// followed. Returns the sorted, de-duplicated set of reachable
    /// prefixes (always at least one).
    pub fn hash_with_tolerance(&self, point: &P, tau: f32) -> Vec<u64> {
        let mut out = Vec::new();
        self.hash_tol_rec(0, 1, 0, point, tau, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn hash_tol_rec(
        &self,
        node: usize,
        prefix: u64,
        level: usize,
        point: &P,
        tau: f32,
        out: &mut Vec<u64>,
    ) {
        if level == self.depth {
            out.push(prefix);
            return;
        }
        let pn = &self.nodes[node];
        let d = self.metric.dist(point, &pn.vantage);
        let go_left = d <= pn.radius + tau;
        let go_right = d + tau > pn.radius;
        if go_left {
            self.hash_tol_rec(2 * node + 1, prefix << 1, level + 1, point, tau, out);
        }
        if go_right || !go_left {
            self.hash_tol_rec(2 * node + 2, (prefix << 1) | 1, level + 1, point, tau, out);
        }
    }

    /// Structural validation of the hash tree (the `strict-invariants`
    /// checker): heap completeness (`2^depth − 1` vertices), well-formed
    /// radii (non-negative; `+∞` marks starved fallback branches), and —
    /// for each supplied probe — path consistency: the hash is stable,
    /// carries the top bit at `depth`, maps to a dense bucket in range,
    /// and the tolerance traversal at `τ = 0` reproduces exactly it.
    pub fn check_invariants(&self, probes: &[P]) -> Result<(), String> {
        if self.depth == 0 {
            return Err("depth threshold is zero".into());
        }
        let want = (1usize << self.depth) - 1;
        if self.nodes.len() != want {
            return Err(format!(
                "heap-order tree has {} vertices, depth {} needs {want}",
                self.nodes.len(),
                self.depth
            ));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !(n.radius >= 0.0) {
                return Err(format!("vertex {i} has invalid radius {}", n.radius));
            }
        }
        for (i, p) in probes.iter().enumerate() {
            let h = self.hash(p);
            if h >> self.depth != 1 {
                return Err(format!(
                    "probe {i}: prefix {h:#b} lacks the top bit at depth {}",
                    self.depth
                ));
            }
            if self.hash(p) != h {
                return Err(format!("probe {i}: hash is not deterministic"));
            }
            let bucket = (h as usize) - (1usize << self.depth);
            if bucket >= self.num_buckets() {
                return Err(format!(
                    "probe {i}: bucket {bucket} out of range ({} buckets)",
                    self.num_buckets()
                ));
            }
            let exact = self.hash_with_tolerance(p, 0.0);
            if exact != [h] {
                return Err(format!(
                    "probe {i}: τ = 0 traversal yields {exact:?}, expected [{h}]"
                ));
            }
        }
        Ok(())
    }

    /// Abort with the violation when [`Self::check_invariants`] fails —
    /// called after builds under `strict-invariants`.
    #[cfg(feature = "strict-invariants")]
    fn assert_invariants(&self, probes: &[P], site: &str) {
        if let Err(e) = self.check_invariants(probes) {
            // audit:allow(panic): strict-invariants mode aborts on structural corruption by design.
            panic!("vp-prefix-tree invariant violated after {site}: {e}");
        }
    }

    /// Convert a depth-level prefix to a dense bucket index in
    /// `[0, 2^depth)`.
    #[inline]
    pub fn bucket_index(&self, prefix: u64) -> usize {
        debug_assert_eq!(
            prefix >> self.depth,
            1,
            "prefix {prefix:#b} is not at depth {}",
            self.depth
        );
        (prefix as usize) - (1usize << self.depth)
    }
}

/// Maps hash buckets onto a fixed set of node groups. Contiguous prefix
/// ranges map to the same group, preserving what path locality the prefix
/// carries (§IV-C: "The size and quantity of groups are a
/// user-configurable parameter").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupAssignment {
    buckets: usize,
    groups: usize,
}

impl GroupAssignment {
    /// Assignment of `buckets` hash buckets onto `groups` groups.
    ///
    /// # Panics
    /// Panics unless `1 ≤ groups ≤ buckets`.
    pub fn new(buckets: usize, groups: usize) -> Self {
        assert!(groups >= 1, "at least one group");
        assert!(
            groups <= buckets,
            "more groups ({groups}) than buckets ({buckets})"
        );
        GroupAssignment { buckets, groups }
    }

    /// Group of a dense bucket index.
    #[inline]
    pub fn group_of_bucket(&self, bucket: usize) -> usize {
        debug_assert!(bucket < self.buckets);
        bucket * self.groups / self.buckets
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// Number of buckets.
    #[inline]
    pub fn num_buckets(&self) -> usize {
        self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::{BlockDistance, Hamming};
    use rand::Rng;

    type Tree = VpPrefixTree<Vec<u8>, BlockDistance<Hamming>>;

    fn random_points(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.random_range(0..20u8)).collect())
            .collect()
    }

    fn build(depth: usize, seed: u64) -> (Tree, Vec<Vec<u8>>) {
        let sample = random_points(1000, 16, seed);
        (
            VpPrefixTree::build(sample.clone(), BlockDistance::new(Hamming), depth, seed),
            sample,
        )
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let (t, sample) = build(4, 1);
        for p in sample.iter().take(100) {
            let h1 = t.hash(p);
            let h2 = t.hash(p);
            assert_eq!(h1, h2);
            assert_eq!(h1 >> 4, 1, "top bit at depth position");
            assert!(t.bucket_index(h1) < t.num_buckets());
        }
    }

    #[test]
    fn identical_points_always_collide() {
        let (t, _) = build(5, 2);
        let p = random_points(1, 16, 3).pop().unwrap();
        assert_eq!(t.hash(&p), t.hash(&p.clone()));
    }

    #[test]
    fn similar_points_collide_more_than_dissimilar() {
        // The LSH property (§III-E): near neighbours should land in the
        // same bucket far more often than random pairs.
        let (t, _) = build(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut near_hits = 0;
        let mut far_hits = 0;
        const TRIALS: usize = 300;
        for _ in 0..TRIALS {
            let p: Vec<u8> = (0..16).map(|_| rng.random_range(0..20u8)).collect();
            // 1-substitution neighbour.
            let mut near = p.clone();
            let pos: usize = rng.random_range(0..16);
            near[pos] = (near[pos] + 1 + rng.random_range(0..18u8)) % 20;
            // Unrelated point.
            let far: Vec<u8> = (0..16).map(|_| rng.random_range(0..20u8)).collect();
            if t.hash(&p) == t.hash(&near) {
                near_hits += 1;
            }
            if t.hash(&p) == t.hash(&far) {
                far_hits += 1;
            }
        }
        assert!(
            near_hits > far_hits + TRIALS / 10,
            "near collisions ({near_hits}) must clearly exceed far ({far_hits})"
        );
    }

    #[test]
    fn deeper_threshold_means_finer_resolution() {
        // Fig. 2: the depth threshold sets the similarity resolution —
        // deeper trees spread the same data across more buckets.
        let sample = random_points(2000, 16, 6);
        let shallow = VpPrefixTree::build(sample.clone(), BlockDistance::new(Hamming), 2, 6);
        let deep = VpPrefixTree::build(sample.clone(), BlockDistance::new(Hamming), 6, 6);
        let count_distinct = |t: &Tree| {
            let mut set = std::collections::HashSet::new();
            for p in sample.iter() {
                set.insert(t.hash(p));
            }
            set.len()
        };
        assert!(count_distinct(&deep) > count_distinct(&shallow));
        assert!(count_distinct(&shallow) <= 4);
    }

    #[test]
    fn tolerance_zero_matches_plain_hash() {
        let (t, sample) = build(5, 7);
        for p in sample.iter().take(50) {
            assert_eq!(t.hash_with_tolerance(p, 0.0), vec![t.hash(p)]);
        }
    }

    #[test]
    fn tolerance_fanout_is_superset_and_grows() {
        let (t, sample) = build(5, 8);
        for p in sample.iter().take(50) {
            let exact = t.hash(p);
            let small = t.hash_with_tolerance(p, 2.0);
            let large = t.hash_with_tolerance(p, 8.0);
            assert!(small.contains(&exact));
            assert!(
                small.iter().all(|h| large.contains(h)),
                "fanout must be monotone in τ"
            );
        }
        let total: usize = sample
            .iter()
            .take(50)
            .map(|p| t.hash_with_tolerance(p, 8.0).len())
            .sum();
        assert!(total > 50, "a large τ must branch somewhere");
    }

    #[test]
    fn infinite_tolerance_reaches_every_bucket() {
        let (t, sample) = build(3, 9);
        let all = t.hash_with_tolerance(&sample[0], f32::INFINITY);
        assert_eq!(all.len(), t.num_buckets());
    }

    #[test]
    fn duplicate_sample_still_hashes_totally() {
        let sample = vec![vec![7u8; 8]; 64];
        let t: Tree = VpPrefixTree::build(sample, BlockDistance::new(Hamming), 4, 10);
        let h = t.hash(&vec![7u8; 8]);
        assert!(t.bucket_index(h) < 16);
        let other = t.hash(&vec![3u8; 8]);
        assert!(t.bucket_index(other) < 16);
    }

    #[test]
    fn invariants_hold_for_built_hash_trees() {
        for depth in [1usize, 3, 6] {
            let (t, sample) = build(depth, depth as u64);
            assert_eq!(t.check_invariants(&sample[..100]), Ok(()), "depth {depth}");
        }
        // Duplicate-heavy samples build starved (fallback) branches.
        let dup: Tree =
            VpPrefixTree::build(vec![vec![7u8; 8]; 64], BlockDistance::new(Hamming), 4, 10);
        assert_eq!(dup.check_invariants(&[vec![7u8; 8], vec![3u8; 8]]), Ok(()));
    }

    #[test]
    fn truncated_heap_is_detected() {
        let (mut t, sample) = build(4, 77);
        t.nodes.pop();
        let err = t.check_invariants(&sample[..1]).unwrap_err();
        assert!(err.contains("vertices"), "unexpected message: {err}");
    }

    #[test]
    #[should_panic(expected = "non-empty sample")]
    fn empty_sample_rejected() {
        let _: Tree = VpPrefixTree::build(vec![], BlockDistance::new(Hamming), 3, 0);
    }

    #[test]
    #[should_panic(expected = "depth threshold")]
    fn zero_depth_rejected() {
        let _: Tree = VpPrefixTree::build(vec![vec![0u8]], BlockDistance::new(Hamming), 0, 0);
    }

    #[test]
    fn group_assignment_covers_all_groups_evenly() {
        let ga = GroupAssignment::new(64, 10);
        let mut counts = vec![0usize; 10];
        for b in 0..64 {
            counts[ga.group_of_bucket(b)] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 6 && c <= 7), "{counts:?}");
    }

    #[test]
    fn group_assignment_is_monotone() {
        // Contiguous buckets map to contiguous groups, preserving prefix
        // locality.
        let ga = GroupAssignment::new(32, 8);
        for b in 1..32 {
            assert!(ga.group_of_bucket(b) >= ga.group_of_bucket(b - 1));
        }
    }

    #[test]
    #[should_panic(expected = "more groups")]
    fn too_many_groups_rejected() {
        GroupAssignment::new(4, 8);
    }
}
