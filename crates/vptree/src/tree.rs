//! The bulk-built vantage-point tree (§III-A/C/D).
//!
//! A binary metric-space partitioning tree: each internal vertex holds a
//! vantage point and a radius μ covering roughly half of its elements
//! (those within μ go left, the rest right). Both §III-D optimizations
//! are implemented:
//!
//! 1. **leaf buckets** — leaves hold up to `bucket_capacity` elements,
//!    shrinking the vertex count dramatically for large collections;
//! 2. **subtree bounds** — every internal vertex stores the `[min, max]`
//!    distance band of each child's elements as seen from its vantage
//!    point, giving the search a tighter prune than μ alone.

use crate::knn::{KnnHeap, Neighbor};
use crate::metrics::{SearchMetrics, SearchTally};
use mendel_seq::Metric;
use rand::seq::index::sample;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sentinel for "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// Arena node of a vp-tree.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// Internal vertex: vantage element, radius μ, children, and the
    /// distance bounds of each child's elements from the vantage point.
    Internal {
        /// Index of the vantage element in the point arena.
        vantage: u32,
        /// Partition radius μ: left elements satisfy `d ≤ μ`, right `d ≥ μ`.
        radius: f32,
        /// Left ("near") child node index.
        left: u32,
        /// Right ("far") child node index.
        right: u32,
        /// `[min, max]` distances of left-subtree elements to `vantage`.
        left_bounds: (f32, f32),
        /// `[min, max]` distances of right-subtree elements to `vantage`.
        right_bounds: (f32, f32),
    },
    /// Leaf vertex holding a bucket of element indices.
    Leaf {
        /// Indices into the point arena.
        bucket: Vec<u32>,
    },
}

/// Owned intermediate node used by the parallel builder before arena
/// flattening.
enum BuildNode {
    Leaf {
        bucket: Vec<u32>,
    },
    Internal {
        vantage: u32,
        radius: f32,
        left: Option<Box<BuildNode>>,
        right: Option<Box<BuildNode>>,
        left_bounds: (f32, f32),
        right_bounds: (f32, f32),
    },
}

/// A bulk-built vantage-point tree over points of type `P` under metric `M`.
#[derive(Debug)]
pub struct VpTree<P, M> {
    pub(crate) metric: M,
    pub(crate) points: Vec<P>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: u32,
    pub(crate) bucket_capacity: usize,
    pub(crate) seed: u64,
    /// Search instrumentation (`mendel.vptree.*`); detached by default,
    /// attach registry-backed handles with [`VpTree::set_metrics`].
    pub(crate) obs: SearchMetrics,
}

/// Structural statistics, used by balance tests and the ablation benches.
#[derive(Debug, Clone, PartialEq)]
pub struct VpTreeStats {
    /// Total elements indexed.
    pub points: usize,
    /// Number of internal vertices.
    pub internal_nodes: usize,
    /// Number of leaf vertices.
    pub leaves: usize,
    /// Maximum root-to-leaf depth (root = 0; empty tree = 0).
    pub max_depth: usize,
    /// Minimum root-to-leaf depth.
    pub min_depth: usize,
    /// Mean leaf-bucket occupancy.
    pub mean_bucket_fill: f64,
}

impl<P, M: Metric<P>> VpTree<P, M> {
    /// Build a tree over `points` with the given leaf-bucket capacity.
    /// `seed` drives vantage-point sampling; the same inputs always build
    /// the same tree.
    pub fn build(points: Vec<P>, metric: M, bucket_capacity: usize, seed: u64) -> Self {
        assert!(bucket_capacity >= 1, "bucket capacity must be at least 1");
        let mut tree = VpTree {
            metric,
            points,
            nodes: Vec::new(),
            root: NIL,
            bucket_capacity,
            seed,
            obs: SearchMetrics::default(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut items: Vec<u32> = (0..tree.points.len() as u32).collect();
        tree.root = tree.build_rec(&mut items, &mut rng);
        #[cfg(feature = "strict-invariants")]
        tree.assert_invariants("build");
        tree
    }

    /// Recursively build the subtree over `items`, returning its node index.
    pub(crate) fn build_rec(&mut self, items: &mut [u32], rng: &mut impl Rng) -> u32 {
        if items.is_empty() {
            return NIL;
        }
        if items.len() <= self.bucket_capacity {
            self.nodes.push(Node::Leaf {
                bucket: items.to_vec(),
            });
            return (self.nodes.len() - 1) as u32;
        }
        let v_pos = self.pick_vantage(items, rng);
        items.swap(0, v_pos);
        let vantage = items[0];
        let rest = &mut items[1..];

        // Distances of the remaining elements to the vantage point.
        let mut dists: Vec<(u32, f32)> = rest
            .iter()
            .map(|&i| {
                (
                    i,
                    self.metric
                        .dist(&self.points[vantage as usize], &self.points[i as usize]),
                )
            })
            .collect();
        // Median split: the radius must "encompass roughly half of the data
        // points in order to maintain a balanced vp-tree" (§III-A).
        let mid = (dists.len() - 1) / 2;
        dists.select_nth_unstable_by(mid, |a, b| a.1.total_cmp(&b.1));
        let mut radius = dists[mid].1;
        // Left: d ≤ μ. Right: d > μ. Ties beyond the median spill left, so
        // rebalance pure-tie splits by count to avoid degenerate recursion.
        let mut left: Vec<(u32, f32)> = Vec::with_capacity(mid + 1);
        let mut right: Vec<(u32, f32)> = Vec::with_capacity(dists.len() - mid);
        for &(i, d) in dists.iter() {
            if d <= radius {
                left.push((i, d));
            } else {
                right.push((i, d));
            }
        }
        if right.is_empty() && left.len() > self.bucket_capacity {
            // The upper half of the distances ties the median, so `d > μ`
            // selected nothing. Lower μ to the largest distance *below*
            // the tie so the boundary points go right — keeping descent
            // deterministic for equal inputs. Only when every element is
            // exactly equidistant is an arbitrary count split unavoidable.
            let maxd = radius;
            let below = left
                .iter()
                .map(|&(_, d)| d)
                .filter(|&d| d < maxd)
                .fold(f32::NEG_INFINITY, f32::max);
            if below.is_finite() {
                radius = below;
                right = left.iter().copied().filter(|&(_, d)| d > radius).collect();
                left.retain(|&(_, d)| d <= radius);
            } else {
                let half = left.len() / 2;
                right = left.split_off(half);
            }
        }

        let bounds = |side: &[(u32, f32)]| -> (f32, f32) {
            side.iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &(_, d)| {
                    (lo.min(d), hi.max(d))
                })
        };
        let left_bounds = bounds(&left);
        let right_bounds = bounds(&right);

        let mut left_items: Vec<u32> = left.into_iter().map(|(i, _)| i).collect();
        let mut right_items: Vec<u32> = right.into_iter().map(|(i, _)| i).collect();
        let left_node = self.build_rec(&mut left_items, rng);
        let right_node = self.build_rec(&mut right_items, rng);
        self.nodes.push(Node::Internal {
            vantage,
            radius,
            left: left_node,
            right: right_node,
            left_bounds,
            right_bounds,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Yianilos' spread heuristic: sample a few candidates, estimate each
    /// one's distance spread against a random subset, keep the widest.
    fn pick_vantage(&self, items: &[u32], rng: &mut impl Rng) -> usize {
        const CANDIDATES: usize = 5;
        const PROBES: usize = 12;
        if items.len() <= 2 {
            return 0;
        }
        let n_cand = CANDIDATES.min(items.len());
        let n_probe = PROBES.min(items.len());
        let cands = sample(rng, items.len(), n_cand);
        let probes: Vec<usize> = sample(rng, items.len(), n_probe).into_iter().collect();
        let mut best = (0usize, f32::NEG_INFINITY);
        for c in cands {
            let cp = &self.points[items[c] as usize];
            let ds: Vec<f32> = probes
                .iter()
                .map(|&p| self.metric.dist(cp, &self.points[items[p] as usize]))
                .collect();
            let mean = ds.iter().sum::<f32>() / ds.len() as f32;
            let var = ds.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / ds.len() as f32;
            if var > best.1 {
                best = (c, var);
            }
        }
        best.0
    }

    /// Build in parallel with rayon: partitions recurse concurrently via
    /// `rayon::join` into boxed subtrees, which are then flattened into
    /// the arena. Produces the same *kind* of tree as [`Self::build`]
    /// (median-balanced, bucketed, bounded) but not bit-identical — each
    /// branch derives its own RNG stream so construction is
    /// deterministic *and* independent of the scheduler.
    pub fn build_parallel(points: Vec<P>, metric: M, bucket_capacity: usize, seed: u64) -> Self
    where
        P: Send + Sync,
        M: Sync,
    {
        assert!(bucket_capacity >= 1, "bucket capacity must be at least 1");
        let mut tree = VpTree {
            metric,
            points,
            nodes: Vec::new(),
            root: NIL,
            bucket_capacity,
            seed,
            obs: SearchMetrics::default(),
        };
        let mut items: Vec<u32> = (0..tree.points.len() as u32).collect();
        let boxed = tree.build_boxed(&mut items, seed);
        tree.root = tree.flatten(boxed);
        #[cfg(feature = "strict-invariants")]
        tree.assert_invariants("build_parallel");
        tree
    }

    /// Parallel recursive construction into an owned subtree.
    fn build_boxed(&self, items: &mut [u32], branch_seed: u64) -> Option<Box<BuildNode>>
    where
        P: Send + Sync,
        M: Sync,
    {
        if items.is_empty() {
            return None;
        }
        if items.len() <= self.bucket_capacity {
            return Some(Box::new(BuildNode::Leaf {
                bucket: items.to_vec(),
            }));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(branch_seed);
        let v_pos = self.pick_vantage(items, &mut rng);
        items.swap(0, v_pos);
        let vantage = items[0];
        let rest = &items[1..];
        let mut dists: Vec<(u32, f32)> = rest
            .iter()
            .map(|&i| {
                (
                    i,
                    self.metric
                        .dist(&self.points[vantage as usize], &self.points[i as usize]),
                )
            })
            .collect();
        let mid = (dists.len() - 1) / 2;
        dists.select_nth_unstable_by(mid, |a, b| a.1.total_cmp(&b.1));
        let mut radius = dists[mid].1;
        let (mut left, mut right): (Vec<(u32, f32)>, Vec<(u32, f32)>) =
            dists.into_iter().partition(|&(_, d)| d <= radius);
        if right.is_empty() && left.len() > self.bucket_capacity {
            let below = left
                .iter()
                .map(|&(_, d)| d)
                .filter(|&d| d < radius)
                .fold(f32::NEG_INFINITY, f32::max);
            if below.is_finite() {
                radius = below;
                right = left.iter().copied().filter(|&(_, d)| d > radius).collect();
                left.retain(|&(_, d)| d <= radius);
            } else {
                let half = left.len() / 2;
                right = left.split_off(half);
            }
        }
        let bounds = |side: &[(u32, f32)]| -> (f32, f32) {
            side.iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &(_, d)| {
                    (lo.min(d), hi.max(d))
                })
        };
        let left_bounds = bounds(&left);
        let right_bounds = bounds(&right);
        let mut left_items: Vec<u32> = left.into_iter().map(|(i, _)| i).collect();
        let mut right_items: Vec<u32> = right.into_iter().map(|(i, _)| i).collect();
        // Splitmix-style per-branch seed derivation keeps the tree
        // independent of scheduling.
        let ls = branch_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let rs = branch_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(2);
        const PAR_THRESHOLD: usize = 1024;
        let (l, r) = if left_items.len() + right_items.len() >= PAR_THRESHOLD {
            rayon::join(
                || self.build_boxed(&mut left_items, ls),
                || self.build_boxed(&mut right_items, rs),
            )
        } else {
            (
                self.build_boxed(&mut left_items, ls),
                self.build_boxed(&mut right_items, rs),
            )
        };
        Some(Box::new(BuildNode::Internal {
            vantage,
            radius,
            left: l,
            right: r,
            left_bounds,
            right_bounds,
        }))
    }

    /// Flatten a boxed subtree into the arena, returning its node index.
    fn flatten(&mut self, node: Option<Box<BuildNode>>) -> u32 {
        match node {
            None => NIL,
            Some(b) => match *b {
                BuildNode::Leaf { bucket } => {
                    self.nodes.push(Node::Leaf { bucket });
                    (self.nodes.len() - 1) as u32
                }
                BuildNode::Internal {
                    vantage,
                    radius,
                    left,
                    right,
                    left_bounds,
                    right_bounds,
                } => {
                    let l = self.flatten(left);
                    let r = self.flatten(right);
                    self.nodes.push(Node::Internal {
                        vantage,
                        radius,
                        left: l,
                        right: r,
                        left_bounds,
                        right_bounds,
                    });
                    (self.nodes.len() - 1) as u32
                }
            },
        }
    }

    /// Number of indexed elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree indexes nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed point at arena index `i` (as returned in [`Neighbor`]).
    #[inline]
    pub fn point(&self, i: u32) -> &P {
        &self.points[i as usize]
    }

    /// All points, in arena order.
    #[inline]
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The `n` nearest neighbours of `query`, sorted by ascending distance
    /// (§III-C's single root-to-leaf style traversal with shrinking τ).
    pub fn knn(&self, query: &P, n: usize) -> Vec<Neighbor> {
        self.knn_with_budget(query, n, usize::MAX)
    }

    /// k-NN with a *visit budget*: the traversal follows the normal
    /// near-side-first order but stops once `budget` distance
    /// evaluations have been spent.
    ///
    /// Why this exists: the paper claims O(log n) average searches, but
    /// for short sequence windows pairwise distances concentrate (random
    /// 16-residue windows all sit within a few σ of the mean), so the τ
    /// prune almost never fires and exact k-NN degenerates to a full
    /// scan. Near-first traversal reaches genuinely similar blocks in
    /// the first few hundred visits; the budget caps the exhaustive tail
    /// that could only ever return chance neighbours. `usize::MAX` gives
    /// the exact search. The sensitivity cost of finite budgets is
    /// measured in the Fig. 6d harness (see EXPERIMENTS.md).
    pub fn knn_with_budget(&self, query: &P, n: usize, budget: usize) -> Vec<Neighbor> {
        if self.root == NIL || n == 0 || budget == 0 {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(n);
        let mut budget = budget;
        let mut tally = SearchTally::default();
        self.search_rec(self.root, query, &mut heap, &mut budget, &mut tally);
        tally.flush(&self.obs);
        heap.into_sorted()
    }

    /// All neighbours within distance `radius` of `query`, sorted by
    /// ascending distance.
    pub fn range(&self, query: &P, radius: f32) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if self.root != NIL {
            let mut tally = SearchTally::default();
            self.range_rec(self.root, query, radius, &mut out, &mut tally);
            tally.flush(&self.obs);
        }
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.index.cmp(&b.index)));
        out
    }

    fn search_rec(
        &self,
        node: u32,
        query: &P,
        heap: &mut KnnHeap,
        budget: &mut usize,
        tally: &mut SearchTally,
    ) {
        if *budget == 0 {
            return;
        }
        tally.nodes_visited += 1;
        match &self.nodes[node as usize] {
            Node::Leaf { bucket } => {
                tally.leaf_scans += 1;
                for &i in bucket {
                    if *budget == 0 {
                        return;
                    }
                    *budget -= 1;
                    tally.dist_calls += 1;
                    // Early-abandoning leaf scan: a candidate can only enter
                    // the heap at d < τ, so the kernel may bail out past τ.
                    // `None` ⟹ d > τ ⟹ `offer` would have rejected it.
                    if let Some(d) =
                        self.metric
                            .dist_bounded(query, &self.points[i as usize], heap.tau())
                    {
                        heap.offer(i, d);
                    } else {
                        tally.early_abandons += 1;
                    }
                }
            }
            Node::Internal {
                vantage,
                radius,
                left,
                right,
                left_bounds,
                right_bounds,
            } => {
                // The vantage distance also routes the descent, so it needs a
                // looser bound than τ: past `τ + max(child hi)` the vantage
                // cannot enter the heap (d > τ) *and* the query ball misses
                // both child bands (d − τ > hi), so the whole subtree is
                // pruned — exactly what the unbounded traversal would do.
                let tau = heap.tau();
                let vantage_bound = if tau.is_infinite() {
                    f32::INFINITY
                } else {
                    tau + left_bounds.1.max(right_bounds.1)
                };
                let bounded =
                    self.metric
                        .dist_bounded(query, &self.points[*vantage as usize], vantage_bound);
                *budget -= 1;
                tally.dist_calls += 1;
                let Some(d) = bounded else {
                    tally.early_abandons += 1;
                    return;
                };
                heap.offer(*vantage, d);
                // Visit the likelier side first so τ shrinks early (and so
                // a finite budget is spent where matches actually live).
                let (first, second, fb, sb) = if d <= *radius {
                    (*left, *right, *left_bounds, *right_bounds)
                } else {
                    (*right, *left, *right_bounds, *left_bounds)
                };
                if first != NIL && Self::band_intersects(d, heap.tau(), fb) {
                    self.search_rec(first, query, heap, budget, tally);
                }
                if second != NIL && Self::band_intersects(d, heap.tau(), sb) {
                    self.search_rec(second, query, heap, budget, tally);
                }
            }
        }
    }

    /// §III-D bound prune: the child can contain a result only if the query
    /// ball `[d−τ, d+τ]` intersects the child's distance band `[lo, hi]`
    /// as seen from the vantage point.
    #[inline]
    pub(crate) fn band_intersects(d: f32, tau: f32, (lo, hi): (f32, f32)) -> bool {
        if tau.is_infinite() {
            return true;
        }
        d - tau <= hi && d + tau >= lo
    }

    fn range_rec(
        &self,
        node: u32,
        query: &P,
        radius: f32,
        out: &mut Vec<Neighbor>,
        tally: &mut SearchTally,
    ) {
        tally.nodes_visited += 1;
        match &self.nodes[node as usize] {
            Node::Leaf { bucket } => {
                tally.leaf_scans += 1;
                for &i in bucket {
                    tally.dist_calls += 1;
                    // `Some` ⟺ d ≤ radius: exactly the membership test.
                    if let Some(d) =
                        self.metric
                            .dist_bounded(query, &self.points[i as usize], radius)
                    {
                        out.push(Neighbor { index: i, dist: d });
                    } else {
                        tally.early_abandons += 1;
                    }
                }
            }
            Node::Internal {
                vantage,
                left,
                right,
                left_bounds,
                right_bounds,
                ..
            } => {
                // Same argument as the k-NN vantage bound with τ = radius:
                // past `radius + max(child hi)` neither the vantage nor any
                // subtree element can be in range.
                let vantage_bound = if radius.is_infinite() {
                    f32::INFINITY
                } else {
                    radius + left_bounds.1.max(right_bounds.1)
                };
                tally.dist_calls += 1;
                let Some(d) =
                    self.metric
                        .dist_bounded(query, &self.points[*vantage as usize], vantage_bound)
                else {
                    tally.early_abandons += 1;
                    return;
                };
                if d <= radius {
                    out.push(Neighbor {
                        index: *vantage,
                        dist: d,
                    });
                }
                if *left != NIL && Self::band_intersects(d, radius, *left_bounds) {
                    self.range_rec(*left, query, radius, out, tally);
                }
                if *right != NIL && Self::band_intersects(d, radius, *right_bounds) {
                    self.range_rec(*right, query, radius, out, tally);
                }
            }
        }
    }

    /// Attach search counters (e.g. registry-backed handles from
    /// [`SearchMetrics::registered`]); the default is detached handles.
    /// Cloning one `SearchMetrics` into several trees aggregates their
    /// traffic onto the same counters.
    pub fn set_metrics(&mut self, metrics: SearchMetrics) {
        self.obs = metrics;
    }

    /// The tree's search counters.
    pub fn search_metrics(&self) -> &SearchMetrics {
        &self.obs
    }

    /// Structural statistics (depth, balance, bucket fill).
    pub fn stats(&self) -> VpTreeStats {
        let mut s = VpTreeStats {
            points: self.points.len(),
            internal_nodes: 0,
            leaves: 0,
            max_depth: 0,
            min_depth: usize::MAX,
            mean_bucket_fill: 0.0,
        };
        let mut fill = 0usize;
        if self.root != NIL {
            self.stats_rec(self.root, 0, &mut s, &mut fill);
        }
        if s.leaves > 0 {
            s.mean_bucket_fill = fill as f64 / s.leaves as f64;
        } else {
            s.min_depth = 0;
        }
        s
    }

    /// Deep structural validation (the `strict-invariants` checker):
    ///
    /// - **μ split** — every element in a left subtree is within its
    ///   ancestor's radius (`d ≤ μ`), every right element outside or on
    ///   it (`d ≥ μ`; ties land right after the equidistant rebalance);
    /// - **bounds containment** — every subtree element's distance to
    ///   the ancestor vantage lies inside the stored `[lo, hi]` band
    ///   (bounds may over-approximate after expand-only dynamic
    ///   updates, so containment — not tightness — is the invariant);
    /// - **arena accounting** — every point index appears exactly once
    ///   among reachable vantages and leaf buckets, every reachable
    ///   node is visited at most once (no cycles or shared subtrees;
    ///   orphan nodes left by subtree rebuilds are legal garbage);
    /// - **leaf occupancy** — buckets hold `1..=bucket_capacity`
    ///   elements.
    ///
    /// Returns the first violation found. Compiled unconditionally so
    /// any test can call it; the `strict-invariants` feature
    /// additionally asserts it after every build and rebalancing
    /// mutation.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return if self.root == NIL {
                Ok(())
            } else {
                Err("empty tree has a root node".into())
            };
        }
        if self.root == NIL {
            return Err(format!("{} points but no root node", self.points.len()));
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut elements = Vec::with_capacity(self.points.len());
        self.check_node(self.root, &mut visited, &mut elements)?;
        let mut count = vec![0usize; self.points.len()];
        for &e in &elements {
            match count.get_mut(e as usize) {
                Some(c) => *c += 1,
                None => {
                    return Err(format!(
                        "element index {e} out of range ({} points)",
                        self.points.len()
                    ))
                }
            }
        }
        if let Some(i) = count.iter().position(|&c| c == 0) {
            return Err(format!("point {i} is not reachable from the root"));
        }
        if let Some(i) = count.iter().position(|&c| c > 1) {
            return Err(format!("point {i} appears {} times in the tree", count[i]));
        }
        Ok(())
    }

    /// Validate the subtree at `node`, appending its elements to `out`.
    fn check_node(
        &self,
        node: u32,
        visited: &mut [bool],
        out: &mut Vec<u32>,
    ) -> Result<(), String> {
        match visited.get_mut(node as usize) {
            None => {
                return Err(format!(
                    "node index {node} out of bounds ({} arena nodes)",
                    self.nodes.len()
                ))
            }
            Some(slot) if *slot => {
                return Err(format!(
                    "node {node} is reachable twice (cycle or shared subtree)"
                ))
            }
            Some(slot) => *slot = true,
        }
        match &self.nodes[node as usize] {
            Node::Leaf { bucket } => {
                if bucket.is_empty() {
                    return Err(format!("leaf {node} has an empty bucket"));
                }
                if bucket.len() > self.bucket_capacity {
                    return Err(format!(
                        "leaf {node} holds {} elements, capacity is {}",
                        bucket.len(),
                        self.bucket_capacity
                    ));
                }
                out.extend_from_slice(bucket);
                Ok(())
            }
            Node::Internal {
                vantage,
                radius,
                left,
                right,
                left_bounds,
                right_bounds,
            } => {
                if !radius.is_finite() || *radius < 0.0 {
                    return Err(format!("node {node} has invalid radius {radius}"));
                }
                if (self.points.len() as u32) <= *vantage {
                    return Err(format!("node {node} vantage {vantage} out of range"));
                }
                out.push(*vantage);
                let mut left_elems = Vec::new();
                if *left != NIL {
                    self.check_node(*left, visited, &mut left_elems)?;
                }
                let mut right_elems = Vec::new();
                if *right != NIL {
                    self.check_node(*right, visited, &mut right_elems)?;
                }
                self.check_side(node, *vantage, *radius, &left_elems, *left_bounds, true)?;
                self.check_side(node, *vantage, *radius, &right_elems, *right_bounds, false)?;
                out.append(&mut left_elems);
                out.append(&mut right_elems);
                Ok(())
            }
        }
    }

    /// Check one child's element set against the split radius and the
    /// stored distance band.
    fn check_side(
        &self,
        node: u32,
        vantage: u32,
        radius: f32,
        elems: &[u32],
        (lo, hi): (f32, f32),
        is_left: bool,
    ) -> Result<(), String> {
        let side = if is_left { "left" } else { "right" };
        if elems.is_empty() {
            return Ok(());
        }
        if !(lo <= hi) {
            return Err(format!(
                "node {node} {side} bounds [{lo}, {hi}] are not ordered"
            ));
        }
        let vp = &self.points[vantage as usize];
        for &e in elems {
            if (self.points.len() as u32) <= e {
                return Err(format!("node {node} {side} element {e} out of range"));
            }
            let d = self.metric.dist(vp, &self.points[e as usize]);
            if d < lo || d > hi {
                return Err(format!(
                    "node {node} {side} element {e}: d = {d} outside bounds [{lo}, {hi}]"
                ));
            }
            if is_left && d > radius {
                return Err(format!(
                    "node {node} left element {e}: d = {d} exceeds μ = {radius}"
                ));
            }
            if !is_left && d < radius {
                return Err(format!(
                    "node {node} right element {e}: d = {d} inside μ = {radius}"
                ));
            }
        }
        Ok(())
    }

    /// Abort with the violation when [`Self::check_invariants`] fails —
    /// called at build/rebalance sites under `strict-invariants`.
    #[cfg(feature = "strict-invariants")]
    pub(crate) fn assert_invariants(&self, site: &str) {
        if let Err(e) = self.check_invariants() {
            // audit:allow(panic): strict-invariants mode aborts on structural corruption by design.
            panic!("vp-tree invariant violated after {site}: {e}");
        }
    }

    fn stats_rec(&self, node: u32, depth: usize, s: &mut VpTreeStats, fill: &mut usize) {
        match &self.nodes[node as usize] {
            Node::Leaf { bucket } => {
                s.leaves += 1;
                s.max_depth = s.max_depth.max(depth);
                s.min_depth = s.min_depth.min(depth);
                *fill += bucket.len();
            }
            Node::Internal { left, right, .. } => {
                s.internal_nodes += 1;
                if *left != NIL {
                    self.stats_rec(*left, depth + 1, s, fill);
                }
                if *right != NIL {
                    self.stats_rec(*right, depth + 1, s, fill);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::brute_force_knn;
    use mendel_seq::{BlockDistance, Hamming};

    type Tree = VpTree<Vec<u8>, BlockDistance<Hamming>>;

    fn random_points(n: usize, len: usize, alphabet: u8, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..len).map(|_| rng.random_range(0..alphabet)).collect())
            .collect()
    }

    fn build(points: Vec<Vec<u8>>, bucket: usize) -> Tree {
        VpTree::build(points, BlockDistance::new(Hamming), bucket, 42)
    }

    #[test]
    fn empty_tree() {
        let t = build(vec![], 4);
        assert!(t.is_empty());
        assert!(t.knn(&vec![0u8; 4], 3).is_empty());
        assert!(t.range(&vec![0u8; 4], 10.0).is_empty());
        assert_eq!(t.stats().points, 0);
    }

    #[test]
    fn single_point() {
        let t = build(vec![vec![1, 2, 3]], 4);
        let nn = t.knn(&vec![1, 2, 4], 1);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].dist, 1.0);
    }

    #[test]
    fn knn_matches_brute_force_on_random_data() {
        let points = random_points(500, 12, 4, 7);
        let t = build(points.clone(), 8);
        let metric = BlockDistance::new(Hamming);
        let queries = random_points(25, 12, 4, 8);
        for q in &queries {
            let got = t.knn(q, 5);
            let want = brute_force_knn(&points, &metric, q, 5);
            let gd: Vec<f32> = got.iter().map(|n| n.dist).collect();
            let wd: Vec<f32> = want.iter().map(|n| n.dist).collect();
            assert_eq!(gd, wd, "distances must match the oracle");
        }
    }

    #[test]
    fn knn_exact_match_is_found_first() {
        let points = random_points(300, 10, 4, 9);
        let needle = points[137].clone();
        let t = build(points, 16);
        let nn = t.knn(&needle, 1);
        assert_eq!(nn[0].dist, 0.0);
        assert_eq!(t.point(nn[0].index), &needle);
    }

    #[test]
    fn range_search_matches_filter() {
        let points = random_points(400, 8, 4, 10);
        let t = build(points.clone(), 8);
        let metric = BlockDistance::new(Hamming);
        let q = random_points(1, 8, 4, 11).pop().unwrap();
        for radius in [0.0, 1.0, 3.0, 8.0] {
            let got: Vec<u32> = t.range(&q, radius).iter().map(|n| n.index).collect();
            let mut want: Vec<u32> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| metric.dist(&q, p) <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            let mut got_sorted = got.clone();
            got_sorted.sort();
            want.sort();
            assert_eq!(got_sorted, want, "radius {radius}");
        }
    }

    #[test]
    fn duplicate_points_do_not_break_construction() {
        let mut points = vec![vec![1u8, 1, 1]; 100];
        points.extend(random_points(50, 3, 4, 12));
        let t = build(points.clone(), 4);
        assert_eq!(t.len(), 150);
        let nn = t.knn(&vec![1u8, 1, 1], 3);
        assert!(
            nn.iter().all(|n| n.dist == 0.0),
            "duplicates are all at distance 0"
        );
    }

    #[test]
    fn knn_returns_fewer_when_tree_is_small() {
        let t = build(random_points(3, 6, 4, 13), 2);
        assert_eq!(t.knn(&vec![0u8; 6], 10).len(), 3);
    }

    #[test]
    fn bulk_tree_is_balanced() {
        // §III-A: median splits keep the tree logarithmic.
        let t = build(random_points(4096, 10, 20, 14), 8);
        let s = t.stats();
        // Integer distances tie heavily, so splits skew a little past the
        // perfect log2(4096/8) = 9; allow ~2x.
        assert!(
            s.max_depth <= 18,
            "max depth {} too deep for 4096/8",
            s.max_depth
        );
        assert!(
            s.mean_bucket_fill >= 2.0,
            "buckets nearly empty: {}",
            s.mean_bucket_fill
        );
    }

    #[test]
    fn buckets_reduce_node_count() {
        // §III-D(1): "Adding large buckets ... vastly reduces the total
        // number of vertices".
        let points = random_points(2000, 10, 4, 15);
        let small = build(points.clone(), 1);
        let large = build(points, 32);
        let (ss, ls) = (small.stats(), large.stats());
        assert!(
            ls.internal_nodes + ls.leaves < (ss.internal_nodes + ss.leaves) / 4,
            "bucketed tree should be much smaller: {ls:?} vs {ss:?}"
        );
    }

    #[test]
    fn deterministic_construction() {
        let points = random_points(256, 8, 4, 16);
        let a = build(points.clone(), 8);
        let b = build(points, 8);
        let q = vec![0u8; 8];
        let na: Vec<u32> = a.knn(&q, 7).iter().map(|n| n.index).collect();
        let nb: Vec<u32> = b.knn(&q, 7).iter().map(|n| n.index).collect();
        assert_eq!(na, nb);
    }

    #[test]
    #[should_panic(expected = "bucket capacity")]
    fn zero_bucket_capacity_rejected() {
        build(vec![], 0);
    }

    #[test]
    fn parallel_build_answers_exactly() {
        let points = random_points(3000, 10, 20, 30);
        let metric = BlockDistance::new(Hamming);
        let par = VpTree::build_parallel(points.clone(), metric, 16, 7);
        let metric = BlockDistance::new(Hamming);
        for q in random_points(15, 10, 20, 31) {
            let got: Vec<f32> = par.knn(&q, 6).iter().map(|n| n.dist).collect();
            let want: Vec<f32> = crate::knn::brute_force_knn(par.points(), &metric, &q, 6)
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(got, want, "parallel build must stay exact");
        }
        let s = par.stats();
        assert_eq!(s.points, 3000);
        assert!(
            s.max_depth <= 20,
            "parallel build stays balanced: {}",
            s.max_depth
        );
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let points = random_points(2000, 8, 4, 32);
        let a = VpTree::build_parallel(points.clone(), BlockDistance::new(Hamming), 8, 5);
        let b = VpTree::build_parallel(points, BlockDistance::new(Hamming), 8, 5);
        let q = vec![1u8; 8];
        let na: Vec<u32> = a.knn(&q, 9).iter().map(|n| n.index).collect();
        let nb: Vec<u32> = b.knn(&q, 9).iter().map(|n| n.index).collect();
        assert_eq!(na, nb, "scheduler must not influence the tree");
    }

    #[test]
    fn parallel_build_empty_and_tiny() {
        let empty: VpTree<Vec<u8>, _> =
            VpTree::build_parallel(vec![], BlockDistance::new(Hamming), 4, 1);
        assert!(empty.is_empty());
        let one = VpTree::build_parallel(vec![vec![1u8, 2]], BlockDistance::new(Hamming), 4, 1);
        assert_eq!(one.knn(&vec![1u8, 2], 1)[0].dist, 0.0);
    }

    #[test]
    fn unbounded_budget_equals_exact_knn() {
        let points = random_points(600, 10, 4, 20);
        let t = build(points, 8);
        for q in random_points(10, 10, 4, 21) {
            let exact: Vec<f32> = t.knn(&q, 5).iter().map(|n| n.dist).collect();
            let budgeted: Vec<f32> = t
                .knn_with_budget(&q, 5, usize::MAX)
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(exact, budgeted);
        }
    }

    #[test]
    fn budget_caps_work_but_near_first_order_finds_exact_matches() {
        // 4096 points, budget 256: the near-first descent must still land
        // on an indexed duplicate of the query.
        let points = random_points(4096, 12, 20, 22);
        let needle = points[2048].clone();
        let t = build(points, 16);
        let nn = t.knn_with_budget(&needle, 1, 256);
        assert_eq!(
            nn[0].dist, 0.0,
            "exact match must be inside the first 256 visits"
        );
    }

    #[test]
    fn zero_budget_returns_nothing() {
        let t = build(random_points(64, 8, 4, 23), 8);
        assert!(t.knn_with_budget(&vec![0u8; 8], 3, 0).is_empty());
    }

    #[test]
    fn invariants_hold_for_built_trees() {
        assert_eq!(build(vec![], 4).check_invariants(), Ok(()));
        assert_eq!(build(vec![vec![1, 2, 3]], 4).check_invariants(), Ok(()));
        for (n, bucket) in [(50usize, 1usize), (500, 8), (2000, 32)] {
            let t = build(random_points(n, 10, 20, n as u64), bucket);
            assert_eq!(t.check_invariants(), Ok(()), "n = {n}, bucket = {bucket}");
        }
        // Duplicate-heavy data exercises the equidistant rebalance path.
        let mut points = vec![vec![1u8, 1, 1]; 100];
        points.extend(random_points(50, 3, 4, 12));
        assert_eq!(build(points, 4).check_invariants(), Ok(()));
        let par = VpTree::build_parallel(
            random_points(3000, 10, 20, 30),
            BlockDistance::new(Hamming),
            16,
            7,
        );
        assert_eq!(par.check_invariants(), Ok(()));
    }

    #[test]
    fn corrupted_radius_is_detected() {
        let mut t = build(random_points(200, 8, 4, 40), 4);
        let root = t.root as usize;
        if let Node::Internal { radius, .. } = &mut t.nodes[root] {
            *radius -= 1.0; // μ no longer covers the left side
        }
        let err = t.check_invariants().unwrap_err();
        assert!(err.contains("μ"), "unexpected message: {err}");
    }

    #[test]
    fn corrupted_bounds_are_detected() {
        let mut t = build(random_points(200, 8, 4, 41), 4);
        let root = t.root as usize;
        if let Node::Internal { left_bounds, .. } = &mut t.nodes[root] {
            left_bounds.1 = left_bounds.0.max(0.5) - 0.5; // shrink the band below its max
        }
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn lost_element_is_detected() {
        let mut t = build(random_points(100, 8, 4, 42), 8);
        for node in &mut t.nodes {
            if let Node::Leaf { bucket } = node {
                if bucket.len() >= 2 {
                    bucket.pop(); // lose one element without emptying the leaf
                    break;
                }
            }
        }
        let err = t.check_invariants().unwrap_err();
        assert!(err.contains("not reachable"), "unexpected message: {err}");
    }

    #[test]
    fn shared_subtree_is_detected() {
        let mut t = build(random_points(100, 8, 4, 43), 4);
        let root = t.root as usize;
        if let Node::Internal { left, right, .. } = &mut t.nodes[root] {
            *right = *left; // alias the two children
        }
        let err = t.check_invariants().unwrap_err();
        assert!(err.contains("reachable twice"), "unexpected message: {err}");
    }

    #[test]
    fn overfull_bucket_is_detected() {
        let mut t = build(random_points(100, 8, 4, 44), 4);
        t.bucket_capacity = 0; // stored capacity no longer matches the leaves
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn bounded_kernel_searches_are_bit_identical_to_unbounded() {
        // The same tree geometry under the early-abandoning metric and the
        // full-compute `Unbounded` wrapper must return identical results —
        // indices and distance bits — for exact, budgeted, and range
        // searches. Uses the matrix metric so distances are non-trivial
        // f32 sums where accumulation order matters.
        use mendel_seq::{MatrixDistance, ScoringMatrix, Unbounded};
        let matrix = MatrixDistance::mendel(&ScoringMatrix::blosum62());
        let points = random_points(800, 16, 20, 50);
        let bounded = VpTree::build(points.clone(), BlockDistance::new(matrix.clone()), 8, 99);
        let baseline = VpTree::build(points, BlockDistance::new(Unbounded(matrix)), 8, 99);
        let check = |got: &[Neighbor], want: &[Neighbor], what: &str| {
            assert_eq!(got.len(), want.len(), "{what}: result count");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.index, w.index, "{what}: index");
                assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "{what}: dist bits");
            }
        };
        for q in random_points(20, 16, 20, 51) {
            check(&bounded.knn(&q, 6), &baseline.knn(&q, 6), "knn");
            check(
                &bounded.knn_with_budget(&q, 6, 100),
                &baseline.knn_with_budget(&q, 6, 100),
                "budgeted knn",
            );
            check(&bounded.range(&q, 40.0), &baseline.range(&q, 40.0), "range");
        }
    }

    #[test]
    fn bounded_knn_still_matches_brute_force() {
        let points = random_points(600, 12, 4, 60);
        let t = build(points.clone(), 8);
        let metric = BlockDistance::new(Hamming);
        for q in random_points(20, 12, 4, 61) {
            let got: Vec<f32> = t.knn(&q, 5).iter().map(|n| n.dist).collect();
            let want: Vec<f32> = brute_force_knn(&points, &metric, &q, 5)
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn budgeted_results_are_a_prefix_quality_subset() {
        // Budgeted distances can only be >= the exact ones, element-wise.
        let points = random_points(2000, 10, 20, 24);
        let t = build(points, 8);
        for q in random_points(8, 10, 20, 25) {
            let exact: Vec<f32> = t.knn(&q, 4).iter().map(|n| n.dist).collect();
            let approx: Vec<f32> = t
                .knn_with_budget(&q, 4, 128)
                .iter()
                .map(|n| n.dist)
                .collect();
            for (e, a) in exact.iter().zip(&approx) {
                assert!(a >= e, "approx {a} better than exact {e}?");
            }
        }
    }
}
