//! # mendel-vptree — vantage-point trees for Mendel
//!
//! Implements §III of the paper:
//!
//! * [`tree`] — the bulk-built vp-tree (Yianilos 1993) with the two
//!   optimizations of §III-D: leaf *buckets* and per-subtree distance
//!   *bounds* used for extra pruning during search,
//! * [`knn`] — the shrinking-τ k-nearest-neighbour search machinery,
//! * [`dynamic`] — single-element and batched insertion with the four
//!   rebalancing cases of Fu et al. (VLDB J. 2000) that the paper adopts
//!   (§III-D's dynamic indexing discussion),
//! * [`prefix`] — the vp-*prefix* tree of §III-E/F: a depth-limited
//!   vp-tree whose root-to-node binary paths act as a locality-sensitive
//!   hash, including multi-group fan-out when a query ball straddles a
//!   partition boundary.
//!
//! Trees are generic over the point type `P` and any
//! [`mendel_seq::Metric`] implementation, so the same structure indexes
//! DNA blocks under Hamming distance and protein blocks under the Mendel
//! BLOSUM62-derived distance.

pub mod batch;
pub mod dynamic;
pub mod knn;
pub mod metrics;
pub mod prefix;
pub mod tree;

pub use dynamic::DynamicVpTree;
pub use knn::{brute_force_knn, Neighbor};
pub use metrics::SearchMetrics;
pub use prefix::{GroupAssignment, VpPrefixTree};
pub use tree::{VpTree, VpTreeStats};
