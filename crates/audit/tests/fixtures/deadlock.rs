// Fixture: seeded A->B / B->A lock-order deadlock, plus an unwaived
// blocking call under a guard. The lock analysis must report exactly
// one cycle (routes <-> peers) and one guard-across-io smell.
//
// This file is test data for `crates/audit/tests/corpus.rs`; it is
// never compiled and does not need to resolve.

use parking_lot::Mutex;

pub struct Router {
    routes: Mutex<Vec<u32>>,
    peers: Mutex<Vec<u32>>,
    flag: AtomicBool,
}

impl Router {
    /// Takes routes, then peers.
    pub fn forward(&self) -> usize {
        let routes = self.routes.lock();
        let peers = self.peers.lock();
        routes.len() + peers.len()
    }

    /// Takes peers, then routes: the reversed order that deadlocks
    /// against `forward` under contention.
    pub fn backward(&self) -> usize {
        let peers = self.peers.lock();
        self.routes.lock().len() + peers.len()
    }

    /// Blocks on a channel receive while still holding the peers guard.
    pub fn drain(&self, rx: &Receiver<u32>) -> Option<u32> {
        let peers = self.peers.lock();
        let got = rx.recv_timeout(TIMEOUT).ok();
        got.map(|g| g + peers.len() as u32)
    }
}
