// Fixture: an unannotated flag-then-data publication pattern. The
// atomic audit must flag every site here: three carry no marker at
// all, and the fourth carries a marker naming the wrong ordering
// (which must not count as annotated). Exactly 4 unannotated sites.
//
// This file is test data for `crates/audit/tests/corpus.rs`; it is
// never compiled and does not need to resolve.

use std::sync::atomic::{AtomicU64, AtomicBool, Ordering};

pub struct Slot {
    ready: AtomicBool,
    value: AtomicU64,
    epoch: AtomicU64,
}

impl Slot {
    /// Publishes `value` behind a `ready` flag — the classic pattern
    /// whose orderings deserve a written justification.
    pub fn publish(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.ready.store(true, Ordering::Release);
    }

    pub fn consume(&self) -> Option<u64> {
        if self.ready.load(Ordering::Acquire) {
            // audit:ordering(AcqRel): marker names the wrong ordering on purpose
            Some(self.value.load(Ordering::Relaxed))
        } else {
            None
        }
    }
}
