// Fixture: adversarial lexical shapes. Macro bodies with nested
// braces, raw strings with fences, multi-line method chains, nested
// generics with `>>`, char literals, lifetimes, and test regions —
// everything that defeats a line-regex scanner. Expected findings are
// exact: 3 acquisitions, 1 hold-edge (a -> b), 0 cycles, 0 smells,
// 1 annotated atomic site, 0 unannotated.
//
// This file is test data for `crates/audit/tests/corpus.rs`; it is
// never compiled and does not need to resolve.

use parking_lot::Mutex;

macro_rules! fake_lock {
    ($name:ident) => {
        // Strings inside macro bodies are still strings:
        concat!("self.", stringify!($name), ".lock()")
    };
    () => {{
        let text = r##"let g = self.phantom.lock(); g.recv()"##;
        text
    }};
}

pub struct Adversary<'a> {
    state: Mutex<Vec<u8>>,
    a: Mutex<Map<Key, Vec<Box<Node<'a>>>>>,
    b: Mutex<u64>,
}

impl<'a> Adversary<'a> {
    /// A multi-line chain; the acquisition is on the `.lock()` line.
    pub fn sweep(&self) {
        self.state
            .lock()
            .retain(|v| *v != b'\n');
    }

    /// The scrutinee temporary is held for the whole block; the inner
    /// acquisition makes the one real edge in this file.
    pub fn nested(&self, k: &Key) -> u64 {
        let marker = '\'';
        let shifted = 1u64 << 3 >> 2;
        if let Some(node) = self.a.lock().get(k) {
            *self.b.lock() + node.weight() + shifted + marker as u64
        } else {
            0
        }
    }

    /// Not an acquisition: `read` with arguments is std::io, and the
    /// string/comment mentions must stay invisible.
    pub fn ingest(&self, file: &mut impl Read) -> usize {
        let mut buf = [0u8; 64];
        // self.a.lock() in a comment does nothing
        let n = file.read(&mut buf).unwrap_or(0);
        let fake = "Ordering::SeqCst and self.b.lock() in a string";
        n + fake.len()
    }

    /// The only real atomic site, annotated; `cmp::Ordering` is not a
    /// memory ordering.
    pub fn order(&self, x: &u64, y: &u64) -> bool {
        // audit:ordering(Relaxed): statistics probe; nothing is published under it
        GLOBAL_PROBE.fetch_add(1, Ordering::Relaxed);
        matches!(x.cmp(y), Ordering::Less | Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exempt_region() {
        let adv = Adversary::default();
        let first = adv.b.lock();
        let second = adv.a.lock();
        GLOBAL_PROBE.store(0, Ordering::SeqCst);
        drop((first, second));
    }
}
