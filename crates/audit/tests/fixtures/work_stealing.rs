// Fixture: work-stealing deque lock discipline (PR 8's `mendel-sched`
// pattern). The correct protocol — own-deque push/pop and a steal that
// NEVER holds its own deque lock while taking the victim's — yields no
// hold-edges at all. The seeded anti-pattern (`steal_holding_*`) is the
// symmetric hold-and-steal that two workers run against each other,
// producing the own <-> victim cycle the analyzer must report.
//
// This file is test data for `crates/audit/tests/corpus.rs`; it is
// never compiled and does not need to resolve.

use parking_lot::Mutex;

pub struct Workers {
    own: Mutex<VecDeque<u32>>,
    victim: Mutex<VecDeque<u32>>,
}

impl Workers {
    /// Local submit: own deque only, LIFO end.
    pub fn push_local(&self, job: u32) {
        let mut own = self.own.lock();
        own.push_back(job);
    }

    /// Local pop: own deque only.
    pub fn pop_local(&self) -> Option<u32> {
        let mut own = self.own.lock();
        own.pop_back()
    }

    /// Correct steal: the worker's own deque is already released by the
    /// time it goes stealing, so only the victim's lock is taken — one
    /// lock at a time, no hold-edge, no cycle.
    pub fn steal(&self) -> Option<u32> {
        let mut victim = self.victim.lock();
        victim.pop_front()
    }

    /// Seeded anti-pattern: stealing while still holding the own-deque
    /// lock. Worker A holds `own` and wants `victim`...
    pub fn steal_holding_own(&self) -> Option<u32> {
        let own = self.own.lock();
        let mut victim = self.victim.lock();
        victim.pop_front().or_else(|| own.front().copied())
    }

    /// ...and worker B runs the mirror image — holds `victim` (its own
    /// deque) and wants `own`. Under contention the pair deadlocks.
    pub fn steal_holding_victim(&self) -> Option<u32> {
        let victim = self.victim.lock();
        let mut own = self.own.lock();
        own.pop_front().or_else(|| victim.front().copied())
    }

    /// Idle wait happens with NO deque lock held (the scheduler parks on
    /// a wake channel), so the blocking receive is not a guard smell.
    pub fn idle(&self, rx: &Receiver<()>) -> bool {
        rx.recv_timeout(TIMEOUT).is_ok()
    }
}
