// Fixture: concurrency-clean code. Guards are scoped, ordered
// consistently, or dropped before the next acquisition; every atomic
// site carries a matching `audit:ordering` annotation; the one
// blocking call under a guard is waived with a reason. Both analyses
// must report zero findings here.
//
// This file is test data for `crates/audit/tests/corpus.rs`; it is
// never compiled and does not need to resolve.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Engine {
    topology: RwLock<Vec<u32>>,
    nodes: RwLock<Vec<u32>>,
    hits: AtomicU64,
}

impl Engine {
    /// Consistent order everywhere: topology before nodes.
    pub fn plan(&self) -> usize {
        let topo = self.topology.read();
        let nodes = self.nodes.read();
        topo.len() + nodes.len()
    }

    /// Same order again, plus an explicit early drop.
    pub fn replan(&self) -> usize {
        let topo = self.topology.read();
        let width = topo.len();
        drop(topo);
        let nodes = self.nodes.write();
        nodes.len() + width
    }

    /// Read-then-write on the same lock, released in between.
    pub fn refresh(&self) -> usize {
        let snapshot = {
            let topo = self.topology.read();
            topo.len()
        };
        let mut topo = self.topology.write();
        topo.push(snapshot as u32);
        topo.len()
    }

    /// Annotated statistics counter.
    pub fn record(&self) {
        // audit:ordering(Relaxed): statistics counter; RMW atomicity suffices
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Annotated publication pair.
    pub fn publish(&self, v: u64) {
        self.hits.store(v, Ordering::Release); // audit:ordering(Release): pairs with the Acquire load in peek
        let seen = self.hits.load(Ordering::Acquire); // audit:ordering(Acquire): pairs with the Release store in publish
        let _ = seen;
    }

    /// Waived non-blocking send under a guard.
    pub fn broadcast(&self, tx: &Sender<u32>) {
        let nodes = self.nodes.read();
        // audit:allow(guard-across-io): unbounded channel send never blocks
        let _ = tx.send(nodes.len() as u32);
    }
}
