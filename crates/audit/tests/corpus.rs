//! Fixture-corpus tests for the concurrency analyses: exact finding
//! counts on known-deadlock, known-clean, and adversarial sources, and
//! zero false positives on the clean set.

use mendel_audit::atomics;
use mendel_audit::locks::{self, find_cycles};

const DEADLOCK: &str = include_str!("fixtures/deadlock.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");
const ADVERSARIAL: &str = include_str!("fixtures/adversarial.rs");
const PUBLICATION: &str = include_str!("fixtures/publication.rs");
const WORK_STEALING: &str = include_str!("fixtures/work_stealing.rs");

fn lock_facts(name: &str, src: &str) -> locks::FileLockFacts {
    locks::analyze_source(
        &format!("crates/fix/src/{name}.rs"),
        &format!("fix/{name}"),
        src,
    )
}

#[test]
fn deadlock_fixture_has_the_seeded_cycle() {
    let facts = lock_facts("deadlock", DEADLOCK);
    // forward: routes -> peers; backward: peers -> routes;
    // drain: no second acquisition.
    assert_eq!(facts.acquisitions.len(), 5);
    assert_eq!(facts.edges.len(), 2);
    let cycles = find_cycles(&facts.edges);
    assert_eq!(cycles.len(), 1, "exactly one cycle: {cycles:?}");
    assert_eq!(
        cycles[0].locks,
        vec!["fix/deadlock::peers", "fix/deadlock::routes"]
    );
    assert_eq!(cycles[0].edges.len(), 2);
}

#[test]
fn deadlock_fixture_has_the_unwaived_recv_smell() {
    let facts = lock_facts("deadlock", DEADLOCK);
    let unwaived: Vec<_> = facts.smells.iter().filter(|s| !s.waived).collect();
    assert_eq!(unwaived.len(), 1);
    assert_eq!(unwaived[0].callee, "recv_timeout");
    assert_eq!(unwaived[0].function, "drain");
    assert_eq!(unwaived[0].guards, vec!["fix/deadlock::peers"]);
}

#[test]
fn clean_fixture_has_zero_lock_findings() {
    let facts = lock_facts("clean", CLEAN);
    // plan: topology -> nodes is the only hold-edge; that edge is
    // consistent (never reversed), so there is no cycle.
    let cycles = find_cycles(&facts.edges);
    assert!(cycles.is_empty(), "false-positive cycles: {cycles:?}");
    assert!(facts.smells.iter().all(|s| s.waived), "{:?}", facts.smells);
    assert_eq!(facts.smells.len(), 1, "only the waived broadcast send");
}

#[test]
fn clean_fixture_has_zero_atomic_findings() {
    let sites = atomics::scan_source("crates/fix/src/clean.rs", CLEAN);
    assert_eq!(sites.len(), 3);
    assert!(
        sites.iter().all(|s| s.annotated()),
        "unannotated: {:?}",
        sites.iter().filter(|s| !s.annotated()).collect::<Vec<_>>()
    );
}

#[test]
fn adversarial_fixture_exact_counts() {
    let facts = lock_facts("adversarial", ADVERSARIAL);
    assert_eq!(
        facts.acquisitions.len(),
        3,
        "acquisitions: {:?}",
        facts.acquisitions
    );
    assert_eq!(facts.edges.len(), 1, "edges: {:?}", facts.edges);
    assert_eq!(facts.edges[0].held, "fix/adversarial::a");
    assert_eq!(facts.edges[0].acquired, "fix/adversarial::b");
    assert_eq!(facts.edges[0].function, "nested");
    assert!(find_cycles(&facts.edges).is_empty());
    assert!(facts.smells.is_empty(), "{:?}", facts.smells);
}

#[test]
fn adversarial_fixture_atomics_exact_counts() {
    let sites = atomics::scan_source("crates/fix/src/adversarial.rs", ADVERSARIAL);
    // One real site (annotated); cmp::Ordering, strings, comments and
    // the test region contribute nothing.
    assert_eq!(sites.len(), 1, "sites: {sites:?}");
    assert!(sites[0].annotated());
    assert_eq!(sites[0].ordering, "Relaxed");
}

#[test]
fn publication_fixture_all_sites_unannotated() {
    let sites = atomics::scan_source("crates/fix/src/publication.rs", PUBLICATION);
    assert_eq!(sites.len(), 4, "sites: {sites:?}");
    let unannotated = sites.iter().filter(|s| !s.annotated()).count();
    assert_eq!(unannotated, 4, "wrong-ordering marker must not annotate");
    let orderings: Vec<&str> = sites.iter().map(|s| s.ordering.as_str()).collect();
    assert_eq!(orderings, vec!["Relaxed", "Release", "Acquire", "Relaxed"]);
}

#[test]
fn work_stealing_fixture_exact_counts() {
    let facts = lock_facts("work_stealing", WORK_STEALING);
    // push/pop/steal: one lock each; the two hold-and-steal functions:
    // two each.
    assert_eq!(
        facts.acquisitions.len(),
        7,
        "acquisitions: {:?}",
        facts.acquisitions
    );
    assert_eq!(facts.edges.len(), 2, "edges: {:?}", facts.edges);
    let cycles = find_cycles(&facts.edges);
    assert_eq!(cycles.len(), 1, "exactly one cycle: {cycles:?}");
    assert_eq!(
        cycles[0].locks,
        vec!["fix/work_stealing::own", "fix/work_stealing::victim"]
    );
}

#[test]
fn work_stealing_correct_protocol_contributes_no_edges() {
    let facts = lock_facts("work_stealing", WORK_STEALING);
    // Every hold-edge comes from the seeded hold-and-steal pair; the
    // correct one-lock-at-a-time protocol is invisible to the cycle
    // finder, and the lock-free idle wait raises no guard smell.
    for e in &facts.edges {
        assert!(
            e.function.starts_with("steal_holding"),
            "unexpected edge from {}: {e:?}",
            e.function
        );
    }
    assert!(facts.smells.is_empty(), "{:?}", facts.smells);
}

#[test]
fn publication_fixture_has_no_lock_findings() {
    let facts = lock_facts("publication", PUBLICATION);
    assert!(facts.acquisitions.is_empty());
    assert!(facts.edges.is_empty());
    assert!(facts.smells.is_empty());
}
