//! Lock-order analysis: who acquires what while holding what.
//!
//! Walks the token stream of every workspace source file, infers the
//! scope of each parking_lot guard (`.lock()` / `.read()` / `.write()`
//! with no arguments on a named field or variable), and builds the
//! *held-while-acquiring* graph: an edge `A -> B` means some function
//! acquires lock `B` while a guard for lock `A` is still live. A cycle
//! in that graph is a potential deadlock; an I/O or blocking call made
//! while any guard is live is a long-held-guard smell.
//!
//! ## Guard scope model (soundness limits)
//!
//! The analysis is intra-procedural and syntactic:
//!
//! * A guard bound by exactly `let [mut] name = <recv>.lock();` lives
//!   to the end of its enclosing block, or to an explicit
//!   `drop(name)`.
//! * Any other acquisition is a temporary living to the end of its
//!   statement — except in an `if` / `while` / `match` scrutinee,
//!   where (matching Rust's temporary-lifetime extension) it is
//!   adopted into the brace block that follows.
//! * Locks are named `<crate>/<file>::<field path>` with `self.`
//!   stripped and index expressions collapsed to `[_]`; a guard
//!   variable used as a receiver is substituted by the lock it holds,
//!   so `nodes_guard[i].read()` becomes `…::nodes[_]`.
//! * Calls are not followed: a function that takes a lock and then
//!   calls another function that takes a different lock contributes
//!   edges only for the acquisitions it performs itself. The graph is
//!   therefore an under-approximation across calls and a slight
//!   over-approximation within match arms (arm temporaries are
//!   considered live until the end of the statement).
//!
//! Test code (`#[test]` / `#[cfg(test)]` regions) is exempt, as with
//! every other audit rule.

use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::report::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Method names that produce a parking_lot guard when called with no
/// arguments.
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Calls that block or perform I/O; making one while a guard is live is
/// the `guard-across-io` smell (waivable via
/// `audit:allow(guard-across-io): <reason>`).
const IO_CALLS: [&str; 21] = [
    "send",
    "send_traced",
    "recv",
    "recv_timeout",
    "try_recv",
    "call",
    "call_with_retry",
    "call_with_retry_traced",
    "scatter_gather",
    "scatter_gather_partial",
    "serve_one",
    "sleep",
    // File I/O (the mendel-store disk path): an fsync can stall for
    // seconds on a busy disk, and even buffered writes/reads block.
    "sync_all",
    "sync_data",
    "write_all",
    "create",
    "read_to_end",
    // Socket I/O (the TCP transport and HTTP front-end): connects and
    // blocking reads can stall for a full timeout.
    "connect",
    "connect_timeout",
    "accept",
    "read_exact",
];

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    pub lock: String,
    pub mode: &'static str,
    pub file: String,
    pub line: usize,
    pub function: String,
}

/// Lock `acquired` taken while a guard for `held` was live.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: usize,
    pub function: String,
}

/// A blocking/I/O call made while one or more guards were live.
#[derive(Debug, Clone)]
pub struct IoSmell {
    pub file: String,
    pub line: usize,
    pub function: String,
    pub callee: String,
    pub guards: Vec<String>,
    pub waived: bool,
}

/// A strongly connected component of the held-while-acquiring graph
/// with more than one lock (or a self-edge): a potential deadlock.
#[derive(Debug, Clone)]
pub struct Cycle {
    pub locks: Vec<String>,
    pub edges: Vec<LockEdge>,
}

/// Analysis result for one file.
#[derive(Debug, Default)]
pub struct FileLockFacts {
    pub acquisitions: Vec<Acquisition>,
    pub edges: Vec<LockEdge>,
    pub smells: Vec<IoSmell>,
}

/// Whole-workspace lock-order report.
#[derive(Debug, Default)]
pub struct LockReport {
    pub files: usize,
    pub acquisitions: Vec<Acquisition>,
    pub edges: Vec<LockEdge>,
    pub cycles: Vec<Cycle>,
    pub smells: Vec<IoSmell>,
}

impl LockReport {
    /// Smells not waived by an `audit:allow(guard-across-io)` marker.
    pub fn unwaived_smells(&self) -> Vec<&IoSmell> {
        self.smells.iter().filter(|s| !s.waived).collect()
    }

    /// True when the workspace passes the gate: no cycles, no unwaived
    /// smells.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty() && self.unwaived_smells().is_empty()
    }

    /// Distinct lock names seen anywhere.
    pub fn lock_names(&self) -> BTreeSet<String> {
        let mut names: BTreeSet<String> =
            self.acquisitions.iter().map(|a| a.lock.clone()).collect();
        for e in &self.edges {
            names.insert(e.held.clone());
            names.insert(e.acquired.clone());
        }
        names
    }
}

/// Lock id prefix for a workspace-relative path:
/// `crates/net/src/rpc.rs` → `net/rpc`.
pub fn module_name(rel_path: &str) -> String {
    let p = rel_path.strip_prefix("crates/").unwrap_or(rel_path);
    let p = p.replace("/src/", "/");
    p.strip_suffix(".rs").unwrap_or(&p).to_string()
}

/// A live guard during simulation.
#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    var: Option<String>,
}

/// One open brace block: its guards, plus the statement state of the
/// enclosing statement (restored when the block closes, so temporaries
/// of `let x = … { … } …;` survive the inner block).
struct Scope {
    guards: Vec<Guard>,
    saved_temps: Vec<Guard>,
    saved_head: Option<String>,
    saved_start: usize,
}

/// Analyze one file's token stream. `module` is the lock-name prefix
/// (see [`module_name`]); `file` is used verbatim in findings.
pub fn analyze_source(file: &str, module: &str, source: &str) -> FileLockFacts {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut facts = FileLockFacts::default();

    let mut scopes: Vec<Scope> = Vec::new();
    let mut stmt_temps: Vec<Guard> = Vec::new();
    let mut stmt_head: Option<String> = None;
    let mut stmt_start: usize = 0;
    let mut fn_stack: Vec<(String, u32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut seen_edges: BTreeSet<(String, String, usize)> = BTreeSet::new();

    let mut i = 0;
    while i < toks.len() {
        let tok = &toks[i];
        match tok.kind {
            TokKind::Punct if tok.is_punct('{') => {
                let scrutinee = matches!(
                    stmt_head.as_deref(),
                    Some("if" | "while" | "match" | "for" | "else")
                );
                let adopted = if scrutinee {
                    std::mem::take(&mut stmt_temps)
                } else {
                    Vec::new()
                };
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, tok.depth));
                }
                scopes.push(Scope {
                    guards: adopted,
                    saved_temps: std::mem::take(&mut stmt_temps),
                    saved_head: stmt_head.take(),
                    saved_start: stmt_start,
                });
                stmt_start = i + 1;
            }
            TokKind::Punct if tok.is_punct('}') => {
                if let Some(scope) = scopes.pop() {
                    stmt_temps = scope.saved_temps;
                    stmt_head = scope.saved_head;
                    stmt_start = scope.saved_start;
                } else {
                    stmt_temps.clear();
                    stmt_head = None;
                }
                if fn_stack.last().is_some_and(|(_, d)| *d == tok.depth) {
                    fn_stack.pop();
                }
            }
            TokKind::Punct if tok.is_punct(';') => {
                stmt_temps.clear();
                stmt_head = None;
                stmt_start = i + 1;
                pending_fn = None;
            }
            TokKind::Ident => {
                let text = tok.text.as_str();
                if i == stmt_start && matches!(text, "if" | "while" | "match" | "for" | "else") {
                    stmt_head = Some(text.to_string());
                }
                if text == "fn" {
                    if let Some(next) = toks.get(i + 1) {
                        if next.kind == TokKind::Ident {
                            pending_fn = Some(next.text.clone());
                        }
                    }
                } else if text == "drop"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    if let Some(victim) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                        let name = victim.text.as_str();
                        for scope in scopes.iter_mut() {
                            scope.guards.retain(|g| g.var.as_deref() != Some(name));
                        }
                        stmt_temps.retain(|g| g.var.as_deref() != Some(name));
                    }
                } else if is_acquisition(toks, i) && !tok.in_test {
                    let mode = GUARD_METHODS
                        .iter()
                        .find(|m| **m == text)
                        .copied()
                        .unwrap_or("lock");
                    let (segments, recv_start) = walk_receiver(toks, i);
                    let lock = lock_name(module, segments, &scopes, &stmt_temps);
                    let function = fn_stack
                        .last()
                        .map(|(n, _)| n.clone())
                        .unwrap_or_else(|| String::from("<top>"));
                    facts.acquisitions.push(Acquisition {
                        lock: lock.clone(),
                        mode,
                        file: file.to_string(),
                        line: tok.line,
                        function: function.clone(),
                    });
                    for held in live_guards(&scopes, &stmt_temps) {
                        if seen_edges.insert((held.clone(), lock.clone(), tok.line)) {
                            facts.edges.push(LockEdge {
                                held,
                                acquired: lock.clone(),
                                file: file.to_string(),
                                line: tok.line,
                                function: function.clone(),
                            });
                        }
                    }
                    let var = binding_var(toks, stmt_start, recv_start, i);
                    let guard = Guard {
                        lock,
                        var: var.clone(),
                    };
                    if var.is_some() {
                        if let Some(scope) = scopes.last_mut() {
                            scope.guards.push(guard);
                        } else {
                            stmt_temps.push(guard);
                        }
                    } else {
                        stmt_temps.push(guard);
                    }
                } else if !tok.in_test
                    && IO_CALLS.contains(&text)
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !(i > 0 && toks[i - 1].is_ident("fn"))
                {
                    let live = live_guards(&scopes, &stmt_temps);
                    if !live.is_empty() {
                        let function = fn_stack
                            .last()
                            .map(|(n, _)| n.clone())
                            .unwrap_or_else(|| String::from("<top>"));
                        facts.smells.push(IoSmell {
                            file: file.to_string(),
                            line: tok.line,
                            function,
                            callee: text.to_string(),
                            guards: live,
                            waived: smell_waived(&lexed, tok.line),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// True when token `i` is a guard-producing method call: preceded by
/// `.`, named `lock`/`read`/`write`, and called with empty parentheses
/// (which is what filters out `io::Read::read(&mut buf)` and friends).
fn is_acquisition(toks: &[Token], i: usize) -> bool {
    GUARD_METHODS.contains(&toks[i].text.as_str())
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

/// Walk the receiver chain backwards from the `.` before token `i`
/// (the method name). Returns the receiver's path segments in source
/// order plus the index of its first token.
fn walk_receiver(toks: &[Token], i: usize) -> (Vec<String>, usize) {
    let mut segments: Vec<String> = Vec::new();
    let mut start = i.saturating_sub(1);
    // j points at the token just before the `.`.
    let mut j = match i.checked_sub(2) {
        Some(j) => j as i64,
        None => return (segments, start),
    };
    loop {
        if j < 0 {
            break;
        }
        let tok = &toks[j as usize];
        if tok.is_punct(']') {
            // Indexing binds directly to what precedes it — no `.`
            // between `nodes` and `[i]` — so keep walking.
            match matching_open(toks, j as usize, '[', ']') {
                Some(open) => {
                    segments.push(String::from("[_]"));
                    start = open;
                    j = open as i64 - 1;
                    continue;
                }
                None => break,
            }
        } else if tok.is_punct(')') {
            match matching_open(toks, j as usize, '(', ')') {
                Some(open) if open > 0 && toks[open - 1].kind == TokKind::Ident => {
                    segments.push(format!("{}()", toks[open - 1].text));
                    start = open - 1;
                    j = open as i64 - 2;
                }
                _ => break,
            }
        } else if tok.kind == TokKind::Ident {
            segments.push(tok.text.clone());
            start = j as usize;
            j -= 1;
        } else {
            break;
        }
        // Ident and call segments continue only through a `.` chain.
        if j >= 0 && toks[j as usize].is_punct('.') {
            j -= 1;
        } else {
            break;
        }
    }
    segments.reverse();
    (segments, start)
}

/// Scan backwards from `close` to the matching opening bracket.
fn matching_open(toks: &[Token], close: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        if toks[j].is_punct(close_ch) {
            depth += 1;
        } else if toks[j].is_punct(open_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Build the qualified lock name from receiver segments: drop a
/// leading `self`, drop chained guard-producing calls, substitute a
/// leading guard variable with the lock it holds, prefix the module.
fn lock_name(
    module: &str,
    mut segments: Vec<String>,
    scopes: &[Scope],
    stmt_temps: &[Guard],
) -> String {
    if segments.first().is_some_and(|s| s == "self") {
        segments.remove(0);
    }
    segments.retain(|s| !matches!(s.as_str(), "lock()" | "read()" | "write()"));
    if segments.is_empty() {
        return format!("{module}::<expr>");
    }
    // Guard-variable substitution: `nodes_guard[i].read()` names the
    // lock the guard came from, not the variable.
    let substituted = scopes
        .iter()
        .flat_map(|s| s.guards.iter())
        .chain(stmt_temps.iter())
        .find(|g| g.var.as_deref() == Some(segments[0].as_str()))
        .map(|g| g.lock.clone());
    let mut name = match substituted {
        Some(lock) => lock,
        None => format!("{module}::{}", segments[0]),
    };
    for seg in &segments[1..] {
        if seg.starts_with('[') {
            name.push_str(seg);
        } else {
            name.push('.');
            name.push_str(seg);
        }
    }
    name
}

/// Does the statement beginning at `stmt_start` bind this acquisition
/// to a variable (`let [mut] name = <recv>.lock();`)? Returns the
/// variable name when it does.
fn binding_var(
    toks: &[Token],
    stmt_start: usize,
    recv_start: usize,
    method_idx: usize,
) -> Option<String> {
    let mut k = stmt_start;
    if !toks.get(k)?.is_ident("let") {
        return None;
    }
    k += 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let var = toks.get(k)?;
    if var.kind != TokKind::Ident {
        return None;
    }
    k += 1;
    if !toks.get(k)?.is_punct('=') {
        return None;
    }
    // The receiver must start right after the `=`, and the statement
    // must end right after the call: anything else (`let g = a.lock()
    // .map(..)`, `let (a, b) = …`) is not a plain guard binding.
    if k + 1 != recv_start || !toks.get(method_idx + 3)?.is_punct(';') {
        return None;
    }
    Some(var.text.clone())
}

fn live_guards(scopes: &[Scope], stmt_temps: &[Guard]) -> Vec<String> {
    let mut live: Vec<String> = Vec::new();
    for g in scopes
        .iter()
        .flat_map(|s| s.guards.iter())
        .chain(stmt_temps.iter())
    {
        if !live.contains(&g.lock) {
            live.push(g.lock.clone());
        }
    }
    live
}

/// `audit:allow(guard-across-io): <reason>` on the same line or the
/// line directly above waives a smell.
fn smell_waived(lexed: &Lexed, line: usize) -> bool {
    let marked = |text: &str| {
        let mut from = 0;
        while let Some(pos) = text[from..].find("audit:allow(guard-across-io)") {
            let rest = &text[from + pos + "audit:allow(guard-across-io)".len()..];
            if rest
                .strip_prefix(':')
                .is_some_and(|reason| !reason.trim().is_empty())
            {
                return true;
            }
            from += pos + 1;
        }
        false
    };
    marked(lexed.comment_on(line)) || (line > 1 && marked(lexed.comment_on(line - 1)))
}

/// Run the analysis over every workspace source file under `root`.
pub fn analyze_workspace(root: &Path) -> Result<LockReport, String> {
    let files =
        crate::workspace_rs_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut report = LockReport::default();
    for rel_path in files {
        let rel = rel_path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(root.join(&rel_path))
            .map_err(|e| format!("read {}: {e}", rel_path.display()))?;
        let facts = analyze_source(&rel, &module_name(&rel), &source);
        report.acquisitions.extend(facts.acquisitions);
        report.edges.extend(facts.edges);
        report.smells.extend(facts.smells);
        report.files += 1;
    }
    report.cycles = find_cycles(&report.edges);
    Ok(report)
}

/// Strongly connected components (iterative Tarjan) of the edge set;
/// components with more than one lock, or any self-edge, are cycles.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<Cycle> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str())
            .or_default()
            .insert(e.acquired.as_str());
        adj.entry(e.acquired.as_str()).or_default();
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let succ: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| adj[n].iter().map(|t| index_of[t]).collect())
        .collect();

    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: work items are (node, next neighbor position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, pos)) = work.last() {
            if pos == 0 && index[v] == usize::MAX {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if pos < succ[v].len() {
                if let Some(top) = work.last_mut() {
                    top.1 += 1;
                }
                let w = succ[v][pos];
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }

    let mut cycles = Vec::new();
    for comp in components {
        let names: BTreeSet<&str> = comp.iter().map(|&i| nodes[i]).collect();
        let self_loop = comp.len() == 1
            && edges
                .iter()
                .any(|e| e.held == e.acquired && e.held == nodes[comp[0]]);
        if comp.len() > 1 || self_loop {
            let members: Vec<String> = names.iter().map(|s| s.to_string()).collect();
            let cycle_edges: Vec<LockEdge> = edges
                .iter()
                .filter(|e| names.contains(e.held.as_str()) && names.contains(e.acquired.as_str()))
                .cloned()
                .collect();
            cycles.push(Cycle {
                locks: members,
                edges: cycle_edges,
            });
        }
    }
    cycles.sort_by(|a, b| a.locks.cmp(&b.locks));
    cycles
}

/// Graphviz dump of the held-while-acquiring graph.
pub fn render_dot(report: &LockReport) -> String {
    let mut out = String::from(
        "digraph lock_order {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    let cyclic: BTreeSet<&str> = report
        .cycles
        .iter()
        .flat_map(|c| c.locks.iter().map(|s| s.as_str()))
        .collect();
    for name in report.lock_names() {
        let attrs = if cyclic.contains(name.as_str()) {
            " [color=red, penwidth=2]"
        } else {
            ""
        };
        out.push_str(&format!("  \"{name}\"{attrs};\n"));
    }
    for e in &report.edges {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}:{}\"];\n",
            e.held, e.acquired, e.file, e.line
        ));
    }
    out.push_str("}\n");
    out
}

/// Human-readable report.
pub fn render_report(report: &LockReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "lock-order: {} files, {} acquisition sites, {} distinct locks, {} hold-edges\n",
        report.files,
        report.acquisitions.len(),
        report.lock_names().len(),
        report.edges.len(),
    ));
    if !report.edges.is_empty() {
        out.push_str("\nheld-while-acquiring edges:\n");
        let mut edges = report.edges.clone();
        edges.sort();
        for e in &edges {
            out.push_str(&format!(
                "  {} -> {}  ({}:{} in {})\n",
                e.held, e.acquired, e.file, e.line, e.function
            ));
        }
    }
    if report.cycles.is_empty() {
        out.push_str("\nno lock-order cycles.\n");
    } else {
        out.push_str(&format!("\nCYCLES ({}):\n", report.cycles.len()));
        for c in &report.cycles {
            out.push_str(&format!("  cycle: {}\n", c.locks.join(" <-> ")));
            for e in &c.edges {
                out.push_str(&format!(
                    "    {} -> {} at {}:{}\n",
                    e.held, e.acquired, e.file, e.line
                ));
            }
        }
    }
    let unwaived = report.unwaived_smells();
    let waived = report.smells.len() - unwaived.len();
    if report.smells.is_empty() {
        out.push_str("no guard-across-io smells.\n");
    } else {
        out.push_str(&format!(
            "guard-across-io smells: {} ({} waived)\n",
            report.smells.len(),
            waived
        ));
        for s in &report.smells {
            out.push_str(&format!(
                "  {} {}:{} `{}(..)` under [{}] in {}\n",
                if s.waived { "waived" } else { "SMELL " },
                s.file,
                s.line,
                s.callee,
                s.guards.join(", "),
                s.function
            ));
        }
    }
    out
}

/// JSON document for `bench_results/` trend tracking.
pub fn to_json(report: &LockReport) -> Json {
    let edge = |e: &LockEdge| {
        Json::Obj(vec![
            ("held".into(), Json::str(&e.held)),
            ("acquired".into(), Json::str(&e.acquired)),
            ("file".into(), Json::str(&e.file)),
            ("line".into(), Json::count(e.line)),
            ("function".into(), Json::str(&e.function)),
        ])
    };
    Json::Obj(vec![
        ("analysis".into(), Json::str("locks")),
        ("files".into(), Json::count(report.files)),
        (
            "acquisitions".into(),
            Json::count(report.acquisitions.len()),
        ),
        (
            "locks".into(),
            Json::Arr(report.lock_names().iter().map(Json::str).collect()),
        ),
        (
            "edges".into(),
            Json::Arr(report.edges.iter().map(edge).collect()),
        ),
        (
            "cycles".into(),
            Json::Arr(
                report
                    .cycles
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            (
                                "locks".into(),
                                Json::Arr(c.locks.iter().map(Json::str).collect()),
                            ),
                            (
                                "edges".into(),
                                Json::Arr(c.edges.iter().map(edge).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "smells".into(),
            Json::Arr(
                report
                    .smells
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("file".into(), Json::str(&s.file)),
                            ("line".into(), Json::count(s.line)),
                            ("function".into(), Json::str(&s.function)),
                            ("callee".into(), Json::str(&s.callee)),
                            (
                                "guards".into(),
                                Json::Arr(s.guards.iter().map(Json::str).collect()),
                            ),
                            ("waived".into(), Json::Bool(s.waived)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("clean".into(), Json::Bool(report.is_clean())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileLockFacts {
        analyze_source("crates/x/src/m.rs", "x/m", src)
    }

    #[test]
    fn module_names() {
        assert_eq!(module_name("crates/net/src/rpc.rs"), "net/rpc");
        assert_eq!(
            module_name("crates/cli/src/bin/mendel.rs"),
            "cli/bin/mendel"
        );
    }

    #[test]
    fn bound_guard_lives_to_block_end() {
        let f = facts(
            "fn f(&self) {\n    let g = self.a.lock();\n    self.b.lock();\n}\nfn g(&self) {\n    self.b.lock();\n}",
        );
        assert_eq!(f.acquisitions.len(), 3);
        assert_eq!(f.edges.len(), 1);
        assert_eq!(f.edges[0].held, "x/m::a");
        assert_eq!(f.edges[0].acquired, "x/m::b");
        assert_eq!(f.edges[0].function, "f");
    }

    #[test]
    fn temporary_dies_at_statement_end() {
        let f = facts("fn f(&self) {\n    self.a.lock().touch();\n    self.b.lock();\n}");
        assert!(f.edges.is_empty());
    }

    #[test]
    fn drop_releases_a_bound_guard() {
        let f =
            facts("fn f(&self) {\n    let g = self.a.lock();\n    drop(g);\n    self.b.lock();\n}");
        assert!(f.edges.is_empty());
    }

    #[test]
    fn scrutinee_temporary_is_adopted_into_the_block() {
        // The classic parking_lot footgun: the `if let` scrutinee
        // temporary lives for the whole block.
        let f = facts(
            "fn f(&self) {\n    if let Some(v) = self.a.lock().get(k) {\n        self.b.lock();\n    }\n}",
        );
        assert_eq!(f.edges.len(), 1);
        assert_eq!(f.edges[0].held, "x/m::a");
    }

    #[test]
    fn block_confined_guard_does_not_leak() {
        let f = facts(
            "fn f(&self) {\n    let v = {\n        let g = self.a.write();\n        g.len()\n    };\n    self.b.lock();\n}",
        );
        assert!(f.edges.is_empty());
    }

    #[test]
    fn guard_variable_indexing_is_substituted() {
        let f = facts(
            "fn f(&self) {\n    let nodes = self.nodes.read();\n    let n = nodes[i].read();\n}",
        );
        assert_eq!(f.acquisitions.len(), 2);
        assert_eq!(f.acquisitions[1].lock, "x/m::nodes[_]");
        assert_eq!(f.edges.len(), 1);
        assert_eq!(f.edges[0].acquired, "x/m::nodes[_]");
    }

    #[test]
    fn read_with_arguments_is_not_an_acquisition() {
        let f = facts("fn f(&self) {\n    let n = file.read(&mut buf);\n    sock.write(&data);\n}");
        assert!(f.acquisitions.is_empty());
    }

    #[test]
    fn self_upgrade_is_a_cycle() {
        let f = facts("fn f(&self) {\n    let g = self.a.read();\n    let w = self.a.write();\n}");
        let cycles = find_cycles(&f.edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["x/m::a"]);
    }

    #[test]
    fn ab_ba_is_a_cycle() {
        let f = facts(
            "fn f(&self) {\n    let g = self.a.lock();\n    self.b.lock();\n}\nfn g(&self) {\n    let g = self.b.lock();\n    self.a.lock();\n}",
        );
        let cycles = find_cycles(&f.edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks, vec!["x/m::a", "x/m::b"]);
    }

    #[test]
    fn consistent_order_is_no_cycle() {
        let f = facts(
            "fn f(&self) {\n    let g = self.a.lock();\n    self.b.lock();\n}\nfn g(&self) {\n    let g = self.a.lock();\n    self.b.lock();\n}",
        );
        assert!(find_cycles(&f.edges).is_empty());
    }

    #[test]
    fn io_under_guard_is_a_smell() {
        let f = facts("fn f(&self) {\n    let g = self.senders.read();\n    tx.send(env);\n}");
        assert_eq!(f.smells.len(), 1);
        assert!(!f.smells[0].waived);
        assert_eq!(f.smells[0].callee, "send");
    }

    #[test]
    fn waiver_marks_the_smell() {
        let f = facts(
            "fn f(&self) {\n    let g = self.senders.read();\n    // audit:allow(guard-across-io): unbounded channel send never blocks\n    tx.send(env);\n}",
        );
        assert_eq!(f.smells.len(), 1);
        assert!(f.smells[0].waived);
    }

    #[test]
    fn io_without_guard_is_fine() {
        let f = facts("fn f(&self) {\n    tx.send(env);\n}");
        assert!(f.smells.is_empty());
    }

    #[test]
    fn fn_definitions_are_not_calls() {
        let f = facts(
            "impl X {\n    fn a(&self) {\n        let g = self.m.lock();\n    }\n    fn send(&self, x: u32) {\n        x;\n    }\n}",
        );
        assert!(f.smells.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let f = facts(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let g = A.lock();\n        B.lock();\n    }\n}",
        );
        assert!(f.acquisitions.is_empty());
        assert!(f.edges.is_empty());
    }

    #[test]
    fn multiline_chain_acquisition_is_seen() {
        let f = facts(
            "fn f(&self) {\n    self.parked\n        .lock()\n        .retain(|_, _| true);\n}",
        );
        assert_eq!(f.acquisitions.len(), 1);
        assert_eq!(f.acquisitions[0].lock, "x/m::parked");
        assert_eq!(f.acquisitions[0].line, 3);
    }

    #[test]
    fn strings_and_comments_cannot_fake_locks() {
        let f = facts(
            "fn f(&self) {\n    let s = \"self.a.lock() while self.b.lock()\";\n    // self.c.lock()\n    let r = r#\"self.d.lock()\"#;\n}",
        );
        assert!(f.acquisitions.is_empty());
    }
}
