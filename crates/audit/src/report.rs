//! Machine-readable report output.
//!
//! The audit crate deliberately has zero dependencies, so this is a
//! small hand-rolled JSON value tree with a deterministic renderer.
//! Every analysis (`lint`, `locks`, `atomics`) can be asked for a
//! [`Json`] document; `ci.sh` writes them into `bench_results/` so
//! finding counts can be tracked across commits like any other metric.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so reports render
/// stably for diffing.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a JSON string from anything string-like.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a JSON integer from any unsigned count.
    pub fn count(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd\te\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn nested_structure_is_stable() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("locks")),
            ("count".into(), Json::count(2)),
            (
                "items".into(),
                Json::Arr(vec![Json::str("a"), Json::str("b")]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"locks\""));
        assert!(text.contains("\"count\": 2"));
        assert!(text.contains("\"empty\": []"));
        // Keys keep insertion order.
        let name_at = text.find("name").unwrap();
        let items_at = text.find("items").unwrap();
        assert!(name_at < items_at);
    }

    #[test]
    fn parses_back_with_a_tiny_checker() {
        // Not a full parser — just balance-check the renderer output.
        let doc = Json::Obj(vec![(
            "arr".into(),
            Json::Arr(vec![Json::Obj(vec![("k".into(), Json::Int(1))])]),
        )]);
        let text = doc.render();
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for c in text.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
            }
            prev = c;
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
