//! Token-level view of a Rust source file.
//!
//! The lexer runs on top of [`crate::sanitize::sanitize`], which has
//! already blanked comments and literal *contents* while keeping the
//! delimiters, so every `"` it sees opens or closes a string and every
//! `'` is either a lifetime sigil or a char-literal delimiter. On that
//! cleaned text a single pass produces a flat token stream; two cheap
//! post-passes then stamp each token with its brace depth and whether
//! it sits inside a `#[test]` / `#[cfg(test)]` region. The token stream
//! is what the lock-order ([`crate::locks`]) and atomic-ordering
//! ([`crate::atomics`]) analyses walk — they never touch raw text, so
//! macro bodies, raw strings, and multi-line method chains cannot fool
//! them the way they could a line-regex rule.

use crate::sanitize::sanitize;

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `fn`, `lock`, …).
    Ident,
    /// Lifetime (`'a`), including the leading quote.
    Lifetime,
    /// Any literal: number, string (delimiters only — contents were
    /// blanked by the sanitizer), or char.
    Literal,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One token, with enough position and scope context for analyses to
/// reason about where it lives.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// Brace depth: `{` and its matching `}` carry the same depth; the
    /// tokens between them carry depth + 1.
    pub depth: u32,
    /// True when the token sits inside a `#[test]` fn or a
    /// `#[cfg(test)]` region (including the item signature between the
    /// attribute and its opening brace).
    pub in_test: bool,
}

impl Token {
    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A lexed file: the token stream plus the per-line comment text the
/// sanitizer stripped (1-based line `n` is `comments[n - 1]`), which the
/// analyses use to honor `audit:allow` / `audit:ordering` markers.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<String>,
}

impl Lexed {
    /// Comment text attached to 1-based `line` (empty when none).
    pub fn comment_on(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.comments.get(i))
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

/// Lex `source` into a token stream with depth and test-region marks.
pub fn lex(source: &str) -> Lexed {
    let sanitized = sanitize(source);
    let comments: Vec<String> = sanitized.iter().map(|l| l.comment.clone()).collect();

    let mut tokens = Vec::new();
    for (idx, line) in sanitized.iter().enumerate() {
        lex_line(&line.code, idx + 1, &mut tokens);
    }
    mark_depth(&mut tokens);
    mark_test_regions(&mut tokens);
    Lexed { tokens, comments }
}

/// Tokenize one sanitized line. String and char literals never span
/// lines here: the sanitizer leaves the opening delimiter on one line
/// and the closing delimiter on another, with only blanks between, so
/// an unterminated quote on a line simply ends the line's tokens.
fn lex_line(code: &str, line_no: usize, out: &mut Vec<Token>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            push(
                out,
                TokKind::Ident,
                chars[start..i].iter().collect(),
                line_no,
            );
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            // Fractional part: only when a digit follows the dot, so
            // ranges (`0..n`) and tuple access stay separate tokens.
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            push(
                out,
                TokKind::Literal,
                chars[start..i].iter().collect(),
                line_no,
            );
        } else if c == '"' {
            // Sanitized string: contents are blanks, so the next quote
            // on this line closes it; if none does, the literal spans
            // lines and the closing delimiter is handled when its line
            // is lexed (the stray quote there opens an "empty" literal
            // that likewise runs to the next quote).
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '"' {
                j += 1;
            }
            i = (j + 1).min(chars.len());
            push(out, TokKind::Literal, String::from("\"\""), line_no);
        } else if c == '\'' {
            let next = chars.get(i + 1).copied();
            if next.is_some_and(|n| n.is_alphanumeric() || n == '_') {
                // Lifetime: the sanitizer blanked char-literal contents,
                // so a quote followed by an identifier char is `'a`.
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                push(
                    out,
                    TokKind::Lifetime,
                    chars[start..i].iter().collect(),
                    line_no,
                );
            } else {
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                i = (j + 1).min(chars.len());
                push(out, TokKind::Literal, String::from("''"), line_no);
            }
        } else {
            push(out, TokKind::Punct, c.to_string(), line_no);
            i += 1;
        }
    }
}

fn push(out: &mut Vec<Token>, kind: TokKind, text: String, line: usize) {
    out.push(Token {
        kind,
        text,
        line,
        depth: 0,
        in_test: false,
    });
}

/// Stamp brace depth: `{` and its matching `}` share a depth.
fn mark_depth(tokens: &mut [Token]) {
    let mut depth: u32 = 0;
    for tok in tokens.iter_mut() {
        if tok.is_punct('{') {
            tok.depth = depth;
            depth += 1;
        } else if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            tok.depth = depth;
        } else {
            tok.depth = depth;
        }
    }
}

/// Stamp test regions, mirroring the line-level tracker in
/// [`crate::lint`]: a `#[test]` or test-carrying `#[cfg(..)]` attribute
/// arms a pending flag; the next `{` opens a region popped by its
/// matching `}`. A `;` at attribute level disarms (attribute on a
/// bodyless item).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut pending = false;
    let mut stack: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some((end, is_test)) = scan_attribute(tokens, i + 1) {
                if is_test {
                    pending = true;
                }
                for tok in tokens[i..=end].iter_mut() {
                    tok.in_test = tok.in_test || pending || !stack.is_empty();
                }
                i = end + 1;
                continue;
            }
        }
        let tok = &mut tokens[i];
        tok.in_test = pending || !stack.is_empty();
        if tok.is_punct('{') {
            if pending {
                stack.push(tok.depth);
                pending = false;
            }
        } else if tok.is_punct('}') {
            if stack.last() == Some(&tok.depth) {
                stack.pop();
            }
        } else if tok.is_punct(';') && stack.is_empty() {
            pending = false;
        }
        i += 1;
    }
}

/// Given `open` at the `[` of `#[...]`, return the index of the
/// matching `]` and whether the attribute marks test code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ..))]`, and friends.
fn scan_attribute(tokens: &[Token], open: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut first_ident: Option<&str> = None;
    let mut saw_test = false;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                let is_test = match first_ident {
                    Some("test") => true,
                    Some("cfg") => saw_test,
                    _ => false,
                };
                return Some((j, is_test));
            }
        } else if tok.kind == TokKind::Ident {
            if first_ident.is_none() {
                first_ident = Some(tok.text.as_str());
            }
            if tok.text == "test" {
                saw_test = true;
            }
        }
        // Attributes are short; bail if the stream is malformed.
        if j > open + 256 {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            texts("let x = foo.bar(1, 0.5);"),
            vec!["let", "x", "=", "foo", ".", "bar", "(", "1", ",", "0.5", ")", ";"]
        );
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        assert_eq!(texts("0..n"), vec!["0", ".", ".", "n"]);
        assert_eq!(texts("x.0"), vec!["x", ".", "0"]);
    }

    #[test]
    fn paths_are_single_colon_tokens() {
        assert_eq!(
            texts("Ordering::Relaxed"),
            vec!["Ordering", ":", ":", "Relaxed"]
        );
    }

    #[test]
    fn strings_collapse_to_one_literal() {
        assert_eq!(
            texts(r#"f("has .lock() inside")"#),
            vec!["f", "(", "\"\"", ")"]
        );
    }

    #[test]
    fn raw_strings_and_fences() {
        let toks = texts("let s = r##\"x .lock() \"quote\" y\"##;");
        assert!(!toks.contains(&"lock".to_string()));
        assert!(toks.contains(&"\"\"".to_string()));
    }

    #[test]
    fn multiline_strings_do_not_swallow_code() {
        let toks = texts("let s = \"first\nsecond\";\nlet t = 3;");
        let tail: Vec<_> = toks.iter().skip_while(|t| *t != "t").collect();
        assert_eq!(tail, vec!["t", "=", "3", ";"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(texts("&'a str"), vec!["&", "'a", "str"]);
        assert_eq!(texts("let c = 'x';"), vec!["let", "c", "=", "''", ";"]);
    }

    #[test]
    fn depth_tracks_braces() {
        let lexed = lex("fn f() { if x { y(); } }");
        let find = |s: &str| lexed.tokens.iter().find(|t| t.text == s).unwrap().depth;
        assert_eq!(find("fn"), 0);
        assert_eq!(find("if"), 1);
        assert_eq!(find("y"), 2);
        let braces: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_punct('{') || t.is_punct('}'))
            .map(|t| t.depth)
            .collect();
        assert_eq!(braces, vec![0, 1, 1, 0]);
    }

    #[test]
    fn line_numbers_survive_multiline_chains() {
        let lexed = lex("self.parked\n    .lock()\n    .retain(|_, _| true);");
        let lock = lexed.tokens.iter().find(|t| t.text == "lock").unwrap();
        assert_eq!(lock.line, 2);
        let retain = lexed.tokens.iter().find(|t| t.text == "retain").unwrap();
        assert_eq!(retain.line, 3);
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { b(); }\n}\nfn live2() { c(); }";
        let lexed = lex(src);
        let flag = |s: &str| lexed.tokens.iter().find(|t| t.text == s).unwrap().in_test;
        assert!(!flag("a"));
        assert!(flag("b"));
        assert!(!flag("c"));
        // The signature between attribute and brace is covered too.
        assert!(flag("tests"));
    }

    #[test]
    fn non_test_cfg_attributes_do_not_arm() {
        let src = "#[cfg(feature = \"x\")]\nfn f() { a(); }";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().find(|t| t.text == "a").unwrap().in_test);
    }

    #[test]
    fn bodyless_item_disarms_pending() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { a(); }";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().find(|t| t.text == "a").unwrap().in_test);
    }

    #[test]
    fn comments_are_kept_per_line() {
        let lexed = lex("x(); // audit:allow(unwrap): fine\ny();");
        assert!(lexed.comment_on(1).contains("audit:allow"));
        assert_eq!(lexed.comment_on(2), "");
    }
}
