//! Atomic-ordering audit: every `Ordering::*` site carries a reviewed
//! justification.
//!
//! The analysis walks the token stream for the exact path tokens
//! `Ordering :: <Relaxed|Acquire|Release|AcqRel|SeqCst>` (so
//! `cmp::Ordering::Less` never matches and string/comment mentions are
//! invisible). Each non-test site must be annotated with a marker in a
//! comment on the same line or the line directly above:
//!
//! ```text
//! // audit:ordering(Relaxed): statistics counter; no data is
//! // published under this value.
//! hits.fetch_add(1, Ordering::Relaxed);
//! ```
//!
//! The marker's ordering must match the site's ordering — changing
//! `Relaxed` to `AcqRel` invalidates the old justification on purpose.
//! Unannotated sites are held in a shrink-only baseline
//! (`atomics-baseline.txt`, same contract as the lint baseline): new
//! unannotated sites fail the audit, annotating a site makes the
//! baseline stale until it is regenerated smaller.

use crate::lexer::{lex, Lexed, TokKind};
use crate::report::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// The five memory orderings.
pub const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `Ordering::*` use site.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    pub file: String,
    pub line: usize,
    pub ordering: String,
    /// The annotation reason, when a matching marker was found.
    pub reason: Option<String>,
}

impl AtomicSite {
    pub fn annotated(&self) -> bool {
        self.reason.is_some()
    }
}

/// Whole-workspace atomic-ordering report.
#[derive(Debug, Default)]
pub struct AtomicsReport {
    pub files: usize,
    pub sites: Vec<AtomicSite>,
}

/// Unannotated counts keyed by `(file, ordering)` — the baseline
/// currency.
pub type Counts = BTreeMap<(String, String), usize>;

impl AtomicsReport {
    pub fn unannotated(&self) -> Vec<&AtomicSite> {
        self.sites.iter().filter(|s| !s.annotated()).collect()
    }

    pub fn to_counts(&self) -> Counts {
        let mut counts = Counts::new();
        for site in self.unannotated() {
            *counts
                .entry((site.file.clone(), site.ordering.clone()))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Sites per ordering (annotated or not) — the inventory.
    pub fn inventory(&self) -> BTreeMap<String, usize> {
        let mut inv = BTreeMap::new();
        for site in &self.sites {
            *inv.entry(site.ordering.clone()).or_insert(0) += 1;
        }
        inv
    }
}

/// Scan one file for `Ordering::*` sites and their annotations.
pub fn scan_source(file: &str, source: &str) -> Vec<AtomicSite> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("Ordering") || toks[i].in_test {
            continue;
        }
        let path = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
        if !path {
            continue;
        }
        let Some(ord) = toks
            .get(i + 3)
            .filter(|t| t.kind == TokKind::Ident && ORDERINGS.contains(&t.text.as_str()))
        else {
            continue;
        };
        let line = ord.line;
        let reason = annotation_reason(&lexed, line, &ord.text);
        sites.push(AtomicSite {
            file: file.to_string(),
            line,
            ordering: ord.text.clone(),
            reason,
        });
    }
    sites
}

/// Find an `audit:ordering(<ord>): <reason>` marker for `line` (same
/// line or the line directly above) whose ordering matches.
fn annotation_reason(lexed: &Lexed, line: usize, ordering: &str) -> Option<String> {
    parse_marker(lexed.comment_on(line), ordering).or_else(|| {
        if line > 1 {
            parse_marker(lexed.comment_on(line - 1), ordering)
        } else {
            None
        }
    })
}

fn parse_marker(comment: &str, ordering: &str) -> Option<String> {
    const MARKER: &str = "audit:ordering(";
    let mut from = 0;
    while let Some(pos) = comment[from..].find(MARKER) {
        let rest = &comment[from + pos + MARKER.len()..];
        if let Some(close) = rest.find(')') {
            let named = rest[..close].trim();
            let reason = rest[close + 1..].strip_prefix(':').map(str::trim);
            if named == ordering {
                if let Some(reason) = reason.filter(|r| !r.is_empty()) {
                    return Some(reason.to_string());
                }
            }
        }
        from += pos + MARKER.len();
    }
    None
}

/// Scan every workspace source file under `root`.
pub fn scan_workspace(root: &Path) -> Result<AtomicsReport, String> {
    let files =
        crate::workspace_rs_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut report = AtomicsReport::default();
    for rel_path in files {
        let rel = rel_path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(root.join(&rel_path))
            .map_err(|e| format!("read {}: {e}", rel_path.display()))?;
        report.sites.extend(scan_source(&rel, &source));
        report.files += 1;
    }
    Ok(report)
}

/// Render baseline counts in the on-disk format:
/// `<path>\t<ordering>\t<count>`, sorted, one per line.
pub fn render_baseline(counts: &Counts) -> String {
    let mut out = String::from(
        "# mendel-audit atomics baseline: unannotated Ordering::* sites.\n\
         # Shrink-only: annotate sites with audit:ordering(<Ord>): <reason>\n\
         # and regenerate with `mendel-audit atomics --write`.\n",
    );
    for ((file, ordering), count) in counts {
        out.push_str(&format!("{file}\t{ordering}\t{count}\n"));
    }
    out
}

/// Parse the on-disk baseline. Unknown orderings, malformed lines, and
/// duplicates are errors — a baseline must be exact.
pub fn parse_baseline(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(file), Some(ordering), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "atomics baseline line {}: expected 3 tab-separated fields",
                idx + 1
            ));
        };
        if !ORDERINGS.contains(&ordering) {
            return Err(format!(
                "atomics baseline line {}: unknown ordering `{ordering}`",
                idx + 1
            ));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("atomics baseline line {}: bad count `{count}`", idx + 1))?;
        if count == 0 {
            return Err(format!(
                "atomics baseline line {}: zero-count entry",
                idx + 1
            ));
        }
        let key = (file.to_string(), ordering.to_string());
        if counts.insert(key, count).is_some() {
            return Err(format!(
                "atomics baseline line {}: duplicate entry",
                idx + 1
            ));
        }
    }
    Ok(counts)
}

/// A `(file, ordering)` whose unannotated count grew past the
/// baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    pub file: String,
    pub ordering: String,
    pub baseline: usize,
    pub current: usize,
}

/// Compare current counts against the baseline: regressions fail the
/// audit, stale entries mean the baseline can shrink.
pub fn diff(current: &Counts, baseline: &Counts) -> (Vec<Regression>, Vec<Regression>) {
    let mut regressions = Vec::new();
    let mut stale = Vec::new();
    let keys: std::collections::BTreeSet<&(String, String)> =
        current.keys().chain(baseline.keys()).collect();
    for key in keys {
        let cur = current.get(key).copied().unwrap_or(0);
        let base = baseline.get(key).copied().unwrap_or(0);
        let entry = Regression {
            file: key.0.clone(),
            ordering: key.1.clone(),
            baseline: base,
            current: cur,
        };
        if cur > base {
            regressions.push(entry);
        } else if cur < base {
            stale.push(entry);
        }
    }
    (regressions, stale)
}

/// Human-readable report.
pub fn render_report(
    report: &AtomicsReport,
    regressions: &[Regression],
    stale: &[Regression],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "atomics: {} files, {} Ordering::* sites ({} annotated, {} unannotated)\n",
        report.files,
        report.sites.len(),
        report.sites.len() - report.unannotated().len(),
        report.unannotated().len(),
    ));
    out.push_str("inventory:");
    for (ordering, count) in report.inventory() {
        out.push_str(&format!(" {ordering}={count}"));
    }
    out.push('\n');
    if regressions.is_empty() {
        out.push_str("no unannotated sites beyond baseline.\n");
    } else {
        out.push_str(&format!("REGRESSIONS ({}):\n", regressions.len()));
        for r in regressions {
            out.push_str(&format!(
                "  {}\t{}\tbaseline {} -> current {}\n",
                r.file, r.ordering, r.baseline, r.current
            ));
        }
        out.push_str("annotate with `audit:ordering(<Ord>): <reason>` or fix the ordering.\n");
        let mut shown = 0;
        for site in report.unannotated() {
            out.push_str(&format!(
                "  unannotated: {}:{} Ordering::{}\n",
                site.file, site.line, site.ordering
            ));
            shown += 1;
            if shown >= 20 {
                break;
            }
        }
    }
    if !stale.is_empty() {
        out.push_str(&format!(
            "stale baseline entries ({}) — regenerate with --write to shrink:\n",
            stale.len()
        ));
        for s in stale {
            out.push_str(&format!(
                "  {}\t{}\tbaseline {} -> current {}\n",
                s.file, s.ordering, s.baseline, s.current
            ));
        }
    }
    out
}

/// JSON document for `bench_results/` trend tracking.
pub fn to_json(report: &AtomicsReport, regressions: &[Regression]) -> Json {
    Json::Obj(vec![
        ("analysis".into(), Json::str("atomics")),
        ("files".into(), Json::count(report.files)),
        ("sites".into(), Json::count(report.sites.len())),
        (
            "unannotated".into(),
            Json::count(report.unannotated().len()),
        ),
        (
            "inventory".into(),
            Json::Obj(
                report
                    .inventory()
                    .into_iter()
                    .map(|(k, v)| (k, Json::count(v)))
                    .collect(),
            ),
        ),
        (
            "sites_detail".into(),
            Json::Arr(
                report
                    .sites
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("file".into(), Json::str(&s.file)),
                            ("line".into(), Json::count(s.line)),
                            ("ordering".into(), Json::str(&s.ordering)),
                            ("annotated".into(), Json::Bool(s.annotated())),
                            (
                                "reason".into(),
                                match &s.reason {
                                    Some(r) => Json::str(r),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("regressions".into(), Json::count(regressions.len())),
        ("clean".into(), Json::Bool(regressions.is_empty())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<AtomicSite> {
        scan_source("crates/x/src/m.rs", src)
    }

    #[test]
    fn finds_memory_orderings_only() {
        let src = "fn f() {\n    x.load(Ordering::Relaxed);\n    match a.cmp(b) { Ordering::Less => {} _ => {} }\n}";
        let got = sites(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ordering, "Relaxed");
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn annotation_same_line_or_above() {
        let src = "fn f() {\n    // audit:ordering(Relaxed): stats only\n    x.load(Ordering::Relaxed);\n    y.store(1, Ordering::Release); // audit:ordering(Release): publishes the slot\n    z.load(Ordering::Acquire);\n}";
        let got = sites(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].reason.as_deref(), Some("stats only"));
        assert_eq!(got[1].reason.as_deref(), Some("publishes the slot"));
        assert!(got[2].reason.is_none());
    }

    #[test]
    fn annotation_ordering_must_match() {
        let src = "fn f() {\n    // audit:ordering(Acquire): wrong ordering named\n    x.load(Ordering::Relaxed);\n}";
        assert!(!sites(src)[0].annotated());
    }

    #[test]
    fn empty_reason_does_not_annotate() {
        let src = "fn f() {\n    // audit:ordering(Relaxed):\n    x.load(Ordering::Relaxed);\n}";
        assert!(!sites(src)[0].annotated());
    }

    #[test]
    fn two_orderings_one_line_one_marker() {
        let src = "fn f() {\n    // audit:ordering(Relaxed): monotonic CAS retry loop\n    c.compare_exchange(a, b, Ordering::Relaxed, Ordering::Relaxed);\n}";
        let got = sites(src);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|s| s.annotated()));
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.load(Ordering::SeqCst); }\n}";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn strings_do_not_match() {
        let src = "fn f() { let s = \"Ordering::Relaxed\"; }";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn baseline_round_trip() {
        let mut counts = Counts::new();
        counts.insert(("crates/a/src/x.rs".into(), "Relaxed".into()), 2);
        counts.insert(("crates/b/src/y.rs".into(), "SeqCst".into()), 1);
        let text = render_baseline(&counts);
        assert_eq!(parse_baseline(&text), Ok(counts));
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(parse_baseline("a\tRelaxed").is_err());
        assert!(parse_baseline("a\tBogus\t1").is_err());
        assert!(parse_baseline("a\tRelaxed\tzero").is_err());
        assert!(parse_baseline("a\tRelaxed\t0").is_err());
        assert!(parse_baseline("a\tRelaxed\t1\na\tRelaxed\t2").is_err());
    }

    #[test]
    fn diff_finds_regressions_and_stale() {
        let mut base = Counts::new();
        base.insert(("a".into(), "Relaxed".into()), 2);
        base.insert(("b".into(), "SeqCst".into()), 1);
        let mut cur = Counts::new();
        cur.insert(("a".into(), "Relaxed".into()), 3);
        let (reg, stale) = diff(&cur, &base);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].current, 3);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "b");
    }
}
