//! Source sanitizer: blanks comments and literal contents so the lint
//! rules only ever match real code tokens.
//!
//! The scanner is a character-level state machine covering the lexical
//! shapes that matter for false positives: line comments, nested block
//! comments, string literals (including multi-line, byte, and raw
//! strings with arbitrary `#` fences), character literals, and
//! lifetimes. Blanked characters become spaces so line and column
//! numbers survive sanitization.

/// One source line, split into the code that remains after blanking and
/// the comment text that was removed from it.
#[derive(Debug, Default, Clone)]
pub struct SanitizedLine {
    /// The line with comments and literal contents replaced by spaces.
    pub code: String,
    /// Concatenated text of every comment that touched this line.
    pub comment: String,
}

enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    CharLit,
}

/// Split `source` into sanitized lines.
pub fn sanitize(source: &str) -> Vec<SanitizedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = SanitizedLine::default();
    let mut mode = Mode::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        cur.code.push_str("  ");
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        cur.code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        cur.code.push('"');
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string prefix: r", r#", b", br#"…
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = (c == 'r' || chars.get(i + 1) == Some(&'r') || hashes == 0)
                            && chars.get(j) == Some(&'"');
                        // Reject plain identifiers like `radius` and make
                        // sure `b` alone is only a prefix before a quote.
                        let prev_is_ident =
                            i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                        if is_raw
                            && !prev_is_ident
                            && (c == 'r' || j > i + 1 || hashes > 0 || chars.get(j) == Some(&'"'))
                        {
                            for k in i..=j {
                                cur.code.push(if chars[k] == '"' { '"' } else { chars[k] });
                            }
                            mode = if c == 'r' || chars.get(i + 1) == Some(&'r') {
                                Mode::RawStr(hashes)
                            } else {
                                Mode::Str
                            };
                            i = j + 1;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                        let is_lifetime = matches!(
                            chars.get(i + 1),
                            Some(ch) if (ch.is_alphabetic() || *ch == '_')
                        ) && chars.get(i + 2) != Some(&'\'');
                        if is_lifetime {
                            cur.code.push('\'');
                            i += 1;
                        } else {
                            mode = Mode::CharLit;
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                cur.code.push(' ');
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    cur.code.push_str("  ");
                    i += 2;
                } else {
                    cur.comment.push(c);
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Code;
                    cur.code.push('"');
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let closes = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        mode = Mode::Code;
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        i += 1 + hashes;
                    } else {
                        cur.code.push(' ');
                        i += 1;
                    }
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    cur.code.push('\'');
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> Vec<String> {
        sanitize(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked() {
        let out = code(r#"let x = "panic!(.unwrap())";"#);
        assert!(!out[0].contains("panic!"));
        assert!(!out[0].contains(".unwrap()"));
        assert!(out[0].contains("let x ="));
    }

    #[test]
    fn line_comments_are_blanked_and_captured() {
        let out = sanitize("let a = 1; // call .unwrap() here\nlet b = 2;");
        assert!(!out[0].code.contains("unwrap"));
        assert!(out[0].comment.contains(".unwrap()"));
        assert_eq!(out[1].code, "let b = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let out = code("a /* x /* y */ z */ b");
        assert_eq!(out[0].trim_end(), "a                   b");
    }

    #[test]
    fn multiline_string_spans_lines() {
        let out = code("let s = \"first\nsecond.unwrap()\";\nlet t = 3;");
        assert!(!out[1].contains("unwrap"));
        assert_eq!(out[2], "let t = 3;");
    }

    #[test]
    fn raw_strings_with_fences() {
        let out = code("let s = r##\"has \"quote\" and panic! inside\"##; call()");
        assert!(!out[0].contains("panic!"));
        assert!(out[0].contains("call()"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let out = code(r#"let b = b"todo!"; let br = br"panic!"; after()"#);
        assert!(!out[0].contains("todo!"));
        assert!(!out[0].contains("panic!"));
        assert!(out[0].contains("after()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = code("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(out[0].contains("&'a str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let out = code("let q = '\"'; let n = '\\n'; done()");
        assert!(out[0].contains("done()"));
        assert!(!out[0].contains('\\'));
    }

    #[test]
    fn identifiers_starting_with_r_or_b_survive() {
        let out = code("let radius = bounds.len();");
        assert_eq!(out[0], "let radius = bounds.len();");
    }
}
