//! `mendel-audit`: a from-scratch, zero-dependency source auditor for
//! the Mendel workspace.
//!
//! Three halves (the third grew in the concurrency-audit PR):
//!
//! 1. **Lint pass** (this crate): walks `crates/*/src/**/*.rs`, runs a
//!    line-level scanner over sanitized source, and diffs the findings
//!    against the checked-in `audit-baseline.txt`. CI fails only on NEW
//!    violations, so the pre-existing backlog can burn down gradually
//!    without blocking unrelated work.
//! 2. **Structural invariant checkers** (in the data-structure crates,
//!    behind the `strict-invariants` feature): deep `check_invariants`
//!    methods on the vp-tree, DHT topology, and block store, asserted at
//!    mutation sites and exercised by the property suites.
//! 3. **Concurrency analyses** (token-level, on the [`lexer`] stream):
//!    [`locks`] builds the held-while-acquiring lock graph and fails on
//!    lock-order cycles and guard-across-io smells; [`atomics`] forces
//!    every `Ordering::*` site to carry an `audit:ordering` review
//!    annotation, with its own shrink-only `atomics-baseline.txt`.
//!
//! Run `cargo run -p mendel-audit -- <lint|locks|atomics>` from anywhere
//! in the workspace; see `DESIGN.md` § "Concurrency static analysis".

pub mod atomics;
pub mod baseline;
pub mod lexer;
pub mod lint;
pub mod locks;
pub mod report;
pub mod sanitize;

pub use baseline::{
    diff, parse as parse_baseline, render as render_baseline, to_counts, Counts, Diff,
};
pub use lint::{scan_source, Rule, Violation};
pub use report::Json;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect every `.rs` file under `crates/*/src`, sorted, as paths
/// relative to `root` (`/`-separated regardless of platform).
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    for f in &mut files {
        if let Ok(rel) = f.strip_prefix(root) {
            *f = rel.to_path_buf();
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the whole workspace under `root`; violations carry
/// workspace-relative `/`-separated paths.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for rel in workspace_rs_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        violations.extend(scan_source(&rel_str, &source));
    }
    Ok(violations)
}

/// Render a human-readable report for a baseline diff. Returns `None`
/// when there is nothing to say (no regressions, no stale entries).
pub fn render_report(d: &Diff) -> Option<String> {
    if d.regressions.is_empty() && d.stale.is_empty() {
        return None;
    }
    let mut out = String::new();
    if !d.regressions.is_empty() {
        let total_over: usize = d
            .regressions
            .iter()
            .map(|r| r.violations.len() - r.allowed)
            .sum();
        let _ = writeln!(
            out,
            "error: {} new violation(s) beyond the baseline\n",
            total_over
        );
        for r in &d.regressions {
            let _ = writeln!(
                out,
                "{} / {}: found {}, baseline allows {} — {}",
                r.file,
                r.rule,
                r.violations.len(),
                r.allowed,
                r.rule.description()
            );
            for v in &r.violations {
                let _ = writeln!(out, "  {}:{}: {}", v.file, v.line, v.excerpt);
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "Fix the new violation(s), or — only for pre-existing debt being\n\
             catalogued — regenerate: cargo run -p mendel-audit -- baseline --write"
        );
    }
    if !d.stale.is_empty() {
        let _ = writeln!(
            out,
            "\nnote: baseline is stale (violations were fixed — tighten it with\n\
             `cargo run -p mendel-audit -- baseline --write`):"
        );
        for (file, rule, allowed, found) in &d.stale {
            let _ = writeln!(out, "  {file} / {rule}: baseline {allowed}, found {found}");
        }
    }
    Some(out)
}

/// Seed a one-file workspace containing known violations into a fresh
/// temp directory, scan it, and verify every expected rule fires with a
/// usable report. Returns the report text on success.
///
/// This is the lint's own end-to-end self-test: it proves the gate
/// actually fails (with file/line context) when a violation is
/// introduced, independent of the real tree being clean.
pub fn self_test() -> Result<String, String> {
    let root = std::env::temp_dir().join(format!("mendel-audit-selftest-{}", std::process::id()));
    let result = self_test_in(&root);
    let _ = fs::remove_dir_all(&root);
    result
}

fn self_test_in(root: &Path) -> Result<String, String> {
    let src_dir = root.join("crates/seeded/src");
    fs::create_dir_all(&src_dir).map_err(|e| format!("self-test setup: {e}"))?;
    let seeded = "\
use std::sync::Mutex;

#[allow(dead_code)]
fn seeded(o: Option<u8>) -> u8 {
    println!(\"side effect\");
    let v = o.unwrap();
    if v == 0 {
        panic!(\"boom\");
    }
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        None::<u8>.unwrap();
    }
}
";
    fs::write(src_dir.join("lib.rs"), seeded).map_err(|e| format!("self-test setup: {e}"))?;

    let violations = scan_workspace(root).map_err(|e| format!("self-test scan: {e}"))?;
    let expected = [
        Rule::StdSyncLock,
        Rule::AllowWithoutReason,
        Rule::Println,
        Rule::Unwrap,
        Rule::Panic,
    ];
    for rule in expected {
        if !violations.iter().any(|v| v.rule == rule) {
            return Err(format!(
                "self-test: seeded `{rule}` violation was not detected"
            ));
        }
    }
    if violations.iter().any(|v| v.line > 10) {
        return Err("self-test: a violation leaked out of the non-test region".into());
    }

    let d = diff(&violations, &Counts::new());
    let report = render_report(&d).ok_or("self-test: no report for seeded violations")?;
    if !report.contains("crates/seeded/src/lib.rs:6") {
        return Err(format!(
            "self-test: report lacks file:line context for the seeded unwrap:\n{report}"
        ));
    }

    self_test_concurrency(root)?;
    Ok(report)
}

/// Seed a deadlock pair, an unannotated atomic site, and an unwaived
/// guard-across-io call, then verify the concurrency analyses catch
/// all three — the end-to-end proof that the `locks` and `atomics`
/// gates actually fail when those hazards are introduced.
fn self_test_concurrency(root: &Path) -> Result<(), String> {
    let src_dir = root.join("crates/deadlocked/src");
    fs::create_dir_all(&src_dir).map_err(|e| format!("self-test setup: {e}"))?;
    let seeded = "\
struct S;

impl S {
    fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    fn backward(&self) {
        let b = self.beta.lock();
        self.alpha.lock().len();
    }

    fn publish(&self, tx: &Sender) {
        self.flag.store(1, Ordering::Release);
        let g = self.beta.lock();
        tx.send(1);
    }
}
";
    fs::write(src_dir.join("lib.rs"), seeded).map_err(|e| format!("self-test setup: {e}"))?;

    let lock_report = locks::analyze_workspace(root)?;
    let seeded_cycle = lock_report.cycles.iter().any(|c| {
        c.locks.contains(&"deadlocked/lib::alpha".to_string())
            && c.locks.contains(&"deadlocked/lib::beta".to_string())
    });
    if !seeded_cycle {
        return Err(format!(
            "self-test: seeded alpha/beta lock-order cycle was not detected:\n{}",
            locks::render_report(&lock_report)
        ));
    }
    let seeded_smell = lock_report
        .unwaived_smells()
        .iter()
        .any(|s| s.callee == "send" && s.file.contains("deadlocked"));
    if !seeded_smell {
        return Err("self-test: seeded guard-across-io send was not detected".into());
    }

    let atomics_report = atomics::scan_workspace(root)?;
    let seeded_site = atomics_report
        .unannotated()
        .iter()
        .any(|s| s.ordering == "Release" && s.file.contains("deadlocked"));
    if !seeded_site {
        return Err("self-test: seeded unannotated Ordering::Release was not detected".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        let report = self_test().expect("self-test succeeds");
        assert!(report.contains("new violation(s) beyond the baseline"));
    }

    #[test]
    fn locks_on_real_tree_has_no_cycles_or_unwaived_smells() {
        // Same gate as `mendel-audit locks` in CI: the workspace lock
        // graph must be acyclic and every guard-across-io site waived
        // with a reason.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = locks::analyze_workspace(&root).expect("analyze workspace");
        assert!(
            report.is_clean(),
            "lock-order gate failed:\n{}",
            locks::render_report(&report)
        );
        // The analysis is actually looking at something: the workspace
        // has parking_lot locks in net/obs/core.
        assert!(
            report.acquisitions.len() >= 10,
            "suspiciously few acquisitions"
        );
    }

    #[test]
    fn atomics_on_real_tree_matches_baseline() {
        // Same gate as `mendel-audit atomics` in CI: every Ordering::*
        // site annotated, or in the shrink-only atomics baseline.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = atomics::scan_workspace(&root).expect("scan workspace");
        let text = std::fs::read_to_string(root.join("atomics-baseline.txt"))
            .expect("read atomics baseline");
        let baseline = atomics::parse_baseline(&text).expect("parse atomics baseline");
        let (regressions, _stale) = atomics::diff(&report.to_counts(), &baseline);
        assert!(
            regressions.is_empty(),
            "atomics gate failed:\n{}",
            atomics::render_report(&report, &regressions, &[])
        );
        // The inventory covers the workspace's real atomic sites.
        assert!(report.sites.len() >= 30, "suspiciously few Ordering sites");
    }

    #[test]
    fn scan_workspace_on_real_tree_is_baseline_clean() {
        // The audit must agree with its own checked-in baseline — this
        // is the same check `mendel-audit lint` performs in CI.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = scan_workspace(&root).expect("scan workspace");
        let baseline_text =
            std::fs::read_to_string(root.join("audit-baseline.txt")).expect("read baseline");
        let baseline = parse_baseline(&baseline_text).expect("parse baseline");
        let d = diff(&violations, &baseline);
        assert!(
            d.regressions.is_empty(),
            "{}",
            render_report(&d).unwrap_or_default()
        );
    }
}
