//! CLI for the workspace source auditor.
//!
//! ```text
//! mendel-audit lint     [--root DIR] [--baseline FILE]   # gate: fail on NEW violations
//! mendel-audit baseline [--root DIR] [--baseline FILE] [--write]
//! mendel-audit self-test
//! ```

// This binary's purpose is terminal output: reports go to stderr,
// rendered baselines to stdout (so they can be redirected).
#![allow(clippy::print_stdout)]

use mendel_audit::{
    diff, parse_baseline, render_baseline, render_report, scan_workspace, self_test, to_counts,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: mendel-audit <lint|baseline|self-test> [--root DIR] [--baseline FILE] [--write]";

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    write: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    // Default root: the workspace this binary was built from, so
    // `cargo run -p mendel-audit -- lint` works from any directory.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    let mut baseline = None;
    let mut write = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--write" => write = true,
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("audit-baseline.txt"));
    Ok(Options {
        root,
        baseline,
        write,
    })
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    match command.as_str() {
        "lint" => {
            let opts = parse_args(rest)?;
            let violations = scan_workspace(&opts.root)
                .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?;
            let baseline_text = match std::fs::read_to_string(&opts.baseline) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(format!("reading {}: {e}", opts.baseline.display())),
            };
            let baseline = parse_baseline(&baseline_text)?;
            let d = diff(&violations, &baseline);
            let gate_fails = !d.regressions.is_empty();
            match render_report(&d) {
                Some(report) => eprintln!("{report}"),
                None => eprintln!(
                    "audit clean: {} file-level allowance(s) in baseline, no new violations",
                    baseline.len()
                ),
            }
            Ok(if gate_fails {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "baseline" => {
            let opts = parse_args(rest)?;
            let violations = scan_workspace(&opts.root)
                .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?;
            let rendered = render_baseline(&to_counts(&violations));
            if opts.write {
                std::fs::write(&opts.baseline, &rendered)
                    .map_err(|e| format!("writing {}: {e}", opts.baseline.display()))?;
                eprintln!(
                    "wrote {} ({} violations across {} groups)",
                    opts.baseline.display(),
                    violations.len(),
                    to_counts(&violations).len()
                );
            } else {
                print!("{rendered}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "self-test" => {
            let report = self_test()?;
            eprintln!("self-test ok: seeded violations detected and reported:\n");
            eprintln!("{report}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mendel-audit: {message}");
            ExitCode::from(2)
        }
    }
}
