//! CLI for the workspace source auditor.
//!
//! ```text
//! mendel-audit lint     [--root DIR] [--baseline FILE] [--json FILE]  # gate: fail on NEW violations
//! mendel-audit baseline [--root DIR] [--baseline FILE] [--write]
//! mendel-audit locks    [--root DIR] [--dot] [--json FILE]            # gate: fail on cycles / unwaived smells
//! mendel-audit atomics  [--root DIR] [--baseline FILE] [--write] [--json FILE]
//! mendel-audit self-test
//! ```

// This binary's purpose is terminal output: reports go to stderr,
// rendered baselines and DOT graphs to stdout (so they can be
// redirected).
#![allow(clippy::print_stdout)]

use mendel_audit::{
    atomics, diff, locks, parse_baseline, render_baseline, render_report, scan_workspace,
    self_test, to_counts, Json,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mendel-audit <lint|baseline|locks|atomics|self-test> \
     [--root DIR] [--baseline FILE] [--write] [--dot] [--json FILE]";

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    write: bool,
    dot: bool,
    json: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    // Default root: the workspace this binary was built from, so
    // `cargo run -p mendel-audit -- lint` works from any directory.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    let mut baseline = None;
    let mut write = false;
    let mut dot = false;
    let mut json = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--write" => write = true,
            "--dot" => dot = true,
            "--json" => {
                json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?));
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Options {
        root,
        baseline,
        write,
        dot,
        json,
    })
}

fn write_json(path: &PathBuf, doc: &Json) -> Result<(), String> {
    std::fs::write(path, doc.render()).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn read_optional(path: &PathBuf) -> Result<String, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(String::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

fn exit(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    match command.as_str() {
        "lint" => {
            let opts = parse_args(rest)?;
            let baseline_path = opts
                .baseline
                .unwrap_or_else(|| opts.root.join("audit-baseline.txt"));
            let violations = scan_workspace(&opts.root)
                .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?;
            let baseline = parse_baseline(&read_optional(&baseline_path)?)?;
            let d = diff(&violations, &baseline);
            let gate_fails = !d.regressions.is_empty();
            if let Some(json_path) = &opts.json {
                let doc = Json::Obj(vec![
                    ("analysis".into(), Json::str("lint")),
                    ("violations".into(), Json::count(violations.len())),
                    ("baseline_groups".into(), Json::count(baseline.len())),
                    ("regressions".into(), Json::count(d.regressions.len())),
                    ("stale".into(), Json::count(d.stale.len())),
                    ("clean".into(), Json::Bool(!gate_fails)),
                ]);
                write_json(json_path, &doc)?;
            }
            match render_report(&d) {
                Some(report) => eprintln!("{report}"),
                None => eprintln!(
                    "audit clean: {} file-level allowance(s) in baseline, no new violations",
                    baseline.len()
                ),
            }
            Ok(exit(!gate_fails))
        }
        "baseline" => {
            let opts = parse_args(rest)?;
            let baseline_path = opts
                .baseline
                .unwrap_or_else(|| opts.root.join("audit-baseline.txt"));
            let violations = scan_workspace(&opts.root)
                .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?;
            let rendered = render_baseline(&to_counts(&violations));
            if opts.write {
                std::fs::write(&baseline_path, &rendered)
                    .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
                eprintln!(
                    "wrote {} ({} violations across {} groups)",
                    baseline_path.display(),
                    violations.len(),
                    to_counts(&violations).len()
                );
            } else {
                print!("{rendered}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "locks" => {
            let opts = parse_args(rest)?;
            let report = locks::analyze_workspace(&opts.root)?;
            if let Some(json_path) = &opts.json {
                write_json(json_path, &locks::to_json(&report))?;
            }
            if opts.dot {
                print!("{}", locks::render_dot(&report));
            }
            eprintln!("{}", locks::render_report(&report));
            Ok(exit(report.is_clean()))
        }
        "atomics" => {
            let opts = parse_args(rest)?;
            let baseline_path = opts
                .baseline
                .unwrap_or_else(|| opts.root.join("atomics-baseline.txt"));
            let report = atomics::scan_workspace(&opts.root)?;
            let current = report.to_counts();
            if opts.write {
                let rendered = atomics::render_baseline(&current);
                std::fs::write(&baseline_path, &rendered)
                    .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
                eprintln!(
                    "wrote {} ({} unannotated sites across {} groups)",
                    baseline_path.display(),
                    report.unannotated().len(),
                    current.len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            let baseline = atomics::parse_baseline(&read_optional(&baseline_path)?)?;
            let (regressions, stale) = atomics::diff(&current, &baseline);
            if let Some(json_path) = &opts.json {
                write_json(json_path, &atomics::to_json(&report, &regressions))?;
            }
            eprintln!("{}", atomics::render_report(&report, &regressions, &stale));
            Ok(exit(regressions.is_empty()))
        }
        "self-test" => {
            let report = self_test()?;
            eprintln!("self-test ok: seeded violations detected and reported:\n");
            eprintln!("{report}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mendel-audit: {message}");
            ExitCode::from(2)
        }
    }
}
