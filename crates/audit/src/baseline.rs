//! The violation baseline: a checked-in snapshot of pre-existing
//! violations, so the lint gate fails only on *new* ones while the
//! backlog burns down over time.
//!
//! Entries are keyed `(file, rule) → count` rather than by line number,
//! so unrelated edits that shift lines do not churn the baseline.

use crate::lint::{Rule, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Violation counts keyed by `(workspace-relative file, rule)`.
pub type Counts = BTreeMap<(String, Rule), usize>;

/// Aggregate a violation list into baseline counts.
pub fn to_counts(violations: &[Violation]) -> Counts {
    let mut counts = Counts::new();
    for v in violations {
        *counts.entry((v.file.clone(), v.rule)).or_insert(0) += 1;
    }
    counts
}

/// Serialize counts in the baseline file format.
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# mendel-audit baseline: pre-existing violations tolerated by `mendel-audit lint`.\n\
         # One line per (file, rule): <path>\\t<rule>\\t<count>. Shrink it, never grow it.\n\
         # Regenerate with: cargo run -p mendel-audit -- baseline --write\n",
    );
    for ((file, rule), count) in counts {
        let _ = writeln!(out, "{file}\t{rule}\t{count}");
    }
    out
}

/// Parse the baseline file format. Unknown rules or malformed lines are
/// errors: a typo in the baseline must not silently admit violations.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let entry = (|| {
            let file = parts.next()?;
            let rule = Rule::from_name(parts.next()?)?;
            let count: usize = parts.next()?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            Some(((file.to_string(), rule), count))
        })();
        match entry {
            Some((key, count)) => {
                if counts.insert(key.clone(), count).is_some() {
                    return Err(format!(
                        "baseline line {}: duplicate entry for {} / {}",
                        no + 1,
                        key.0,
                        key.1
                    ));
                }
            }
            None => {
                return Err(format!(
                    "baseline line {}: expected `<path>\\t<rule>\\t<count>`, got `{line}`",
                    no + 1
                ))
            }
        }
    }
    Ok(counts)
}

/// Result of diffing a scan against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Violations in groups that exceed their baseline allowance. Each
    /// entry carries the whole group (`violations`) plus how many of
    /// them are beyond the allowance.
    pub regressions: Vec<Regression>,
    /// Baseline entries whose allowance exceeds what the scan found;
    /// the baseline can be tightened.
    pub stale: Vec<(String, Rule, usize, usize)>,
}

/// One `(file, rule)` group over its allowance.
#[derive(Debug)]
pub struct Regression {
    /// The file the group belongs to.
    pub file: String,
    /// The rule the group violates.
    pub rule: Rule,
    /// Violations allowed by the baseline for this group.
    pub allowed: usize,
    /// Every current violation in the group, in line order.
    pub violations: Vec<Violation>,
}

/// Compare current violations against baseline allowances.
pub fn diff(current: &[Violation], baseline: &Counts) -> Diff {
    let mut groups: BTreeMap<(String, Rule), Vec<Violation>> = BTreeMap::new();
    for v in current {
        groups
            .entry((v.file.clone(), v.rule))
            .or_default()
            .push(v.clone());
    }
    let mut out = Diff::default();
    for ((file, rule), violations) in &groups {
        let allowed = baseline.get(&(file.clone(), *rule)).copied().unwrap_or(0);
        if violations.len() > allowed {
            out.regressions.push(Regression {
                file: file.clone(),
                rule: *rule,
                allowed,
                violations: violations.clone(),
            });
        }
    }
    for ((file, rule), &allowed) in baseline {
        let found = groups.get(&(file.clone(), *rule)).map_or(0, Vec::len);
        if found < allowed {
            out.stale.push((file.clone(), *rule, allowed, found));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(file: &str, line: usize, rule: Rule) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            excerpt: String::from("x.unwrap()"),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let violations = vec![
            violation("crates/a/src/lib.rs", 3, Rule::Unwrap),
            violation("crates/a/src/lib.rs", 9, Rule::Unwrap),
            violation("crates/b/src/lib.rs", 1, Rule::Println),
        ];
        let counts = to_counts(&violations);
        let parsed = parse(&render(&counts)).expect("roundtrip parses");
        assert_eq!(parsed, counts);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse("crates/a/src/lib.rs\tunwrap\tnot-a-number").is_err());
        assert!(parse("crates/a/src/lib.rs\tno-such-rule\t3").is_err());
        assert!(parse("just-one-field").is_err());
        assert!(parse("crates/a/src/lib.rs\tunwrap\t1\textra").is_err());
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        let text = "crates/a/src/lib.rs\tunwrap\t1\ncrates/a/src/lib.rs\tunwrap\t2\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn new_violation_in_clean_file_is_a_regression() {
        let current = vec![violation("crates/a/src/lib.rs", 5, Rule::Panic)];
        let d = diff(&current, &Counts::new());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].allowed, 0);
        assert!(d.stale.is_empty());
    }

    #[test]
    fn violations_within_allowance_pass() {
        let current = vec![
            violation("crates/a/src/lib.rs", 5, Rule::Unwrap),
            violation("crates/a/src/lib.rs", 8, Rule::Unwrap),
        ];
        let mut baseline = Counts::new();
        baseline.insert(("crates/a/src/lib.rs".into(), Rule::Unwrap), 2);
        let d = diff(&current, &baseline);
        assert!(d.regressions.is_empty());
        assert!(d.stale.is_empty());
    }

    #[test]
    fn exceeding_allowance_reports_the_group() {
        let current = vec![
            violation("crates/a/src/lib.rs", 5, Rule::Unwrap),
            violation("crates/a/src/lib.rs", 8, Rule::Unwrap),
            violation("crates/a/src/lib.rs", 13, Rule::Unwrap),
        ];
        let mut baseline = Counts::new();
        baseline.insert(("crates/a/src/lib.rs".into(), Rule::Unwrap), 2);
        let d = diff(&current, &baseline);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].violations.len(), 3);
        assert_eq!(d.regressions[0].allowed, 2);
    }

    #[test]
    fn fixed_violations_surface_as_stale() {
        let mut baseline = Counts::new();
        baseline.insert(("crates/a/src/lib.rs".into(), Rule::Unwrap), 4);
        let d = diff(
            &[violation("crates/a/src/lib.rs", 5, Rule::Unwrap)],
            &baseline,
        );
        assert!(d.regressions.is_empty());
        assert_eq!(
            d.stale,
            vec![("crates/a/src/lib.rs".into(), Rule::Unwrap, 4, 1)]
        );
    }
}
