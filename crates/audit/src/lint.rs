//! The lint rules and the per-file scanner.
//!
//! Rules are matched against sanitized code (comments and literal
//! contents blanked — see [`crate::sanitize`]), with `#[cfg(test)]`
//! modules and `#[test]` functions exempted by a brace-depth region
//! tracker. Binary targets (`src/bin/**`, `main.rs`) are library code
//! for the panic-family rules but are allowed to print.
//!
//! Deliberate exceptions are suppressed inline with an
//! `audit:allow(<rule>): <reason>` marker in a comment on the same line
//! or the line directly above; the reason is mandatory. This keeps the
//! checked-in baseline shrink-only: justified sites never enter it.

use crate::sanitize::{sanitize, SanitizedLine};
use std::fmt;

/// The invariants the audit enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` in non-test library code.
    Unwrap,
    /// `.expect(..)` in non-test library code.
    Expect,
    /// `panic!` in non-test library code.
    Panic,
    /// `todo!` anywhere outside tests.
    Todo,
    /// `unimplemented!` anywhere outside tests.
    Unimplemented,
    /// `std::sync::Mutex` / `std::sync::RwLock`; the workspace uses
    /// `parking_lot` locks exclusively.
    StdSyncLock,
    /// `println!` / `eprintln!` in library (non-binary) code.
    Println,
    /// `#[allow(..)]` with no justification comment beside it.
    AllowWithoutReason,
    /// `Instant::now()` in an instrumented crate (vptree, net, dht,
    /// core); wall-clock reads there must go through the metric
    /// registry's injectable clock so tests can use a virtual one
    /// (DESIGN.md §11).
    InstantNow,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::Unwrap,
        Rule::Expect,
        Rule::Panic,
        Rule::Todo,
        Rule::Unimplemented,
        Rule::StdSyncLock,
        Rule::Println,
        Rule::AllowWithoutReason,
        Rule::InstantNow,
    ];

    /// Stable name used in the baseline file and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Expect => "expect",
            Rule::Panic => "panic",
            Rule::Todo => "todo",
            Rule::Unimplemented => "unimplemented",
            Rule::StdSyncLock => "std-sync-lock",
            Rule::Println => "println",
            Rule::AllowWithoutReason => "allow-without-reason",
            Rule::InstantNow => "instant-now",
        }
    }

    /// Parse a [`Rule::name`] back into the rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for reports.
    pub fn description(self) -> &'static str {
        match self {
            Rule::Unwrap => "`.unwrap()` forbidden in non-test library code; return a Result",
            Rule::Expect => "`.expect(..)` forbidden in non-test library code; return a Result",
            Rule::Panic => "`panic!` forbidden in non-test library code",
            Rule::Todo => "`todo!` must not be committed",
            Rule::Unimplemented => "`unimplemented!` must not be committed",
            Rule::StdSyncLock => "use parking_lot locks, not std::sync::{Mutex,RwLock}",
            Rule::Println => "no direct stdout/stderr printing from library crates",
            Rule::AllowWithoutReason => "#[allow(..)] needs a justification comment",
            Rule::InstantNow => {
                "instrumented crates read time via Registry::clock(), not Instant::now()"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file,
            self.line,
            self.rule,
            self.rule.description(),
            self.excerpt
        )
    }
}

/// Count occurrences of `needle` in `hay` that are not immediately
/// preceded by an identifier character (so `println!` does not also
/// match inside `eprintln!`).
fn count_token(hay: &str, needle: &str) -> usize {
    let bytes = hay.as_bytes();
    let needs_boundary = needle
        .as_bytes()
        .first()
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    let mut count = 0;
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let bounded = !needs_boundary || at == 0 || {
            let prev = bytes[at - 1];
            !(prev.is_ascii_alphanumeric() || prev == b'_')
        };
        if bounded {
            count += 1;
        }
        from = at + needle.len();
    }
    count
}

fn has_std_sync_lock(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("std::sync::") {
        let rest = &code[from + pos + "std::sync::".len()..];
        if rest.starts_with("Mutex") || rest.starts_with("RwLock") {
            return true;
        }
        // `use std::sync::{Mutex, ..}` — grouped import on one line.
        if rest.starts_with('{') {
            let group = rest[1..].split('}').next().unwrap_or("");
            if group
                .split(',')
                .any(|item| matches!(item.trim(), "Mutex" | "RwLock"))
            {
                return true;
            }
        }
        from += pos + "std::sync::".len();
    }
    false
}

/// Scan one file's source. `file` is the workspace-relative path used in
/// reports and the baseline.
/// Crates whose wall-clock reads must go through the injectable
/// registry clock ([`Rule::InstantNow`]). `mendel-obs` itself is exempt:
/// it *implements* the clock.
const INSTRUMENTED_CRATES: [&str; 4] = [
    "crates/vptree/",
    "crates/net/",
    "crates/dht/",
    "crates/core/",
];

pub fn scan_source(file: &str, source: &str) -> Vec<Violation> {
    let is_bin = file.contains("/bin/") || file.ends_with("/main.rs");
    let instrumented = INSTRUMENTED_CRATES.iter().any(|p| file.starts_with(p));
    let lines = sanitize(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();

    // Brace-depth tracker for `#[cfg(test)]` / `#[test]` regions.
    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_stack: Vec<i64> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let in_test = !test_stack.is_empty() || pending_test;
        if code.contains("#[cfg(test)")
            || code.contains("#[test]")
            || code.contains("#[cfg(all(test")
        {
            pending_test = true;
        }

        if !in_test && !pending_test {
            let mut hits: Vec<(Rule, usize)> = vec![
                (Rule::Unwrap, count_token(code, ".unwrap()")),
                (Rule::Expect, count_token(code, ".expect(")),
                (Rule::Panic, count_token(code, "panic!")),
                (Rule::Todo, count_token(code, "todo!")),
                (Rule::Unimplemented, count_token(code, "unimplemented!")),
                (Rule::StdSyncLock, usize::from(has_std_sync_lock(code))),
            ];
            if !is_bin {
                hits.push((
                    Rule::Println,
                    count_token(code, "println!") + count_token(code, "eprintln!"),
                ));
            }
            if instrumented && !is_bin {
                hits.push((Rule::InstantNow, count_token(code, "Instant::now()")));
            }
            if (code.contains("#[allow(") || code.contains("#![allow("))
                && !allow_is_justified(&lines, idx)
            {
                hits.push((Rule::AllowWithoutReason, 1));
            }
            if hits.iter().any(|&(_, count)| count > 0) {
                let suppressed = suppressed_rules(&lines, idx);
                hits.retain(|(rule, _)| !suppressed.contains(rule));
            }
            for (rule, count) in hits {
                for _ in 0..count {
                    violations.push(Violation {
                        file: file.to_string(),
                        line: idx + 1,
                        rule,
                        excerpt: excerpt(raw_lines.get(idx).copied().unwrap_or("")),
                    });
                }
            }
        }

        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_test {
                        test_stack.push(depth);
                        pending_test = false;
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
    }
    violations
}

/// Rules suppressed at line `idx` by an `audit:allow(<rule>): <reason>`
/// marker in a comment on the same line or the line directly above. A
/// marker with an unknown rule name or an empty reason suppresses
/// nothing.
fn suppressed_rules(lines: &[SanitizedLine], idx: usize) -> Vec<Rule> {
    const MARKER: &str = "audit:allow(";
    let mut rules = Vec::new();
    let mut scan = |comment: &str| {
        let mut from = 0;
        while let Some(pos) = comment[from..].find(MARKER) {
            let rest = &comment[from + pos + MARKER.len()..];
            if let Some(close) = rest.find(')') {
                let justified = rest[close + 1..]
                    .strip_prefix(':')
                    .is_some_and(|reason| !reason.trim().is_empty());
                if justified {
                    if let Some(rule) = Rule::from_name(rest[..close].trim()) {
                        rules.push(rule);
                    }
                }
            }
            from += pos + MARKER.len();
        }
    };
    scan(&lines[idx].comment);
    if idx > 0 {
        scan(&lines[idx - 1].comment);
    }
    rules
}

/// An `#[allow]` is justified when a comment sits on the same line or on
/// the line directly above it.
fn allow_is_justified(lines: &[SanitizedLine], idx: usize) -> bool {
    if !lines[idx].comment.trim().is_empty() {
        return true;
    }
    idx > 0 && !lines[idx - 1].comment.trim().is_empty()
}

fn excerpt(raw: &str) -> String {
    let trimmed = raw.trim();
    if trimmed.chars().count() > 120 {
        let cut: String = trimmed.chars().take(117).collect();
        format!("{cut}...")
    } else {
        trimmed.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<Rule> {
        scan_source("crates/x/src/lib.rs", src)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn unwrap_and_expect_fire_in_lib_code() {
        let got = rules_of("fn f(o: Option<u8>) -> u8 { o.unwrap() + o.expect(\"set\") }");
        assert_eq!(got, vec![Rule::Unwrap, Rule::Expect]);
    }

    #[test]
    fn panic_family_fires() {
        let got = rules_of(
            "fn f() { panic!(\"boom\") }\nfn g() { todo!() }\nfn h() { unimplemented!() }",
        );
        assert_eq!(got, vec![Rule::Panic, Rule::Todo, Rule::Unimplemented]);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() -> u8 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); panic!(\"fine\"); }\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn test_attr_fn_is_exempt_but_code_after_is_not() {
        let src = "#[test]\nfn t() { None::<u8>.unwrap(); }\nfn lib(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let got = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
        assert_eq!(got[0].rule, Rule::Unwrap);
    }

    #[test]
    fn std_sync_lock_detected_in_both_forms() {
        assert_eq!(rules_of("use std::sync::Mutex;\n"), vec![Rule::StdSyncLock]);
        assert_eq!(
            rules_of("use std::sync::{Arc, Mutex};\n"),
            vec![Rule::StdSyncLock]
        );
        assert!(rules_of("use std::sync::{Arc, atomic::AtomicUsize};\n").is_empty());
        assert_eq!(
            rules_of("type L = std::sync::RwLock<u8>;\n"),
            vec![Rule::StdSyncLock]
        );
    }

    #[test]
    fn println_only_outside_bins() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }";
        assert_eq!(rules_of(src), vec![Rule::Println, Rule::Println]);
        assert!(scan_source("crates/cli/src/bin/mendel.rs", src).is_empty());
        assert!(scan_source("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn eprintln_is_not_double_counted() {
        let got = rules_of("fn f() { eprintln!(\"y\"); }");
        assert_eq!(got, vec![Rule::Println]);
    }

    #[test]
    fn allow_requires_justification() {
        assert_eq!(
            rules_of("#[allow(dead_code)]\nfn f() {}\n"),
            vec![Rule::AllowWithoutReason]
        );
        assert!(
            rules_of("// retained for the wire format\n#[allow(dead_code)]\nfn f() {}\n")
                .is_empty()
        );
        assert!(
            rules_of("#[allow(dead_code)] // part of the public surface\nfn f() {}\n").is_empty()
        );
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src =
            "fn f() -> &'static str { \"call .unwrap() or panic!\" }\n// don't .unwrap() here\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn multiple_hits_on_one_line_are_counted() {
        let got = rules_of("fn f(a: Option<u8>, b: Option<u8>) -> u8 { a.unwrap() + b.unwrap() }");
        assert_eq!(got, vec![Rule::Unwrap, Rule::Unwrap]);
    }

    #[test]
    fn audit_allow_suppresses_on_same_line() {
        let src = "fn f() { panic!(\"x\") } // audit:allow(panic): state is unrecoverable here\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn audit_allow_suppresses_from_line_above() {
        let src = "// audit:allow(unwrap): checked non-empty two lines up\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn audit_allow_requires_a_reason() {
        let src = "fn f() { panic!(\"x\") } // audit:allow(panic):\n";
        assert_eq!(rules_of(src), vec![Rule::Panic]);
        let src = "fn f() { panic!(\"x\") } // audit:allow(panic)\n";
        assert_eq!(rules_of(src), vec![Rule::Panic]);
    }

    #[test]
    fn audit_allow_only_suppresses_the_named_rule() {
        let src = "fn f(o: Option<u8>) { o.unwrap(); panic!(\"x\") } // audit:allow(panic): deliberate abort\n";
        assert_eq!(rules_of(src), vec![Rule::Unwrap]);
    }

    #[test]
    fn audit_allow_with_unknown_rule_suppresses_nothing() {
        let src = "fn f() { panic!(\"x\") } // audit:allow(no-such): whatever\n";
        assert_eq!(rules_of(src), vec![Rule::Panic]);
    }

    #[test]
    fn instant_now_fires_only_in_instrumented_crates() {
        let src = "fn f() { let t = Instant::now(); let u = std::time::Instant::now(); }";
        let got = scan_source("crates/net/src/rpc.rs", src);
        assert_eq!(
            got.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec![Rule::InstantNow, Rule::InstantNow]
        );
        // Uninstrumented crates, the obs crate, and test code are exempt.
        assert!(scan_source("crates/seq/src/fasta.rs", src).is_empty());
        assert!(scan_source("crates/obs/src/clock.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = Instant::now(); }\n}\n";
        assert!(scan_source("crates/core/src/cluster.rs", test_src).is_empty());
    }

    #[test]
    fn instant_now_suppressible_with_marker() {
        let src = "// audit:allow(instant-now): deadline math needs a real Instant\nfn f() { let t = Instant::now(); }\n";
        assert!(scan_source("crates/net/src/rpc.rs", src).is_empty());
    }

    #[test]
    fn rule_names_roundtrip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("no-such"), None);
    }
}
