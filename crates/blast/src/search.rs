//! The BLAST search pipeline: seeding, two-hit filtering, ungapped and
//! gapped extension, E-value ranking.

use crate::index::WordIndex;
use crate::word::{neighborhood, query_words, unpack_word, WordSpec};
use mendel_align::karlin::solve_ungapped_background;
use mendel_align::{extend_gapped_banded, extend_ungapped, GapPenalties, KarlinParams};
use mendel_seq::dist::percent_identity;
use mendel_seq::{ScoringMatrix, SeqId, SeqStore};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Tunable parameters of the BLAST pipeline.
#[derive(Debug, Clone)]
pub struct BlastParams {
    /// Word shape (length + packing radix).
    pub spec: WordSpec,
    /// Substitution matrix.
    pub matrix: ScoringMatrix,
    /// Neighbourhood threshold `T`; `None` seeds on exact words only
    /// (blastn behaviour).
    pub neighborhood_threshold: Option<i32>,
    /// Two-hit window `A`; `None` triggers extension on every seed
    /// (one-hit mode, more sensitive and slower).
    pub two_hit_window: Option<usize>,
    /// X-drop for the ungapped extension.
    pub x_drop_ungapped: i32,
    /// X-drop for the banded gapped extension.
    pub x_drop_gapped: i32,
    /// Raw ungapped score required to attempt a gapped extension.
    pub gap_trigger: i32,
    /// Minimum ungapped HSP score to keep at all.
    pub min_ungapped_score: i32,
    /// Affine gap penalties for the gapped stage.
    pub gaps: GapPenalties,
    /// Band half-width for the gapped extension.
    pub band: usize,
    /// Karlin–Altschul parameters used for E-values of reported scores.
    pub karlin: KarlinParams,
    /// Report hits with `E ≤ evalue_cutoff`.
    pub evalue_cutoff: f64,
}

impl BlastParams {
    /// blastp-like defaults: BLOSUM62, 3-letter words, T = 11, two-hit
    /// window 40, gaps 11/1.
    pub fn protein() -> Self {
        BlastParams {
            spec: WordSpec::protein(),
            matrix: ScoringMatrix::blosum62(),
            neighborhood_threshold: Some(11),
            two_hit_window: Some(40),
            x_drop_ungapped: 16,
            x_drop_gapped: 38,
            gap_trigger: 41,
            min_ungapped_score: 23,
            gaps: GapPenalties::BLASTP_DEFAULT,
            band: 24,
            karlin: KarlinParams::BLOSUM62_GAPPED_11_1,
            evalue_cutoff: 10.0,
        }
    }

    /// blastn-like defaults: 11-letter exact words, +2/−3, gaps 5/2.
    /// Karlin parameters are solved numerically for the scoring system.
    pub fn dna() -> Self {
        let matrix = ScoringMatrix::dna(2, -3);
        let karlin = solve_ungapped_background(&matrix)
            .expect("+2/-3 has negative drift and positive scores"); // audit:allow(expect): +2/-3 has negative drift and positive max score, so the Karlin solver always converges
        BlastParams {
            spec: WordSpec::dna(),
            matrix,
            neighborhood_threshold: None,
            two_hit_window: None,
            x_drop_ungapped: 20,
            x_drop_gapped: 30,
            gap_trigger: 25,
            min_ungapped_score: 22, // exact 11-mer seed scores 22
            gaps: GapPenalties::BLASTN_DEFAULT,
            band: 16,
            karlin,
            evalue_cutoff: 10.0,
        }
    }
}

/// One reported database hit.
#[derive(Debug, Clone, PartialEq)]
pub struct BlastHit {
    /// Subject sequence.
    pub subject: SeqId,
    /// Final (gapped where attempted) raw score.
    pub score: i32,
    /// Bit score.
    pub bits: f64,
    /// Expectation value against the whole database.
    pub evalue: f64,
    /// Query range of the best HSP.
    pub query_start: usize,
    /// Exclusive query end.
    pub query_end: usize,
    /// Subject range of the best HSP.
    pub subject_start: usize,
    /// Exclusive subject end.
    pub subject_end: usize,
    /// Percent identity over the seeding ungapped segment.
    pub identity: f32,
}

/// A BLAST searcher over an indexed database.
pub struct Blast {
    db: Arc<SeqStore>,
    index: WordIndex,
    params: BlastParams,
    db_residues: usize,
}

impl Blast {
    /// Index `db` under `params`.
    pub fn new(db: Arc<SeqStore>, params: BlastParams) -> Self {
        let index = WordIndex::build(&db, params.spec);
        let db_residues = db.total_residues();
        Blast {
            db,
            index,
            params,
            db_residues,
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &BlastParams {
        &self.params
    }

    /// Search one encoded query, returning hits sorted by ascending
    /// E-value (best first).
    pub fn search(&self, query: &[u8]) -> Vec<BlastHit> {
        let p = &self.params;
        let k = p.spec.k;
        if query.len() < k {
            return Vec::new();
        }

        // 1. Seed words (neighbourhood-expanded for proteins).
        let words = query_words(p.spec, query);
        let mut hood_cache: HashMap<u32, Vec<u32>> = HashMap::new();
        // Raw seed hits keyed by (subject, diagonal).
        let mut by_diag: HashMap<(SeqId, i64), Vec<(usize, usize)>> = HashMap::new();
        for (qpos, w) in &words {
            let seeds: &[u32] = match p.neighborhood_threshold {
                None => std::slice::from_ref(w),
                Some(t) => hood_cache.entry(*w).or_insert_with(|| {
                    neighborhood(p.spec, &unpack_word(p.spec, *w), &p.matrix, t)
                }),
            };
            for &seed in seeds {
                for post in self.index.lookup(seed) {
                    let diag = post.offset as i64 - *qpos as i64;
                    by_diag
                        .entry((post.seq, diag))
                        .or_default()
                        .push((*qpos, post.offset as usize));
                }
            }
        }

        // 2. Per-diagonal two-hit filtering and ungapped extension.
        struct Segment {
            qs: usize,
            qe: usize,
            ss: usize,
            score: i32,
        }
        let mut per_subject: HashMap<SeqId, Vec<Segment>> = HashMap::new();
        for ((seq, _diag), mut hits) in by_diag {
            hits.sort_unstable();
            hits.dedup();
            let subject = &self
                .db
                .get(seq)
                .expect("posting references live sequence") // audit:allow(expect): index invariant; postings only reference sequences stored in the same db
                .residues;
            let mut covered_to: i64 = -1; // rightmost query end already extended
            let mut last_hit_q: Option<usize> = None;
            for (qpos, spos) in hits {
                if (qpos as i64) < covered_to {
                    last_hit_q = Some(qpos);
                    continue; // already inside an extended segment
                }
                let trigger = match p.two_hit_window {
                    None => true,
                    Some(window) => match last_hit_q {
                        // A second non-overlapping hit within the window on
                        // the same diagonal triggers the extension.
                        Some(prev) => qpos > prev && qpos - prev <= window,
                        None => false,
                    },
                };
                last_hit_q = Some(qpos);
                if !trigger {
                    continue;
                }
                let ext =
                    extend_ungapped(query, subject, qpos, spos, k, &p.matrix, p.x_drop_ungapped);
                covered_to = ext.query_end as i64;
                if ext.score >= p.min_ungapped_score {
                    per_subject.entry(seq).or_default().push(Segment {
                        qs: ext.query_start,
                        qe: ext.query_end,
                        ss: ext.subject_start,
                        score: ext.score,
                    });
                }
            }
        }

        // 3. Gapped extension for HSPs over the trigger; keep the best HSP
        //    per subject; rank by E-value.
        let mut out: Vec<BlastHit> = Vec::new();
        for (seq, mut segments) in per_subject {
            // Deterministic winner among equal-scoring HSPs regardless of
            // hash-map iteration order.
            segments.sort_unstable_by_key(|s| (s.qs, s.ss, std::cmp::Reverse(s.score)));
            let subject = &self.db.get(seq).expect("live sequence").residues; // audit:allow(expect): index invariant; per_subject keys come from live postings
            let mut best: Option<BlastHit> = None;
            for seg in &segments {
                let identity = percent_identity(
                    &query[seg.qs..seg.qe],
                    &subject[seg.ss..seg.ss + (seg.qe - seg.qs)],
                )
                .unwrap_or(0.0);
                let (score, qr, sr) = if seg.score >= p.gap_trigger {
                    let q_mid = (seg.qs + seg.qe) / 2;
                    let s_mid = seg.ss + (q_mid - seg.qs);
                    let g = extend_gapped_banded(
                        query,
                        subject,
                        q_mid,
                        s_mid,
                        &p.matrix,
                        p.gaps,
                        p.band,
                        p.x_drop_gapped,
                    );
                    (
                        g.score.max(seg.score),
                        (g.query_start, g.query_end),
                        (g.subject_start, g.subject_end),
                    )
                } else {
                    (
                        seg.score,
                        (seg.qs, seg.qe),
                        (seg.ss, seg.ss + (seg.qe - seg.qs)),
                    )
                };
                let evalue = p.karlin.evalue(score, query.len(), self.db_residues);
                let hit = BlastHit {
                    subject: seq,
                    score,
                    bits: p.karlin.bit_score(score),
                    evalue,
                    query_start: qr.0,
                    query_end: qr.1,
                    subject_start: sr.0,
                    subject_end: sr.1,
                    identity,
                };
                if best.as_ref().map_or(true, |b| hit.score > b.score) {
                    best = Some(hit);
                }
            }
            if let Some(hit) = best {
                if hit.evalue <= p.evalue_cutoff {
                    out.push(hit);
                }
            }
        }
        out.sort_by(|a, b| {
            a.evalue
                .total_cmp(&b.evalue)
                .then(b.score.cmp(&a.score))
                .then(a.subject.cmp(&b.subject))
        });
        out
    }

    /// Search many queries in parallel (rayon).
    pub fn search_all(&self, queries: &[Vec<u8>]) -> Vec<Vec<BlastHit>> {
        queries.par_iter().map(|q| self.search(q)).collect()
    }

    /// blastx-style translated search: translate an encoded DNA query in
    /// all six reading frames and search each against this (protein)
    /// database. Returns `(frame, hit)` pairs ranked by ascending
    /// E-value; frames 0–2 are the forward strand, 3–5 the reverse
    /// complement.
    ///
    /// # Panics
    /// Debug-asserts that the database is a protein database.
    pub fn search_translated(&self, dna_query: &[u8]) -> Vec<(usize, BlastHit)> {
        debug_assert_eq!(
            self.params.matrix.alphabet,
            mendel_seq::Alphabet::Protein,
            "translated search needs a protein database"
        );
        let frames = mendel_seq::six_frames(dna_query);
        let mut out: Vec<(usize, BlastHit)> = frames
            .par_iter()
            .enumerate()
            .flat_map(|(f, q)| {
                self.search(q)
                    .into_iter()
                    .map(move |h| (f, h))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| {
            a.1.evalue
                .total_cmp(&b.1.evalue)
                .then(b.1.score.cmp(&a.1.score))
                .then(a.1.subject.cmp(&b.1.subject))
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Total residues in the indexed database.
    pub fn db_residues(&self) -> usize {
        self.db_residues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::gen::{mutate_to_identity, NrLikeSpec, QuerySetSpec};
    use mendel_seq::Alphabet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn protein_db() -> Arc<SeqStore> {
        Arc::new(
            NrLikeSpec {
                families: 24,
                members_per_family: 3,
                length_range: (150, 400),
                seed: 0xB1A57,
                ..Default::default()
            }
            .generate()
            .unwrap(),
        )
    }

    #[test]
    fn finds_exact_self_hit_with_tiny_evalue() {
        let db = protein_db();
        let blast = Blast::new(db.clone(), BlastParams::protein());
        let target = db.get(SeqId(5)).unwrap();
        let hits = blast.search(&target.residues);
        assert!(!hits.is_empty(), "self-query must hit");
        let top = &hits[0];
        assert_eq!(top.subject, SeqId(5));
        assert!(top.evalue < 1e-20, "self E-value {}", top.evalue);
        assert!(top.identity > 0.99);
    }

    #[test]
    fn finds_mutated_homolog() {
        let db = protein_db();
        let blast = Blast::new(db.clone(), BlastParams::protein());
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let src = db.get(SeqId(9)).unwrap();
        let query = mutate_to_identity(Alphabet::Protein, &src.residues, 0.7, &mut rng).unwrap();
        let hits = blast.search(&query);
        assert!(
            hits.iter().any(|h| h.subject == SeqId(9)),
            "70%-identity homolog must be found"
        );
    }

    #[test]
    fn unrelated_random_query_finds_nothing_significant() {
        let db = protein_db();
        let mut params = BlastParams::protein();
        params.evalue_cutoff = 1e-3;
        let blast = Blast::new(db, params);
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let query = mendel_seq::gen::random_sequence(Alphabet::Protein, 300, &mut rng);
        let hits = blast.search(&query);
        assert!(
            hits.is_empty(),
            "random query should have no E<1e-3 hits, got {:?}",
            hits.first()
        );
    }

    #[test]
    fn family_members_rank_above_strangers() {
        let db = protein_db();
        let blast = Blast::new(db.clone(), BlastParams::protein());
        let q = db.get_by_name("fam3_m0").unwrap();
        let hits = blast.search(&q.residues);
        // The top hits should all be family-3 members.
        let top_names: Vec<&str> = hits
            .iter()
            .take(3)
            .map(|h| db.get(h.subject).unwrap().name.as_str())
            .collect();
        for n in &top_names {
            assert!(
                n.starts_with("fam3_"),
                "unexpected top hit {n} in {top_names:?}"
            );
        }
    }

    #[test]
    fn dna_search_finds_planted_match() {
        let mut st = SeqStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        for i in 0..10 {
            let codes = mendel_seq::gen::random_sequence(Alphabet::Dna, 600, &mut rng);
            st.insert(mendel_seq::Sequence::from_codes(
                format!("d{i}"),
                Alphabet::Dna,
                codes,
            ));
        }
        let db = Arc::new(st);
        let blast = Blast::new(db.clone(), BlastParams::dna());
        let src = db.get(SeqId(4)).unwrap();
        let query = src.residues[100..400].to_vec();
        let hits = blast.search(&query);
        assert_eq!(hits[0].subject, SeqId(4));
        assert!(hits[0].subject_start <= 100 && hits[0].subject_end >= 380);
    }

    #[test]
    fn query_shorter_than_word_is_empty() {
        let db = protein_db();
        let blast = Blast::new(db, BlastParams::protein());
        assert!(blast.search(&[0, 1]).is_empty());
        assert!(blast.search(&[]).is_empty());
    }

    #[test]
    fn one_hit_mode_is_at_least_as_sensitive_as_two_hit() {
        let db = protein_db();
        let queries = QuerySetSpec {
            count: 6,
            length: 120,
            identity: 0.55,
            seed: 80,
        }
        .generate(&db)
        .unwrap();
        let two_hit = Blast::new(db.clone(), BlastParams::protein());
        let mut p1 = BlastParams::protein();
        p1.two_hit_window = None;
        let one_hit = Blast::new(db.clone(), p1);
        let found = |b: &Blast| {
            queries
                .iter()
                .filter(|q| {
                    b.search(&q.query.residues)
                        .iter()
                        .any(|h| h.subject == q.source)
                })
                .count()
        };
        assert!(found(&one_hit) >= found(&two_hit));
    }

    #[test]
    fn results_are_deterministic() {
        let db = protein_db();
        let blast = Blast::new(db.clone(), BlastParams::protein());
        let q = db.get(SeqId(0)).unwrap();
        let a = blast.search(&q.residues);
        let b = blast.search(&q.residues);
        assert_eq!(a, b);
    }

    #[test]
    fn search_all_matches_individual_searches() {
        let db = protein_db();
        let blast = Blast::new(db.clone(), BlastParams::protein());
        let queries: Vec<Vec<u8>> = (0..4)
            .map(|i| db.get(SeqId(i)).unwrap().residues.clone())
            .collect();
        let batch = blast.search_all(&queries);
        for (q, expect) in queries.iter().zip(&batch) {
            assert_eq!(&blast.search(q), expect);
        }
    }

    #[test]
    fn translated_search_finds_the_coding_protein() {
        use mendel_seq::translate::translate_codon;
        // Reverse-engineer a DNA sequence coding for a database protein,
        // then search it in translated mode.
        let db = protein_db();
        let blast = Blast::new(db.clone(), BlastParams::protein());
        let target = db.get(SeqId(3)).unwrap();
        // Pick, for each residue, some codon that translates to it.
        let mut dna: Vec<u8> = Vec::with_capacity(target.len() * 3);
        'residue: for &aa in target.residues.iter().take(120) {
            for c0 in 0..4u8 {
                for c1 in 0..4u8 {
                    for c2 in 0..4u8 {
                        if translate_codon(c0, c1, c2) == aa {
                            dna.extend_from_slice(&[c0, c1, c2]);
                            continue 'residue;
                        }
                    }
                }
            }
            unreachable!("every canonical residue has a codon");
        }
        let hits = blast.search_translated(&dna);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].1.subject, SeqId(3));
        assert_eq!(hits[0].0, 0, "the coding frame is +0");
        // The reverse complement should find it via a minus frame.
        let rc = mendel_seq::reverse_complement(&dna);
        let rc_hits = blast.search_translated(&rc);
        assert_eq!(rc_hits[0].1.subject, SeqId(3));
        assert!(
            rc_hits[0].0 >= 3,
            "reverse strand frame expected, got {}",
            rc_hits[0].0
        );
    }

    #[test]
    fn evalue_cutoff_filters_weak_hits() {
        let db = protein_db();
        let mut loose = BlastParams::protein();
        loose.evalue_cutoff = f64::INFINITY;
        let mut strict = BlastParams::protein();
        strict.evalue_cutoff = 1e-30;
        let q = db.get(SeqId(2)).unwrap().residues.clone();
        let n_loose = Blast::new(db.clone(), loose).search(&q).len();
        let n_strict = Blast::new(db.clone(), strict).search(&q).len();
        assert!(n_loose >= n_strict);
        assert!(n_strict >= 1, "the self-hit survives any cutoff");
    }
}
