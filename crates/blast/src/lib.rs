//! # mendel-blast — the BLAST baseline, from scratch
//!
//! Every performance figure in the paper compares Mendel against NCBI
//! BLAST (§VI ran BLAST+ 2.2.31). This crate re-implements the BLAST
//! algorithm (Altschul et al. 1990; gapped extensions per Altschul et
//! al. 1997) so the comparison runs inside one process and one I/O stack:
//!
//! * [`word`] — query tokenization into k-letter words, packed word
//!   codes, and *neighbourhood* word generation (protein words scoring
//!   ≥ T against a query word),
//! * [`index`] — the database word index (word → postings of
//!   (sequence, offset)),
//! * [`search`] — the full pipeline: seed lookup, two-hit filtering on
//!   diagonals, ungapped X-drop extension, gapped extension for HSPs
//!   above the trigger, E-value ranking.
//!
//! The single-machine, whole-database character of this pipeline is the
//! point: "Because BLAST requires, to some extent, a complete search when
//! looking for exact matches, large numbers of sequences result in poor
//! running times" (§II-B1) — the benches reproduce exactly that contrast.

pub mod index;
pub mod search;
pub mod word;

pub use index::WordIndex;
pub use search::{Blast, BlastHit, BlastParams};
pub use word::{neighborhood, pack_word, WordSpec};
