//! The database word index: packed word → postings of (sequence, offset).
//!
//! BLAST preprocesses the database once; queries then look up their
//! (neighbourhood-expanded) words. The index is a flat `Vec` of postings
//! bucketed by word code — cache-friendly and constant-time per lookup.

use crate::word::{pack_word, WordSpec};
use mendel_seq::{SeqId, SeqStore};

/// One occurrence of a word in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Sequence containing the word.
    pub seq: SeqId,
    /// Offset of the word's first residue.
    pub offset: u32,
}

/// Word → postings index over a sequence database.
#[derive(Debug)]
pub struct WordIndex {
    spec: WordSpec,
    /// CSR layout: `starts[w]..starts[w+1]` slices `postings`.
    starts: Vec<u32>,
    postings: Vec<Posting>,
}

impl WordIndex {
    /// Index every canonical k-window of every sequence in `db`.
    pub fn build(db: &SeqStore, spec: WordSpec) -> Self {
        // Pass 1: count per-word occurrences.
        let domain = spec.domain() as usize;
        let mut counts = vec![0u32; domain + 1];
        let add_words = |residues: &[u8], mut f: Box<dyn FnMut(u32, u32) + '_>| {
            if residues.len() < spec.k {
                return;
            }
            for i in 0..=residues.len() - spec.k {
                if let Some(w) = pack_word(spec, &residues[i..i + spec.k]) {
                    f(w, i as u32);
                }
            }
        };
        for s in db.iter() {
            add_words(&s.residues, Box::new(|w, _| counts[w as usize + 1] += 1));
        }
        // Prefix-sum into CSR starts.
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts;
        // Pass 2: fill postings.
        let mut cursors = starts.clone();
        let mut postings = vec![
            Posting {
                seq: SeqId(0),
                offset: 0
            };
            starts.last().copied().unwrap_or(0) as usize
        ];
        for s in db.iter() {
            let id = s.id;
            add_words(
                &s.residues,
                Box::new(|w, off| {
                    let slot = cursors[w as usize];
                    postings[slot as usize] = Posting {
                        seq: id,
                        offset: off,
                    };
                    cursors[w as usize] += 1;
                }),
            );
        }
        WordIndex {
            spec,
            starts,
            postings,
        }
    }

    /// The word shape this index was built with.
    #[inline]
    pub fn spec(&self) -> WordSpec {
        self.spec
    }

    /// Postings of a packed word code.
    #[inline]
    pub fn lookup(&self, word: u32) -> &[Posting] {
        let lo = self.starts[word as usize] as usize;
        let hi = self.starts[word as usize + 1] as usize;
        &self.postings[lo..hi]
    }

    /// Total postings stored.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when the database contributed no words.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mendel_seq::{Alphabet, Sequence};

    fn store(seqs: &[&[u8]]) -> SeqStore {
        let mut st = SeqStore::new();
        for (i, s) in seqs.iter().enumerate() {
            st.insert(Sequence::from_ascii(format!("s{i}"), Alphabet::Dna, s).unwrap());
        }
        st
    }

    fn spec2() -> WordSpec {
        WordSpec::new(2, 4)
    }

    #[test]
    fn index_finds_all_occurrences() {
        let db = store(&[b"ACGACG", b"TACG"]);
        let idx = WordIndex::build(&db, spec2());
        let ac = pack_word(spec2(), &Alphabet::Dna.encode_seq(b"AC").unwrap()).unwrap();
        let hits = idx.lookup(ac);
        assert_eq!(hits.len(), 3);
        assert_eq!(
            hits[0],
            Posting {
                seq: SeqId(0),
                offset: 0
            }
        );
        assert_eq!(
            hits[1],
            Posting {
                seq: SeqId(0),
                offset: 3
            }
        );
        assert_eq!(
            hits[2],
            Posting {
                seq: SeqId(1),
                offset: 1
            }
        );
    }

    #[test]
    fn absent_word_has_no_postings() {
        let db = store(&[b"AAAA"]);
        let idx = WordIndex::build(&db, spec2());
        let gt = pack_word(spec2(), &Alphabet::Dna.encode_seq(b"GT").unwrap()).unwrap();
        assert!(idx.lookup(gt).is_empty());
    }

    #[test]
    fn wildcard_windows_are_not_indexed() {
        let db = store(&[b"ANA"]); // N is non-canonical
        let idx = WordIndex::build(&db, spec2());
        assert!(idx.is_empty(), "both windows touch N");
    }

    #[test]
    fn short_sequences_contribute_nothing() {
        let db = store(&[b"A"]);
        let idx = WordIndex::build(&db, spec2());
        assert!(idx.is_empty());
    }

    #[test]
    fn total_postings_counts_windows() {
        let db = store(&[b"ACGT", b"ACGT"]);
        let idx = WordIndex::build(&db, spec2());
        assert_eq!(idx.len(), 6); // 3 windows per sequence
    }
}
