//! k-letter words: packing, tokenization, and neighbourhood generation.
//!
//! BLAST "tokenized [the query] into k-letter words. Probable variants
//! for each word are generated and BLAST then searches the whole database
//! for exact matches to the generated tokens" (§II-B1). For proteins the
//! variants are the *neighbourhood*: every word scoring at least `T`
//! against the query word under the scoring matrix. DNA uses exact words
//! only (larger k, no neighbourhood), as in blastn.

use mendel_seq::{Alphabet, ScoringMatrix};

/// Word shape: length and the alphabet radix used for packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordSpec {
    /// Word length (blastp default 3, blastn default 11).
    pub k: usize,
    /// Number of canonical residues (packing radix).
    pub radix: u32,
}

impl WordSpec {
    /// blastp-style: 3-letter protein words over the canonical 20.
    pub fn protein() -> Self {
        WordSpec {
            k: 3,
            radix: Alphabet::Protein.canonical_size() as u32,
        }
    }

    /// blastn-style: 11-letter DNA words over ACGT.
    pub fn dna() -> Self {
        WordSpec {
            k: 11,
            radix: Alphabet::Dna.canonical_size() as u32,
        }
    }

    /// A custom shape.
    ///
    /// # Panics
    /// Panics if `radix^k` overflows `u32` (the packed-word domain).
    pub fn new(k: usize, radix: u32) -> Self {
        let spec = WordSpec { k, radix };
        assert!(k >= 1, "word length must be positive");
        assert!(
            spec.domain_checked().is_some(),
            "radix^k must fit in u32 (got {radix}^{k})"
        );
        spec
    }

    /// Number of possible packed words (`radix^k`).
    pub fn domain(&self) -> u32 {
        self.domain_checked().expect("validated at construction") // audit:allow(expect): WordSpec constructors reject overflowing k/radix, so the product always fits
    }

    fn domain_checked(&self) -> Option<u32> {
        let mut d: u32 = 1;
        for _ in 0..self.k {
            d = d.checked_mul(self.radix)?;
        }
        Some(d)
    }
}

/// Pack `k` residue codes into a single integer word code. Returns `None`
/// if any residue is non-canonical (wildcards never seed).
pub fn pack_word(spec: WordSpec, window: &[u8]) -> Option<u32> {
    debug_assert_eq!(window.len(), spec.k);
    let mut code: u32 = 0;
    for &r in window {
        if (r as u32) >= spec.radix {
            return None;
        }
        code = code * spec.radix + r as u32;
    }
    Some(code)
}

/// Unpack a word code back into residue codes (inverse of [`pack_word`]).
pub fn unpack_word(spec: WordSpec, mut code: u32) -> Vec<u8> {
    let mut out = vec![0u8; spec.k];
    for slot in out.iter_mut().rev() {
        *slot = (code % spec.radix) as u8;
        code /= spec.radix;
    }
    out
}

/// All words of the query: `(offset, packed code)` per position whose
/// window is fully canonical.
pub fn query_words(spec: WordSpec, query: &[u8]) -> Vec<(usize, u32)> {
    if query.len() < spec.k {
        return Vec::new();
    }
    (0..=query.len() - spec.k)
        .filter_map(|i| pack_word(spec, &query[i..i + spec.k]).map(|w| (i, w)))
        .collect()
}

/// The neighbourhood of `word`: every packed word whose ungapped score
/// against `word` under `matrix` is at least `threshold`. Includes the
/// word itself when it meets the threshold (it nearly always does).
///
/// Enumeration prunes by best-possible completion, so the cost is far
/// below `radix^k` for realistic thresholds.
pub fn neighborhood(
    spec: WordSpec,
    word: &[u8],
    matrix: &ScoringMatrix,
    threshold: i32,
) -> Vec<u32> {
    debug_assert_eq!(word.len(), spec.k);
    // best_suffix[i] = max achievable score from positions i..k.
    let mut best_suffix = vec![0i32; spec.k + 1];
    for i in (0..spec.k).rev() {
        let best_here = (0..spec.radix as u8)
            .map(|c| matrix.score(word[i], c))
            .max()
            .unwrap_or(0);
        best_suffix[i] = best_suffix[i + 1] + best_here;
    }
    let mut out = Vec::new();
    let mut partial = Vec::with_capacity(spec.k);
    expand(
        spec,
        word,
        matrix,
        threshold,
        &best_suffix,
        0,
        0,
        &mut partial,
        &mut out,
    );
    out
}

// The recursion carries the whole DFS state; bundling it into a struct
// would only rename the arguments without removing any of them.
#[allow(clippy::too_many_arguments)]
fn expand(
    spec: WordSpec,
    word: &[u8],
    matrix: &ScoringMatrix,
    threshold: i32,
    best_suffix: &[i32],
    pos: usize,
    score: i32,
    partial: &mut Vec<u8>,
    out: &mut Vec<u32>,
) {
    if pos == spec.k {
        if score >= threshold {
            out.push(pack_word(spec, partial).expect("canonical residues")); // audit:allow(expect): partial holds canonical residues below the radix by construction
        }
        return;
    }
    for c in 0..spec.radix as u8 {
        let s = score + matrix.score(word[pos], c);
        if s + best_suffix[pos + 1] < threshold {
            continue;
        }
        partial.push(c);
        expand(
            spec,
            word,
            matrix,
            threshold,
            best_suffix,
            pos + 1,
            s,
            partial,
            out,
        );
        partial.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::Protein.encode_seq(s).unwrap()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let spec = WordSpec::protein();
        for w in [[0u8, 0, 0], [19, 19, 19], [4, 7, 13]] {
            let code = pack_word(spec, &w).unwrap();
            assert_eq!(unpack_word(spec, code), w.to_vec());
            assert!(code < spec.domain());
        }
    }

    #[test]
    fn wildcards_do_not_pack() {
        let spec = WordSpec::protein();
        let x = Alphabet::Protein.encode(b'X').unwrap();
        assert!(pack_word(spec, &[0, x, 0]).is_none());
    }

    #[test]
    fn dna_spec_domain() {
        let spec = WordSpec::dna();
        assert_eq!(spec.domain(), 4u32.pow(11));
    }

    #[test]
    #[should_panic(expected = "fit in u32")]
    fn oversized_spec_rejected() {
        WordSpec::new(8, 20); // 20^8 > u32::MAX
    }

    #[test]
    fn query_words_skip_wildcard_windows() {
        let spec = WordSpec::new(2, 20);
        let q = enc(b"ARXND");
        let words = query_words(spec, &q);
        // Windows: AR ok, RX no, XN no, ND ok.
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].0, 0);
        assert_eq!(words[1].0, 3);
    }

    #[test]
    fn query_words_of_short_query_is_empty() {
        assert!(query_words(WordSpec::protein(), &enc(b"AR")).is_empty());
    }

    #[test]
    fn neighborhood_contains_self_and_respects_threshold() {
        let m = ScoringMatrix::blosum62();
        let spec = WordSpec::protein();
        let w = enc(b"WWW"); // self-score 33
        let hood = neighborhood(spec, &w, &m, 11);
        let self_code = pack_word(spec, &w).unwrap();
        assert!(hood.contains(&self_code));
        // Every member scores >= 11 when re-checked by hand.
        for &code in &hood {
            let v = unpack_word(spec, code);
            let score: i32 = w.iter().zip(&v).map(|(&a, &b)| m.score(a, b)).sum();
            assert!(score >= 11, "word {v:?} scores {score}");
        }
    }

    #[test]
    fn neighborhood_is_exhaustive_vs_brute_force() {
        let m = ScoringMatrix::blosum62();
        let spec = WordSpec::new(2, 20); // 400 words: brute force is cheap
        let w = enc(b"LK");
        let threshold = 7;
        let mut want: Vec<u32> = (0..spec.domain())
            .filter(|&code| {
                let v = unpack_word(spec, code);
                let s: i32 = w.iter().zip(&v).map(|(&a, &b)| m.score(a, b)).sum();
                s >= threshold
            })
            .collect();
        let mut got = neighborhood(spec, &w, &m, threshold);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn high_threshold_empties_the_neighborhood() {
        let m = ScoringMatrix::blosum62();
        let spec = WordSpec::protein();
        let w = enc(b"AAA"); // self-score 12
        assert!(neighborhood(spec, &w, &m, 100).is_empty());
    }

    #[test]
    fn lower_threshold_grows_the_neighborhood() {
        let m = ScoringMatrix::blosum62();
        let spec = WordSpec::protein();
        let w = enc(b"LKF");
        let tight = neighborhood(spec, &w, &m, 13).len();
        let loose = neighborhood(spec, &w, &m, 11).len();
        assert!(loose > tight, "loose {loose} vs tight {tight}");
    }
}
