#!/usr/bin/env bash
# Offline CI gate for the Mendel workspace. Run from the repo root:
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # skip the release build and strict-invariants pass
#
# Every step works without network access; steps whose tool is absent
# from the toolchain (rustfmt, clippy) are skipped with a notice rather
# than failing the gate.
set -u

cd "$(dirname "$0")"

MODE="${1:-full}"
FAILED=0

step() {
    echo
    echo "==> $1"
    shift
    if "$@"; then
        echo "    ok"
    else
        echo "    FAILED: $*"
        FAILED=1
    fi
}

# 1. Formatting. The tree is kept rustfmt-clean; drift fails the gate.
if cargo fmt --version >/dev/null 2>&1; then
    step "cargo fmt --check" cargo fmt --check
else
    echo "==> rustfmt unavailable; skipping format check"
fi

# 2. Source audit: no new panics / std::sync locks / stray prints /
#    unjustified allows versus audit-baseline.txt (see DESIGN.md §8.1).
step "mendel-audit lint" cargo run -q -p mendel-audit -- lint

# 3. Clippy with the workspace lint table ([workspace.lints.clippy]).
if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy" cargo clippy --workspace --all-targets -q
else
    echo "==> clippy unavailable; skipping lint check"
fi

# 4. Lock-order analysis (DESIGN.md §13): the held-while-acquiring
#    graph over every parking_lot acquisition must stay acyclic, and
#    every guard held across a blocking call must carry a waiver.
mkdir -p bench_results
step "mendel-audit locks" \
    cargo run -q -p mendel-audit -- locks --json bench_results/audit_locks.json

# 5. Atomic-ordering audit (DESIGN.md §13): every `Ordering::*` site
#    needs an `audit:ordering(<Ord>): <reason>` annotation or a
#    baseline entry; atomics-baseline.txt only ever shrinks.
step "mendel-audit atomics" \
    cargo run -q -p mendel-audit -- atomics --json bench_results/audit_atomics.json

# 6. Deterministic two-thread interleaving stress for Histogram,
#    FlightRecorder, and the work-stealing scheduler's deques (lockstep
#    alternation + free-running invariants). Plain run always; under
#    ThreadSanitizer and Miri when the toolchain has them (nightly
#    rust-src for TSan's -Zbuild-std, the miri component for Miri) —
#    skipped with a notice otherwise.
step "interleaving stress (plain)" cargo test -p mendel-obs --test interleave -q
step "scheduler interleave stress (plain)" cargo test -p mendel-sched --test interleave -q
if rustup component list --toolchain nightly 2>/dev/null | grep -q "^rust-src (installed)"; then
    HOST="$(rustc -vV | sed -n 's/^host: //p')"
    step "interleaving stress (tsan)" \
        env RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p mendel-obs --test interleave -q
    step "scheduler interleave stress (tsan)" \
        env RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p mendel-sched --test interleave -q
else
    echo "==> nightly rust-src unavailable; skipping ThreadSanitizer pass"
fi
if cargo +nightly miri --version >/dev/null 2>&1; then
    step "interleaving stress (miri)" \
        cargo +nightly miri test -p mendel-obs --test interleave
    step "scheduler interleave stress (miri)" \
        cargo +nightly miri test -p mendel-sched --test interleave
else
    echo "==> miri unavailable; skipping Miri pass"
fi

# 7. Tier-1 verify (ROADMAP.md): release build + default test suite.
if [ "$MODE" != "quick" ]; then
    step "cargo build --release" cargo build --release -q
fi
step "cargo test" cargo test -q

# 8. Structural invariant checkers asserted at every mutation site
#    (see DESIGN.md §8.2).
if [ "$MODE" != "quick" ]; then
    step "cargo test --features strict-invariants" \
        cargo test --workspace --features strict-invariants -q
fi

# 9. Kernel/arena perf harness self-checks (DESIGN.md §10): tiny sizes,
#    asserts the report JSON is well-formed and that bounded kNN returns
#    bit-identical results to the unbounded baseline (the SIMD kernels
#    likewise identical to scalar).
if [ "$MODE" != "quick" ]; then
    step "kernel_bench --smoke" \
        cargo run --release -q -p mendel-bench --bin kernel_bench -- --smoke
fi

# 9b. Throughput harness self-checks (DESIGN.md §15): fails if the SIMD
#    and scalar kernels disagree on any sampled query, if batched hits
#    diverge from sequential, or if the scheduler fails to shed past its
#    admission bound; writes bench_results/qps.json in both modes.
step "qps_bench --smoke" \
    cargo run --release -q -p mendel-bench --bin qps_bench -- --smoke

# 10. Observability suite (DESIGN.md §11): exact counter assertions
#    (distance calls, fan-out, fault-verdict replay) under the invariant
#    checkers, plus the metrics-overhead harness at smoke sizes.
if [ "$MODE" != "quick" ]; then
    step "observability suite (strict-invariants)" \
        cargo test --test observability --features strict-invariants -q
    step "obs_bench --smoke" \
        cargo run --release -q -p mendel-bench --bin obs_bench -- --smoke
fi

# 11. Causal-tracing suite (DESIGN.md §12): the seeded chaos-flavoured
#    run exports byte-identical chrome trace JSON twice, the export
#    passes the trace-event schema check, the hand-built scatter-gather
#    DAG yields the hand-computed critical path, and envelopes
#    round-trip over both wire encodings.
if [ "$MODE" != "quick" ]; then
    step "trace determinism + schema" cargo test --test tracing -q
fi

# 12. Seeded chaos suite (DESIGN.md §9): deterministic fault injection,
#    heartbeat failover, and re-replication repair under the invariant
#    checkers. Fast fixed seeds only; the multi-seed sweep stays behind
#    `--ignored`.
if [ "$MODE" != "quick" ]; then
    step "chaos suite (strict-invariants)" \
        cargo test --test chaos --features strict-invariants -q
fi

# 13. Durability gate (DESIGN.md §14): the store-level crash-point
#    matrix (kill after every VFS op, recover, committed-prefix check)
#    plus the cluster-level kill-and-recover suite, then the smoke
#    bench re-runs the matrix across fsync policies and emits
#    bench_results/durability.json.
step "crash-point matrix" cargo test -p mendel-store --test crash_matrix -q
if [ "$MODE" != "quick" ]; then
    step "durability suite" cargo test --test durability -q
    step "durability_bench --smoke" \
        cargo run --release -q -p mendel-bench --bin durability_bench -- --smoke
fi

# 14. Real serving layer (DESIGN.md §16): frame-codec hostile-input +
#    property tests, transport conformance against both the simulated
#    and TCP backends, then the multi-process loopback cluster — three
#    `mendel serve` OS processes, HTTP-ingested, answering byte-identical
#    to the in-process twin, with SIGKILL degradation matching
#    fail_node. The suite skips itself with a notice when the sandbox
#    forbids loopback sockets and retries spawn rounds on port
#    collisions; a hard timeout keeps a wedged child from hanging the
#    gate.
step "frame codec + transport conformance" \
    cargo test -p mendel-net --test frame_props --test transport_conformance -q
if [ "$MODE" != "quick" ]; then
    if command -v timeout >/dev/null 2>&1; then
        step "multi-process serve suite (loopback)" \
            timeout --kill-after=30 300 cargo test -p mendel-cli --test serve -q
    else
        step "multi-process serve suite (loopback)" \
            cargo test -p mendel-cli --test serve -q
    fi
fi

# 15. Cross-process tracing + live telemetry (DESIGN.md §17): a traced
#    query against the real 3-process loopback cluster must stitch
#    node-side spans from every process into one Perfetto-loadable
#    chrome JSON with resolving parent links, and the slowlog, federated
#    metrics, and verbose healthz surfaces must answer. (obs_bench's
#    smoke run in step 10 self-checks the tracing-over-TCP ≤5% budget.)
if [ "$MODE" != "quick" ]; then
    if command -v timeout >/dev/null 2>&1; then
        step "multi-process trace smoke (loopback)" \
            timeout --kill-after=30 300 cargo test -p mendel-cli --test serve -q \
            traced_query_stitches_spans_from_all_three_processes
    else
        step "multi-process trace smoke (loopback)" \
            cargo test -p mendel-cli --test serve -q \
            traced_query_stitches_spans_from_all_three_processes
    fi
fi

echo
if [ "$FAILED" -ne 0 ]; then
    echo "CI gate FAILED"
    exit 1
fi
echo "CI gate passed"
