//! Quickstart: build a small Mendel cluster over a synthetic protein
//! database, run one similarity query, and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Examples narrate through stdout by design.
#![allow(clippy::print_stdout)]

use mendel_suite::core::{ClusterConfig, MendelCluster, QueryParams};
use mendel_suite::seq::gen::{NrLikeSpec, QuerySetSpec};
use std::sync::Arc;

fn main() {
    // 1. A reference database standing in for NCBI nr: 64 protein
    //    families with mutated members, Swiss-Prot residue composition.
    let db = Arc::new(
        NrLikeSpec {
            families: 64,
            members_per_family: 3,
            length_range: (200, 500),
            ..Default::default()
        }
        .generate()
        .expect("valid spec"),
    );
    println!(
        "database: {} sequences, {} residues",
        db.len(),
        db.total_residues()
    );

    // 2. A cluster: 6 storage nodes in 2 groups. Indexing fragments every
    //    sequence into overlapping blocks, routes each block to a group
    //    via the vp-prefix LSH, and places it on a node via SHA-1.
    let cluster =
        MendelCluster::build(ClusterConfig::small_protein(), db.clone()).expect("config is valid");
    println!(
        "indexed {} blocks across {} nodes in {:?}",
        cluster.total_blocks(),
        cluster.topology().num_nodes(),
        cluster.index_elapsed()
    );

    // 3. A query: a 300-residue fragment of some database sequence,
    //    mutated to 85% identity (what a homology search looks like).
    let queries = QuerySetSpec {
        count: 1,
        length: 300,
        identity: 0.85,
        seed: 42,
    }
    .generate(&db)
    .expect("database has long sequences");
    let q = &queries[0];
    println!(
        "\nquery: {} residues, mutated copy of {} (85% identity)",
        q.query.len(),
        db.get(q.source).unwrap().name
    );

    // 4. Query parameters — Table I of the paper.
    let params = QueryParams::protein();
    println!("\n{}", params.table());

    // 5. Run it and read the report.
    let report = cluster
        .query(&q.query.residues, &params)
        .expect("query is well-formed");
    println!(
        "turnaround (simulated 50-node clock): {:?}  |  {} subqueries, {} groups, {} nodes, {} anchors",
        report.turnaround(),
        report.stats.subqueries,
        report.stats.groups_contacted,
        report.stats.nodes_contacted,
        report.stats.anchors,
    );
    println!("\ntop hits:");
    for hit in report.hits.iter().take(5) {
        let name = &db.get(hit.subject).unwrap().name;
        println!(
            "  {name:<12} score {:>5}  bits {:>7.1}  E {:>10.2e}  identity {:>5.1}%  q[{}..{}]",
            hit.score,
            hit.bits,
            hit.evalue,
            hit.identity * 100.0,
            hit.query_start,
            hit.query_end
        );
    }
    let best = report.best().expect("the source sequence must be found");
    assert_eq!(best.subject, q.source, "the true source should rank first");
    println!("\nOK: the true source sequence ranks first.");
}
