//! Translated (blastx-style) search: DNA reads against a protein cluster.
//!
//! The paper's research challenge #3 — "the queries we consider need to
//! support both DNA and protein sequence data" — taken to its practical
//! conclusion: environmental DNA reads are translated in all six reading
//! frames and searched against the protein reference, so coding regions
//! are identified even though the database and the sample use different
//! alphabets.
//!
//! ```sh
//! cargo run --release --example translated_search
//! ```

// Examples narrate through stdout by design.
#![allow(clippy::print_stdout)]

use mendel_suite::core::{ClusterConfig, MendelCluster, QueryParams};
use mendel_suite::seq::gen::NrLikeSpec;
use mendel_suite::seq::translate::translate_codon;
use mendel_suite::seq::{reverse_complement, SeqId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Back-translate a protein into one of its coding DNA sequences,
/// choosing codons uniformly among the synonyms.
fn back_translate(protein: &[u8], rng: &mut impl Rng) -> Vec<u8> {
    let mut dna = Vec::with_capacity(protein.len() * 3);
    for &aa in protein {
        let choices: Vec<(u8, u8, u8)> = (0..64u8)
            .map(|c| (c / 16, (c / 4) % 4, c % 4))
            .filter(|&(a, b, c)| translate_codon(a, b, c) == aa)
            .collect();
        let &(a, b, c) = &choices[rng.random_range(0..choices.len())];
        dna.extend_from_slice(&[a, b, c]);
    }
    dna
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB1A57);

    // Protein reference database.
    let db = Arc::new(
        NrLikeSpec {
            families: 48,
            members_per_family: 2,
            length_range: (200, 400),
            ..Default::default()
        }
        .generate()
        .expect("valid spec"),
    );
    let cluster =
        MendelCluster::build(ClusterConfig::small_protein(), db.clone()).expect("valid config");
    println!(
        "protein reference: {} sequences; cluster indexed {} blocks\n",
        db.len(),
        cluster.total_blocks()
    );

    // Simulated coding DNA reads: back-translate fragments of known
    // proteins, half of them on the reverse strand.
    let params = QueryParams::protein();
    let mut correct = 0usize;
    let mut frames_seen = [0usize; 6];
    const READS: usize = 12;
    for r in 0..READS {
        let source = SeqId((r * 7 % db.len()) as u32);
        let protein = db.get(source).unwrap();
        let start = rng.random_range(0..protein.len() - 80);
        let fragment = &protein.residues[start..start + 80];
        let mut dna = back_translate(fragment, &mut rng);
        let minus_strand = r % 2 == 1;
        if minus_strand {
            dna = reverse_complement(&dna);
        }
        let hits = cluster
            .query_translated(&dna, &params)
            .expect("valid query");
        match hits.first() {
            Some((frame, hit)) if hit.subject == source => {
                correct += 1;
                frames_seen[*frame] += 1;
                println!(
                    "read {r:>2} ({} strand, 240 bp) -> {} via frame {frame} (E = {:.1e})",
                    if minus_strand { "minus" } else { "plus " },
                    db.get(hit.subject).unwrap().name,
                    hit.evalue
                );
                assert_eq!(
                    *frame >= 3,
                    minus_strand,
                    "strand must be recovered from the winning frame"
                );
            }
            other => println!("read {r:>2} missed: {other:?}"),
        }
    }
    println!("\n{correct}/{READS} reads mapped to their coding protein");
    println!("winning frames: {frames_seen:?} (0-2 forward, 3-5 reverse)");
    assert_eq!(correct, READS, "every noiseless coding read must map");
    println!("\nOK: six-frame translated search recovers protein and strand.");
}
