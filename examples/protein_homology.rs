//! Protein homology search: Mendel vs the BLAST baseline, side by side.
//!
//! Runs the same remote-homology queries (50–90% identity fragments)
//! through both engines over the same `nr`-like database and compares
//! recall of the true source and wall-clock per query — a miniature of
//! the paper's §VI evaluation.
//!
//! ```sh
//! cargo run --release --example protein_homology
//! ```

// Examples narrate through stdout by design.
#![allow(clippy::print_stdout)]

use mendel_suite::blast::{Blast, BlastParams};
use mendel_suite::core::{ClusterConfig, MendelCluster, QueryParams};
use mendel_suite::seq::gen::{NrLikeSpec, QuerySetSpec};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let db = Arc::new(
        NrLikeSpec {
            families: 96,
            members_per_family: 3,
            length_range: (250, 600),
            seed: 0x50524f54,
            ..Default::default()
        }
        .generate()
        .expect("valid spec"),
    );
    println!(
        "database: {} sequences / {} residues\n",
        db.len(),
        db.total_residues()
    );

    let t = Instant::now();
    let cluster =
        MendelCluster::build(ClusterConfig::small_protein(), db.clone()).expect("valid config");
    println!(
        "Mendel indexing: {:?} ({} blocks)",
        t.elapsed(),
        cluster.total_blocks()
    );

    let t = Instant::now();
    let blast = Blast::new(db.clone(), BlastParams::protein());
    println!("BLAST  indexing: {:?}\n", t.elapsed());

    let mendel_params = QueryParams::protein();
    println!(
        "{:>9} | {:>13} | {:>13} | {:>11} | {:>11}",
        "identity", "Mendel recall", "BLAST recall", "Mendel t/q", "BLAST t/q"
    );
    println!("{}", "-".repeat(72));

    for identity in [0.9, 0.7, 0.5] {
        let queries = QuerySetSpec {
            count: 12,
            length: 300,
            identity,
            seed: 7 + (identity * 100.0) as u64,
        }
        .generate(&db)
        .expect("long sequences exist");

        let t = Instant::now();
        let mendel_found = queries
            .iter()
            .filter(|q| {
                cluster
                    .query(&q.query.residues, &mendel_params)
                    .map(|r| r.hits.iter().any(|h| h.subject == q.source))
                    .unwrap_or(false)
            })
            .count();
        let mendel_t = t.elapsed() / queries.len() as u32;

        let t = Instant::now();
        let blast_found = queries
            .iter()
            .filter(|q| {
                blast
                    .search(&q.query.residues)
                    .iter()
                    .any(|h| h.subject == q.source)
            })
            .count();
        let blast_t = t.elapsed() / queries.len() as u32;

        println!(
            "{:>8.0}% | {:>10}/{:<2} | {:>10}/{:<2} | {:>11?} | {:>11?}",
            identity * 100.0,
            mendel_found,
            queries.len(),
            blast_found,
            queries.len(),
            mendel_t,
            blast_t
        );
    }

    // Show one alignment in detail.
    let q = QuerySetSpec {
        count: 1,
        length: 240,
        identity: 0.75,
        seed: 99,
    }
    .generate(&db)
    .unwrap()
    .remove(0);
    let report = cluster.query(&q.query.residues, &mendel_params).unwrap();
    let best = report.best().expect("75% identity query must hit");
    println!(
        "\nexample hit: query {} -> {} | score {} | {:.1} bits | E = {:.2e} | identity {:.0}%",
        q.query.name,
        db.get(best.subject).unwrap().name,
        best.score,
        best.bits,
        best.evalue,
        best.identity * 100.0
    );
    assert_eq!(best.subject, q.source);
    println!("\nOK: both engines recover homologs; see the recall table above.");
}
