//! Metagenomics read binning — the paper's §I-A usage scenario.
//!
//! "Metagenomics ... is a powerful tool for analyzing microbial
//! communities in their natural environment ... The extracted DNA is
//! mapped to known sequences within a database."
//!
//! This example simulates that workload end-to-end: a reference database
//! of "known organism" genomes, an environmental sample of noisy
//! next-generation-sequencer reads drawn from a hidden community mix, and
//! Mendel assigning every read back to its organism. Accuracy is measured
//! against the hidden ground truth.
//!
//! ```sh
//! cargo run --release --example metagenomics
//! ```

// Examples narrate through stdout by design.
#![allow(clippy::print_stdout)]

use mendel_suite::core::{ClusterConfig, MendelCluster, QueryParams};
use mendel_suite::seq::gen::{random_sequence, MutationModel};
use mendel_suite::seq::{Alphabet, SeqId, SeqStore, Sequence};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const N_ORGANISMS: usize = 12;
const GENOME_LEN: usize = 4_000;
const N_READS: usize = 120;
const READ_LEN: usize = 150;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x4d45_5441);

    // Reference database: one "genome" per known organism.
    let mut store = SeqStore::new();
    for i in 0..N_ORGANISMS {
        let codes = random_sequence(Alphabet::Dna, GENOME_LEN, &mut rng);
        let mut s = Sequence::from_codes(format!("organism_{i}"), Alphabet::Dna, codes);
        s.description = format!("reference genome of organism {i}");
        store.insert(s);
    }
    let db = Arc::new(store);

    // Hidden community: organisms are present with skewed abundance.
    let abundance: Vec<f64> = (0..N_ORGANISMS).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total_ab: f64 = abundance.iter().sum();

    // The sequencer: reads are random windows with 2% substitution noise
    // and 0.4% indels.
    let noise = MutationModel::with_indels(0.02, 0.004);
    let mut reads: Vec<(Vec<u8>, SeqId)> = Vec::with_capacity(N_READS);
    for _ in 0..N_READS {
        let mut pick = rng.random::<f64>() * total_ab;
        let mut org = 0usize;
        for (i, a) in abundance.iter().enumerate() {
            if pick < *a {
                org = i;
                break;
            }
            pick -= a;
        }
        let genome = db.get(SeqId(org as u32)).unwrap();
        let start = rng.random_range(0..genome.len() - READ_LEN);
        let window = &genome.residues[start..start + READ_LEN];
        reads.push((
            noise.mutate(Alphabet::Dna, window, &mut rng),
            SeqId(org as u32),
        ));
    }
    println!(
        "sample: {N_READS} reads of ~{READ_LEN} bp from {N_ORGANISMS} organisms (skewed abundance)"
    );

    // Index the reference genomes in a DNA cluster.
    let mut cfg = ClusterConfig::small_dna();
    cfg.nodes = 8;
    cfg.groups = 2;
    let cluster = MendelCluster::build(cfg, db.clone()).expect("valid config");
    println!(
        "indexed {} blocks over {} nodes in {:?}\n",
        cluster.total_blocks(),
        cluster.topology().num_nodes(),
        cluster.index_elapsed()
    );

    // Bin every read: best hit wins.
    let params = QueryParams::dna();
    let mut correct = 0usize;
    let mut unassigned = 0usize;
    let mut per_org = vec![0usize; N_ORGANISMS];
    for (read, truth) in &reads {
        let report = cluster.query(read, &params).expect("read is long enough");
        match report.best() {
            Some(hit) => {
                per_org[hit.subject.index()] += 1;
                if hit.subject == *truth {
                    correct += 1;
                }
            }
            None => unassigned += 1,
        }
    }

    println!("binning accuracy: {correct}/{N_READS} reads assigned to the true organism");
    println!("unassigned reads: {unassigned}");
    println!("\nestimated community profile (reads per organism):");
    for (i, n) in per_org.iter().enumerate() {
        println!("  organism_{i:<2} {:>3} reads  {}", n, "*".repeat(*n));
    }
    assert!(
        correct as f64 >= 0.9 * N_READS as f64,
        "low-noise reads must bin correctly ({correct}/{N_READS})"
    );
    println!("\nOK: >= 90% of reads binned to the correct organism.");
}
