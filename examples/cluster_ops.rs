//! Cluster operations walkthrough: load balance, node failure + masking
//! via replication, elastic scale-out, and pre-indexed snapshots.
//!
//! Exercises the §VII-B "future work" features this reproduction
//! implements (fault tolerance, elasticity, saved indexes).
//!
//! ```sh
//! cargo run --release --example cluster_ops
//! ```

// Examples narrate through stdout by design.
#![allow(clippy::print_stdout)]

use mendel_suite::core::{snapshot, ClusterConfig, MendelCluster, QueryParams};
use mendel_suite::dht::NodeId;
use mendel_suite::net::LatencyModel;
use mendel_suite::seq::gen::{NrLikeSpec, QuerySetSpec};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let db = Arc::new(
        NrLikeSpec {
            families: 48,
            members_per_family: 3,
            length_range: (200, 400),
            seed: 0x0F5,
            ..Default::default()
        }
        .generate()
        .expect("valid spec"),
    );

    // Replication 2 so failures can be masked.
    let mut cfg = ClusterConfig::small_protein();
    cfg.nodes = 10;
    cfg.groups = 2;
    cfg.replication = 2;
    let cluster = MendelCluster::build(cfg, db.clone()).expect("valid config");
    let params = QueryParams::protein();
    let query = QuerySetSpec {
        count: 1,
        length: 250,
        identity: 0.85,
        seed: 3,
    }
    .generate(&db)
    .unwrap()
    .remove(0);

    // --- 1. Load balance (the Fig. 5 measurement) ---------------------
    let report = cluster.load_report();
    println!("per-node data share (two-tier vp-LSH + SHA-1, replication 2):");
    print!("{}", report.ascii_chart());
    println!(
        "max-min spread: {:.2} percentage points\n",
        report.spread_pct()
    );

    // --- 2. Failure + failover ----------------------------------------
    let before = cluster.query(&query.query.residues, &params).unwrap();
    println!(
        "healthy cluster: best hit {} (E = {:.1e})",
        db.get(before.best().unwrap().subject).unwrap().name,
        before.best().unwrap().evalue
    );
    cluster.fail_node(NodeId(2)).unwrap();
    cluster.fail_node(NodeId(7)).unwrap();
    println!("injected failures on n2 and n7 (one per group)");
    let degraded = cluster
        .query_from(NodeId(0), &query.query.residues, &params)
        .unwrap();
    assert_eq!(
        degraded.best().unwrap().subject,
        before.best().unwrap().subject,
        "replication must mask single-node failures"
    );
    println!(
        "degraded cluster still answers: best hit {} (replicas served the lost blocks)",
        db.get(degraded.best().unwrap().subject).unwrap().name
    );
    cluster.recover_node(NodeId(2)).expect("node 2 exists");
    cluster.recover_node(NodeId(7)).expect("node 7 exists");
    println!(
        "nodes recovered; failed set = {:?}\n",
        cluster.failed_nodes()
    );

    // --- 3. Elastic scale-out ------------------------------------------
    let blocks_before = cluster.total_blocks();
    let new_node = cluster.add_node();
    let after = cluster.query(&query.query.residues, &params).unwrap();
    assert_eq!(after.hits, before.hits, "scale-out must not change results");
    let share = cluster
        .load_report()
        .per_node
        .iter()
        .find(|(n, _)| *n == new_node)
        .map(|(_, b)| *b)
        .unwrap();
    println!(
        "scaled out: added {new_node}, rebalanced its group ({} -> {} blocks cluster-wide, new node holds {} bytes)",
        blocks_before,
        cluster.total_blocks(),
        share
    );
    assert!(share > 0);

    // --- 4. Pre-indexed snapshots (§VII-B) -----------------------------
    // (Snapshots capture original membership, so save from a fresh build.)
    let mut cfg2 = ClusterConfig::small_protein();
    cfg2.nodes = 10;
    cfg2.groups = 2;
    let fresh = MendelCluster::build(cfg2, db.clone()).expect("valid config");
    let full_index_time = fresh.index_elapsed();
    let bytes = snapshot::save(&fresh).expect("unmodified membership");
    let t = Instant::now();
    let restored = snapshot::restore(&bytes.clone(), db.clone(), LatencyModel::lan())
        .expect("snapshot is well-formed");
    let restore_time = t.elapsed();
    let a = fresh.query(&query.query.residues, &params).unwrap();
    let b = restored.query(&query.query.residues, &params).unwrap();
    assert_eq!(a.hits, b.hits, "restored cluster must answer identically");
    println!(
        "\nsnapshot: {} KiB on the wire; full index {:?} vs restore {:?}",
        bytes.len() / 1024,
        full_index_time,
        restore_time
    );
    println!("\nOK: load balance, failover, scale-out, and snapshots all verified.");
}
